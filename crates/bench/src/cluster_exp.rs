//! CL1 — fault-tolerant cluster-scale RTRM under a fault storm.
//!
//! The headline robustness campaign: a 4096-node cluster on virtual
//! time, driven by the three-level control plane of
//! `rtrm::cluster_ctrl`, under simultaneous adversity — Weibull node
//! crashes with repair, sensor dropouts and stuck-at telemetry, and an
//! afternoon heat wave that degrades the cooling plant so the same
//! facility cap buys less IT power. Four profiles isolate what each
//! defence buys:
//!
//! * `fault_free` — the same hierarchy with the storm switched off; its
//!   goodput is the denominator for retention.
//! * `fault_tolerant` — the full plane: Daly-interval checkpoints,
//!   requeue/migration on crash, hardened sensors, ambient-tracking
//!   facility budget.
//! * `no_checkpoint` — identical, but a crashed job restarts from zero.
//! * `flat` — one global P-state from a single cool-morning estimate,
//!   a budget that never re-reads the ambient, no per-node adaptation.
//!
//! The campaign is deterministic and worker-invariant: the per-node
//! phase runs on scoped threads over disjoint slot chunks, every
//! cross-node reduction happens sequentially in node-index order, and a
//! running FNV-1a digest over the facility-power trajectory and final
//! state is byte-identical at any worker count.

use antarex_obs::{MetricsRegistry, Scope};
use antarex_rtrm::checkpoint::daly_interval_s;
use antarex_rtrm::cluster_ctrl::{
    ClusterFaultView, ClusterObs, FacilityController, NodeController, RegionKind, SensedFill,
};
use antarex_rtrm::powercap::{
    estimated_power_at_temp, estimated_power_w, try_weighted_split_observed, PowercapObs,
};
use antarex_sim::cooling::{heat_wave_ambient_c, CoolingPlant};
use antarex_sim::faults::{FaultConfig, FaultSchedule, SensorEffect};
use antarex_sim::job::WorkUnit;
use antarex_sim::node::{Node, NodeSpec};
use antarex_sim::variability::ProcessVariation;
use std::collections::VecDeque;

/// Estimated draw of an alive idle node the facility loop reserves
/// before splitting the budget across running nodes, watts.
const IDLE_RESERVE_W: f64 = 95.0;

/// Fraction of the raw IT budget handed to nodes (the rest absorbs
/// power-estimation error).
const GUARD_BAND: f64 = 0.97;

/// Arithmetic intensity of compute-bound regions, flops per byte.
const COMPUTE_INTENSITY: f64 = 64.0;

/// Arithmetic intensity of memory-bound regions, flops per byte.
const MEMORY_INTENSITY: f64 = 1.0 / 16.0;

// ---------------------------------------------------------------------------
// Scale
// ---------------------------------------------------------------------------

/// Campaign sizing knobs.
#[derive(Debug, Clone)]
pub struct ClusterScale {
    /// Cluster size.
    pub nodes: usize,
    /// Virtual horizon, seconds.
    pub horizon_s: f64,
    /// Control step, seconds.
    pub dt_s: f64,
    /// Jobs in the batch queue at t = 0.
    pub jobs: usize,
    /// Nominal job duration at the fastest P-state, seconds.
    pub job_duration_s: f64,
    /// Storm intensity multiplier for [`FaultConfig::exascale`].
    pub crash_rate: f64,
    /// Checkpoint write cost, seconds.
    pub ckpt_cost_s: f64,
    /// Facility power cap (IT + cooling + distribution), watts.
    pub facility_cap_w: f64,
    /// Morning ambient, °C.
    pub ambient_start_c: f64,
    /// Afternoon peak ambient, °C.
    pub ambient_peak_c: f64,
}

/// A facility cap that forces mild throttling: 92% of the full-load
/// facility draw (every node at the fastest P-state, hot junction) at
/// the cool-morning cooling overhead.
pub fn default_facility_cap_w(nodes: usize) -> f64 {
    let probe = Node::nominal(NodeSpec::cineca_xeon(), 0);
    let it_full_w =
        estimated_power_at_temp(&probe, probe.spec().pstates.max_index(), 75.0) * nodes as f64;
    let plant = CoolingPlant::european_datacenter();
    0.92 * it_full_w * (1.0 + plant.overhead_fraction(14.0))
}

impl ClusterScale {
    /// The headline scale: 4096 nodes, two virtual hours, a storm that
    /// crashes each node every ~3 h MTBF.
    pub fn full() -> Self {
        ClusterScale {
            nodes: 4096,
            horizon_s: 7200.0,
            dt_s: 30.0,
            jobs: 10240,
            job_duration_s: 2400.0,
            crash_rate: 2.0,
            ckpt_cost_s: 2.0,
            facility_cap_w: default_facility_cap_w(4096),
            ambient_start_c: 14.0,
            ambient_peak_c: 33.0,
        }
    }

    /// A seconds-fast scale for the experiment report and unit tests,
    /// with the storm proportionally harsher so every defence still
    /// fires.
    pub fn tiny() -> Self {
        ClusterScale {
            nodes: 64,
            horizon_s: 1800.0,
            dt_s: 30.0,
            jobs: 160,
            job_duration_s: 600.0,
            crash_rate: 8.0,
            ckpt_cost_s: 2.0,
            facility_cap_w: default_facility_cap_w(64),
            ambient_start_c: 14.0,
            ambient_peak_c: 33.0,
        }
    }

    /// Per-node crash MTBF implied by the storm rate, seconds.
    pub fn node_mtbf_s(&self) -> f64 {
        6.0 * 3600.0 / self.crash_rate
    }
}

/// The storm: node crashes and sensor faults only — power spikes, link
/// and gray failures are other experiments' business (R1/R2).
pub fn storm_config(seed: u64, rate: f64) -> FaultConfig {
    let mut config = FaultConfig::exascale(seed, rate);
    config.power_spike_mtbf_s = 0.0;
    config.link_mtbf_s = 0.0;
    config.gray_mtbf_s = 0.0;
    config.corrupt_mtbf_s = 0.0;
    config
}

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

/// Which stack runs the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterProfile {
    /// Full hierarchy, storm off — the goodput denominator.
    FaultFree,
    /// Full hierarchy under the storm.
    FaultTolerant,
    /// Hierarchy without checkpoints: crashes restart jobs from zero.
    NoCheckpoint,
    /// One global P-state from a cool-morning estimate, ambient-blind
    /// budget, no per-node adaptation.
    Flat,
}

impl ClusterProfile {
    /// Stable identifier used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ClusterProfile::FaultFree => "fault_free",
            ClusterProfile::FaultTolerant => "fault_tolerant",
            ClusterProfile::NoCheckpoint => "no_checkpoint",
            ClusterProfile::Flat => "flat",
        }
    }
}

// ---------------------------------------------------------------------------
// Campaign state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct RunningJob {
    id: usize,
    total_flops: f64,
    done_flops: f64,
    ckpt_flops: f64,
    since_ckpt_s: f64,
    intensity: f64,
    region: RegionKind,
}

#[derive(Debug, Clone, Copy)]
struct PendingJob {
    id: usize,
    done_flops: f64,
    prev_node: Option<usize>,
}

/// One node's slice of campaign state. The parallel phase mutates each
/// slot independently; everything cross-slot happens sequentially.
struct NodeSlot {
    index: usize,
    node: Node,
    ctl: NodeController,
    running: Option<RunningJob>,
    stuck_frozen: Option<f64>,
    alive: bool,
    // per-step outputs, consumed by the sequential merge
    step_energy_j: f64,
    step_throttled: bool,
    step_fill: Option<SensedFill>,
    step_ckpt: bool,
    step_completed: Option<RunningJob>,
}

fn job_shape(id: usize, spec: &NodeSpec, duration_s: f64) -> (f64, f64, RegionKind) {
    if id % 4 == 3 {
        // memory-bound: rate is bandwidth-limited and frequency-blind
        let rate = spec.mem_bw_gbs * 1e9 * MEMORY_INTENSITY;
        (rate * duration_s, MEMORY_INTENSITY, RegionKind::Memory)
    } else {
        let rate = spec.cpu_peak_gflops(spec.pstates.fastest().freq_ghz) * 1e9;
        (rate * duration_s, COMPUTE_INTENSITY, RegionKind::Compute)
    }
}

/// Roofline execution rate at a P-state for a given intensity, flops/s.
fn exec_rate_flops_s(spec: &NodeSpec, pstate_index: usize, intensity: f64) -> f64 {
    let compute = spec.cpu_peak_gflops(spec.pstates.state(pstate_index).freq_ghz) * 1e9;
    let memory = spec.mem_bw_gbs * 1e9 * intensity;
    compute.min(memory)
}

/// FNV-1a over the campaign's observable state.
#[derive(Debug, Clone, Copy)]
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }
}

// ---------------------------------------------------------------------------
// One profile run
// ---------------------------------------------------------------------------

/// Everything a profile run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOutcome {
    /// Profile identifier.
    pub profile: &'static str,
    /// Useful work retained at the horizon, flops (completed + partial
    /// minus everything rolled back).
    pub goodput_flops: f64,
    /// Jobs run to completion.
    pub completed_jobs: u64,
    /// Worst single-step facility-cap overshoot, as a fraction of the cap.
    pub peak_overshoot_frac: f64,
    /// Cap-overshoot integral, watt-seconds.
    pub overshoot_ws: f64,
    /// Node crashes the control plane absorbed.
    pub crashes: u64,
    /// Jobs requeued after losing their node.
    pub requeues: u64,
    /// Requeued jobs re-dispatched onto a different node.
    pub migrations: u64,
    /// Local thermal-emergency clamps.
    pub throttle_events: u64,
    /// Sensor estimates served from hold / EWMA / assume-worst.
    pub sensor_fallbacks: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Total IT energy, joules.
    pub energy_j: f64,
    /// FNV-1a digest of the facility-power trajectory and final state.
    pub digest: u64,
}

/// Runs one profile of the campaign on `workers` threads. The outcome —
/// including the digest — is byte-identical for any `workers >= 1`.
///
/// # Panics
///
/// Panics when `workers` is zero.
pub fn run_profile(
    seed: u64,
    scale: &ClusterScale,
    profile: ClusterProfile,
    workers: usize,
) -> ProfileOutcome {
    assert!(workers > 0, "at least one worker is required");
    let spec = NodeSpec::cineca_xeon();
    let plant = CoolingPlant::european_datacenter();
    let facility = FacilityController::try_new(scale.facility_cap_w, plant, GUARD_BAND)
        .expect("valid facility configuration");

    let fault_config = match profile {
        ClusterProfile::FaultFree => FaultConfig::none(seed),
        _ => storm_config(seed, scale.crash_rate),
    };
    let schedule = FaultSchedule::generate(&fault_config, scale.nodes, scale.horizon_s);
    let view = ClusterFaultView::new(&schedule);

    let registry = MetricsRegistry::new();
    let obs = ClusterObs::register(&registry);
    let pc_obs = PowercapObs::register(&registry);

    let ckpt_interval_s = match profile {
        ClusterProfile::NoCheckpoint => f64::INFINITY,
        _ => daly_interval_s(scale.node_mtbf_s(), scale.ckpt_cost_s),
    };

    // the flat baseline's one decision: global P-state from node 0's
    // cool-morning estimate against an ambient-blind uniform share
    let flat_pstate = (profile == ClusterProfile::Flat).then(|| {
        let probe = Node::nominal(spec.clone(), 0);
        let share = scale.facility_cap_w
            / (1.0 + plant.overhead_fraction(scale.ambient_start_c))
            / scale.nodes as f64;
        let mut pick = 0;
        for idx in 0..spec.pstates.len() {
            if estimated_power_w(&probe, idx) <= share {
                pick = idx;
            }
        }
        pick
    });

    let variations = ProcessVariation::population(seed ^ 0xA5A5_0F0F, scale.nodes);
    let mut slots: Vec<NodeSlot> = variations
        .into_iter()
        .enumerate()
        .map(|(index, variation)| NodeSlot {
            index,
            node: Node::with_variation(spec.clone(), index, variation),
            ctl: NodeController::new(),
            running: None,
            stuck_frozen: None,
            alive: true,
            step_energy_j: 0.0,
            step_throttled: false,
            step_fill: None,
            step_ckpt: false,
            step_completed: None,
        })
        .collect();

    let mut queue: VecDeque<PendingJob> = (0..scale.jobs)
        .map(|id| PendingJob {
            id,
            done_flops: 0.0,
            prev_node: None,
        })
        .collect();
    let mut completed_flops = 0.0f64;
    let mut overshoot_ws = 0.0f64;
    let mut peak_overshoot_frac = 0.0f64;
    let mut digest = Digest::new();

    let steps = (scale.horizon_s / scale.dt_s).round() as usize;
    let ramp_s = 0.6 * scale.horizon_s;
    for step in 0..steps {
        let t = step as f64 * scale.dt_s;
        let dt = scale.dt_s;
        let ambient = heat_wave_ambient_c(t, scale.ambient_start_c, scale.ambient_peak_c, ramp_s);

        // --- sequential: absorb crashes, requeue victims -------------
        for slot in slots.iter_mut() {
            let crashed_now = view.first_crash_in(slot.index, t, t + dt).is_some();
            if crashed_now {
                obs.crashes.inc();
                if let Some(job) = slot.running.take() {
                    obs.requeues.inc();
                    let retained = if ckpt_interval_s.is_finite() {
                        job.ckpt_flops
                    } else {
                        0.0
                    };
                    queue.push_back(PendingJob {
                        id: job.id,
                        done_flops: retained,
                        prev_node: Some(slot.index),
                    });
                }
            }
            slot.alive = view.node_alive(slot.index, t) && !crashed_now;
        }

        // --- sequential: dispatch in node-index order ----------------
        for slot in slots.iter_mut() {
            if slot.alive && slot.running.is_none() {
                if let Some(pending) = queue.pop_front() {
                    if pending.prev_node.is_some_and(|prev| prev != slot.index) {
                        obs.migrations.inc();
                    }
                    let (total_flops, intensity, region) =
                        job_shape(pending.id, &spec, scale.job_duration_s);
                    slot.running = Some(RunningJob {
                        id: pending.id,
                        total_flops,
                        done_flops: pending.done_flops,
                        ckpt_flops: pending.done_flops,
                        since_ckpt_s: 0.0,
                        intensity,
                        region,
                    });
                }
            }
        }

        // --- sequential: facility loop re-splits the budget ----------
        obs.ambient_c.set(ambient);
        obs.it_budget_w.set(facility.it_budget_w(ambient));
        if flat_pstate.is_none() {
            let mut weights = vec![0.0f64; slots.len()];
            let mut idle_alive = 0usize;
            for slot in slots.iter() {
                if !slot.alive {
                    continue;
                }
                match &slot.running {
                    Some(job) => {
                        let rate =
                            exec_rate_flops_s(&spec, spec.pstates.max_index(), job.intensity);
                        weights[slot.index] = ((job.total_flops - job.done_flops) / rate).max(1.0);
                    }
                    None => idle_alive += 1,
                }
            }
            let budget =
                (facility.it_budget_w(ambient) - idle_alive as f64 * IDLE_RESERVE_W).max(1.0);
            if let Some(caps) = try_weighted_split_observed(budget, &weights, &pc_obs) {
                for (slot, cap) in slots.iter_mut().zip(caps) {
                    slot.ctl.set_cap(cap);
                }
            }
        }

        // --- parallel: every node steps independently ----------------
        let chunk = slots.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for chunk_slots in slots.chunks_mut(chunk) {
                scope.spawn(|| {
                    for slot in chunk_slots {
                        step_slot(slot, &view, t, dt, ckpt_interval_s, scale, flat_pstate);
                    }
                });
            }
        });

        // --- sequential merge, node-index order ----------------------
        let mut it_power_w = 0.0;
        for slot in slots.iter_mut() {
            it_power_w += slot.step_energy_j / dt;
            if slot.step_throttled {
                obs.throttle_events.inc();
            }
            if let Some(fill) = slot.step_fill {
                obs.count_fill(fill);
            }
            if slot.step_ckpt {
                obs.checkpoints.inc();
            }
            if let Some(job) = slot.step_completed.take() {
                obs.completed_jobs.inc();
                completed_flops += job.total_flops;
            }
        }
        let facility_w = facility.facility_power_w(it_power_w, ambient);
        obs.facility_power_w.set(facility_w);
        let over_w = facility_w - scale.facility_cap_w;
        if over_w > 0.0 {
            overshoot_ws += over_w * dt;
            peak_overshoot_frac = peak_overshoot_frac.max(over_w / scale.facility_cap_w);
        }
        obs.overshoot_ws.set(overshoot_ws);
        digest.f64(it_power_w);
        digest.f64(facility_w);
    }

    // goodput = finished work + retained partial work, rollbacks excluded
    let mut goodput = completed_flops;
    let mut energy_j = 0.0;
    for slot in &slots {
        if let Some(job) = &slot.running {
            goodput += job.done_flops;
        }
        energy_j += slot.node.energy_j();
        digest.f64(slot.node.temp_c());
        digest.u64(slot.node.pstate_index() as u64);
        digest.f64(slot.node.energy_j());
        digest.f64(slot.running.as_ref().map_or(0.0, |j| j.done_flops));
    }
    for pending in &queue {
        goodput += pending.done_flops;
        digest.u64(pending.id as u64);
        digest.f64(pending.done_flops);
    }
    for snapshot in registry.snapshot(Some(Scope::Invariant)) {
        digest.u64(match snapshot.value {
            antarex_obs::MetricValue::Counter(v) => v,
            antarex_obs::MetricValue::Gauge(v) => v.to_bits(),
            antarex_obs::MetricValue::Histogram(ref h) => h.count,
        });
    }

    ProfileOutcome {
        profile: profile.name(),
        goodput_flops: goodput,
        completed_jobs: obs.completed_jobs.get(),
        peak_overshoot_frac,
        overshoot_ws,
        crashes: obs.crashes.get(),
        requeues: obs.requeues.get(),
        migrations: obs.migrations.get(),
        throttle_events: obs.throttle_events.get(),
        sensor_fallbacks: obs.sensor_held.get()
            + obs.sensor_ewma.get()
            + obs.sensor_assume_worst.get(),
        checkpoints: obs.checkpoints.get(),
        energy_j,
        digest: digest.0,
    }
}

/// One node's step: telemetry → region capper → thermal clamp →
/// roofline execution of `dt` seconds of the running job. Touches only
/// its own slot, so the parallel phase is chunk-shape-invariant.
fn step_slot(
    slot: &mut NodeSlot,
    view: &ClusterFaultView,
    t: f64,
    dt: f64,
    ckpt_interval_s: f64,
    scale: &ClusterScale,
    flat_pstate: Option<usize>,
) {
    slot.step_energy_j = 0.0;
    slot.step_throttled = false;
    slot.step_fill = None;
    slot.step_ckpt = false;
    slot.step_completed = None;
    if !slot.alive {
        return; // powered off: no work, no draw
    }
    let Some(mut job) = slot.running.take() else {
        slot.step_energy_j = slot.node.idle(dt).energy_j;
        return;
    };

    // hardened telemetry: the out-of-band path may drop or freeze
    let truth_c = slot.node.temp_c();
    let raw = match view.sensor_effect(slot.index, t) {
        SensorEffect::Ok => {
            slot.stuck_frozen = None;
            Some(truth_c)
        }
        SensorEffect::Dropped => {
            slot.stuck_frozen = None;
            None
        }
        SensorEffect::StuckSince(_) => Some(*slot.stuck_frozen.get_or_insert(truth_c)),
    };

    let pstate = match flat_pstate {
        Some(global) => {
            slot.node.set_pstate(global);
            global
        }
        None => {
            let plan = slot
                .ctl
                .plan(&mut slot.node, job.region, job.intensity, t, raw);
            slot.step_fill = Some(plan.sensed.fill);
            slot.step_throttled = plan.throttled;
            plan.pstate
        }
    };

    // checkpoint cadence steals its write cost from the step
    let mut avail_s = dt;
    if ckpt_interval_s.is_finite() {
        job.since_ckpt_s += dt;
        if job.since_ckpt_s >= ckpt_interval_s {
            avail_s = (dt - scale.ckpt_cost_s).max(0.0);
            slot.step_ckpt = true;
        }
    }

    let rate = exec_rate_flops_s(slot.node.spec(), pstate, job.intensity);
    let remaining = (job.total_flops - job.done_flops).max(0.0);
    let flops = (rate * avail_s).min(remaining);
    let outcome = slot
        .node
        .execute(&WorkUnit::with_intensity(flops.max(1.0), job.intensity));
    slot.step_energy_j = outcome.energy_j;
    if outcome.time_s < dt {
        slot.step_energy_j += slot.node.idle(dt - outcome.time_s).energy_j;
    }
    job.done_flops += flops;
    if slot.step_ckpt {
        job.ckpt_flops = job.done_flops;
        job.since_ckpt_s = 0.0;
    }
    if job.done_flops >= job.total_flops - 0.5 {
        slot.step_completed = Some(job);
    } else {
        slot.running = Some(job);
    }
}

// ---------------------------------------------------------------------------
// Campaign + invariance
// ---------------------------------------------------------------------------

/// Runs all four profiles; order is fixed (`fault_free` first so row 0
/// is always the retention denominator).
pub fn cluster_campaign(seed: u64, scale: &ClusterScale, workers: usize) -> Vec<ProfileOutcome> {
    [
        ClusterProfile::FaultFree,
        ClusterProfile::FaultTolerant,
        ClusterProfile::NoCheckpoint,
        ClusterProfile::Flat,
    ]
    .iter()
    .map(|&profile| run_profile(seed, scale, profile, workers))
    .collect()
}

/// Worker-count invariance verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct InvarianceOutcome {
    /// Worker counts exercised.
    pub worker_counts: Vec<usize>,
    /// Campaign digest per worker count.
    pub digests: Vec<u64>,
    /// Whether every digest matched the single-worker run.
    pub identical: bool,
}

/// Reruns the fault-tolerant profile at each worker count and compares
/// the full-state digests: physical parallelism must never leak into
/// the virtual campaign.
pub fn worker_invariance(seed: u64, scale: &ClusterScale, counts: &[usize]) -> InvarianceOutcome {
    let digests: Vec<u64> = counts
        .iter()
        .map(|&workers| run_profile(seed, scale, ClusterProfile::FaultTolerant, workers).digest)
        .collect();
    let identical = digests.windows(2).all(|pair| pair[0] == pair[1]);
    InvarianceOutcome {
        worker_counts: counts.to_vec(),
        digests,
        identical,
    }
}

// ---------------------------------------------------------------------------
// Experiment report
// ---------------------------------------------------------------------------

/// The registered `cl1` experiment: the tiny-scale campaign with the
/// same four profiles and verdicts, deterministic text.
pub fn cl1_cluster_rtrm() -> String {
    let seed = 42;
    let scale = ClusterScale::tiny();
    let rows = cluster_campaign(seed, &scale, 2);
    let invariance = worker_invariance(seed, &scale, &[1, 2, 4]);
    let reference = rows[0].goodput_flops;

    let mut out = String::new();
    out.push_str(&format!(
        "cluster RTRM campaign (seed {seed}, {} nodes, {} jobs, {:.0} s virtual, cap {:.0} kW)\n",
        scale.nodes,
        scale.jobs,
        scale.horizon_s,
        scale.facility_cap_w / 1e3
    ));
    out.push_str(&format!(
        "storm: node MTBF {:.0} s, checkpoint interval {:.0} s (Daly), heat wave {:.0} -> {:.0} degC\n\n",
        scale.node_mtbf_s(),
        daly_interval_s(scale.node_mtbf_s(), scale.ckpt_cost_s),
        scale.ambient_start_c,
        scale.ambient_peak_c
    ));
    out.push_str(
        "profile          goodput  retain  peak-over  crashes  requeue  migrate  throttle  sensor-fb  ckpts\n",
    );
    for row in &rows {
        out.push_str(&format!(
            "{:<16} {:>7.2e}  {:>5.1}%  {:>8.2}%  {:>7}  {:>7}  {:>7}  {:>8}  {:>9}  {:>5}\n",
            row.profile,
            row.goodput_flops,
            100.0 * row.goodput_flops / reference,
            100.0 * row.peak_overshoot_frac,
            row.crashes,
            row.requeues,
            row.migrations,
            row.throttle_events,
            row.sensor_fallbacks,
            row.checkpoints,
        ));
    }
    let tolerant = &rows[1];
    let no_ckpt = &rows[2];
    let flat = &rows[3];
    out.push_str(&format!(
        "\nworker invariance ({:?} workers): digests {:?} -> {}\n",
        invariance.worker_counts,
        invariance
            .digests
            .iter()
            .map(|d| format!("{d:016x}"))
            .collect::<Vec<_>>(),
        if invariance.identical {
            "identical"
        } else {
            "DIVERGED"
        }
    ));
    out.push_str(&format!(
        "verdict: tolerant holds the cap ({}), checkpoints pay ({}), ambient-blind flat overshoots ({})\n",
        if tolerant.peak_overshoot_frac <= 0.01 { "yes" } else { "NO" },
        if tolerant.goodput_flops > no_ckpt.goodput_flops { "yes" } else { "NO" },
        if flat.peak_overshoot_frac > tolerant.peak_overshoot_frac { "yes" } else { "NO" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic_for_a_seed() {
        let scale = ClusterScale::tiny();
        let a = run_profile(7, &scale, ClusterProfile::FaultTolerant, 2);
        let b = run_profile(7, &scale, ClusterProfile::FaultTolerant, 2);
        assert_eq!(a, b);
        let c = run_profile(8, &scale, ClusterProfile::FaultTolerant, 2);
        assert_ne!(a.digest, c.digest, "seed must matter");
    }

    #[test]
    fn campaign_state_is_worker_count_invariant() {
        let scale = ClusterScale::tiny();
        let invariance = worker_invariance(42, &scale, &[1, 2, 3, 8]);
        assert!(
            invariance.identical,
            "digests diverged: {:?}",
            invariance.digests
        );
    }

    #[test]
    fn storm_schedules_are_deterministic_and_seed_sensitive() {
        let config = storm_config(42, 8.0);
        let a = FaultSchedule::generate(&config, 64, 1800.0);
        let b = FaultSchedule::generate(&config, 64, 1800.0);
        assert_eq!(a.digest(), b.digest());
        let c = FaultSchedule::generate(&storm_config(43, 8.0), 64, 1800.0);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn tolerant_beats_no_checkpoint_and_flat_breaks_the_cap() {
        let scale = ClusterScale::tiny();
        let rows = cluster_campaign(42, &scale, 2);
        let (fault_free, tolerant, no_ckpt, flat) = (&rows[0], &rows[1], &rows[2], &rows[3]);
        assert_eq!(fault_free.crashes, 0);
        assert!(tolerant.crashes > 0, "storm must crash nodes");
        assert!(tolerant.sensor_fallbacks > 0, "storm must degrade sensors");
        assert!(
            tolerant.goodput_flops > no_ckpt.goodput_flops,
            "checkpoints must retain goodput: {} vs {}",
            tolerant.goodput_flops,
            no_ckpt.goodput_flops
        );
        assert!(
            flat.peak_overshoot_frac > tolerant.peak_overshoot_frac,
            "ambient-blind flat must overshoot more: {} vs {}",
            flat.peak_overshoot_frac,
            tolerant.peak_overshoot_frac
        );
        assert!(
            tolerant.peak_overshoot_frac <= 0.01,
            "tolerant must hold the cap, overshot {:.4}",
            tolerant.peak_overshoot_frac
        );
    }

    #[test]
    fn report_renders_and_is_stable() {
        let a = cl1_cluster_rtrm();
        let b = cl1_cluster_rtrm();
        assert_eq!(a, b);
        assert!(a.contains("fault_tolerant"));
        assert!(a.contains("identical"));
    }
}
