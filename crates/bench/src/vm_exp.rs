//! v1 — the metered bytecode VM against the reference interpreter.
//!
//! The serving stack's probe hot path executes mini-C kernels many
//! thousands of times per tuning session; `antarex-vm` lowers each
//! kernel once to metered bytecode and replays it from a weave-time
//! [`InstrumentedCodeCache`]. This experiment proves the two properties
//! the redesign rests on, with **no wall-clock numbers** (CI runs the
//! report twice and diffs it byte-for-byte; timings live in the
//! `vm_bench` binary):
//!
//! 1. **bit-identity** — over the canonical kernel suite, its woven
//!    variants, and a precision sweep, the VM reproduces the reference
//!    interpreter's values, cost accounting, FP energy, memory traffic
//!    and error behaviour exactly;
//! 2. **sharing** — the instrumented-code cache turns serving-tier
//!    replay into cache hits: a `(program digest, metering params)`
//!    pair lowers once across tenants, rungs and rounds.

use antarex_core::scenario::{
    DOT_KERNEL, DYNAMIC_KERNEL, MATVEC_KERNEL, STENCIL_KERNEL, SUMSQ_KERNEL,
};
use antarex_ir::cost::{CostModel, ExecStats};
use antarex_ir::interp::{ExecEnv, Interp};
use antarex_ir::value::Value;
use antarex_ir::{analysis, parse_program, Executor, IrError, Program};
use antarex_precision::vars::{float_vars, set_precision};
use antarex_serve::kernel::KernelEvaluator;
use antarex_serve::Evaluator;
use antarex_tuner::{Configuration, KnobValue};
use antarex_vm::{lower_function, InstrumentedCodeCache, Vm};
use antarex_weaver::transform::unroll::unroll_by_factor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// One kernel of the equivalence suite: source, entry point, arguments.
pub struct SuiteCase {
    /// Display name.
    pub name: &'static str,
    /// Mini-C source.
    pub source: &'static str,
    /// Entry function.
    pub function: &'static str,
    /// Deterministic arguments.
    pub args: Vec<Value>,
}

fn buf(seed: u64, n: usize) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    Value::from(
        (0..n)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect::<Vec<f64>>(),
    )
}

/// The canonical kernel suite (scenario kernels with seeded inputs).
pub fn kernel_suite() -> Vec<SuiteCase> {
    vec![
        SuiteCase {
            name: "sumsq16",
            source: SUMSQ_KERNEL,
            function: "sumsq16",
            args: vec![buf(1, 16)],
        },
        SuiteCase {
            name: "dynamic-kernel",
            source: DYNAMIC_KERNEL,
            function: "run",
            args: vec![buf(2, 32), Value::Int(32)],
        },
        SuiteCase {
            name: "matvec8",
            source: MATVEC_KERNEL,
            function: "matvec8",
            args: vec![buf(3, 64), buf(4, 8), buf(5, 8)],
        },
        SuiteCase {
            name: "stencil32",
            source: STENCIL_KERNEL,
            function: "stencil32",
            args: vec![buf(6, 32), buf(7, 32)],
        },
        SuiteCase {
            name: "dot-64",
            source: DOT_KERNEL,
            function: "dot",
            args: vec![buf(8, 64), buf(9, 64), Value::Int(64)],
        },
    ]
}

/// Program variants of one case: base, unrolled, and a precision ladder.
fn variants(case: &SuiteCase) -> Vec<(String, Program)> {
    let base = parse_program(case.source).expect("suite kernel parses");
    let mut out = vec![("base".to_string(), base.clone())];
    let mut unrolled = base.clone();
    let paths: Vec<_> = {
        let function = base.function(case.function).expect("entry exists");
        analysis::loops(&function.body)
            .into_iter()
            .map(|(path, _)| path)
            .collect()
    };
    if let Some(path) = paths.first() {
        let mut applied = false;
        let _ = unrolled.edit_function(case.function, |f| {
            applied = unroll_by_factor(&mut f.body, path, 4).is_ok();
        });
        if applied {
            out.push(("unroll x4".to_string(), unrolled));
        }
    }
    for bits in [23u8, 12, 8] {
        let mut lowered = base.clone();
        let vars = lowered
            .function(case.function)
            .map(|f| float_vars(f))
            .unwrap_or_default();
        for var in &vars {
            let _ = set_precision(&mut lowered, case.function, var, bits);
        }
        out.push((format!("mantissa {bits}"), lowered));
    }
    out
}

/// Runs one engine, returning the outcome and the metered statistics.
fn run_engine(
    engine: &mut dyn Executor,
    function: &str,
    args: &[Value],
) -> (Result<Value, IrError>, ExecStats) {
    let mut env = ExecEnv::new();
    let result = engine.call(function, args, &mut env);
    (result, env.stats)
}

/// `true` when both engines produced bit-identical outcomes.
fn identical(
    a: &(Result<Value, IrError>, ExecStats),
    b: &(Result<Value, IrError>, ExecStats),
) -> bool {
    a.0 == b.0
        && a.1.cost == b.1.cost
        && a.1.flops == b.1.flops
        && a.1.flop_energy.to_bits() == b.1.flop_energy.to_bits()
        && a.1.mem_ops == b.1.mem_ops
        && a.1.loop_iters == b.1.loop_iters
        && a.1.calls == b.1.calls
}

/// The v1 report (deterministic; no wall clock).
pub fn v1_vm_equivalence() -> String {
    let mut out = String::new();
    let model = CostModel::new();

    writeln!(out, "engine equivalence (interp vs bytecode VM)").unwrap();
    writeln!(
        out,
        "  {:<16} {:<12} {:>10} {:>8} {:>12} {:>9}",
        "kernel", "variant", "cost", "flops", "fp-energy", "verdict"
    )
    .unwrap();
    let mut checked = 0usize;
    let mut agreed = 0usize;
    for case in kernel_suite() {
        for (label, program) in variants(&case) {
            let mut interp = Interp::new(program.clone());
            let mut vm = Vm::new(program);
            let a = run_engine(&mut interp, case.function, &case.args);
            let b = run_engine(&mut vm, case.function, &case.args);
            let ok = identical(&a, &b);
            checked += 1;
            agreed += usize::from(ok);
            writeln!(
                out,
                "  {:<16} {:<12} {:>10} {:>8} {:>12.2} {:>9}",
                case.name,
                label,
                b.1.cost,
                b.1.flops,
                b.1.flop_energy,
                if ok { "IDENTICAL" } else { "DIVERGED" }
            )
            .unwrap();
        }
    }
    writeln!(out, "  bit-identical: {agreed}/{checked}").unwrap();

    writeln!(out, "\nerror-path equivalence").unwrap();
    let runaway = "double spin(int n) {
        double s = 0.0;
        while (n > 0) { s += 1.0; }
        return s;
    }";
    let program = parse_program(runaway).unwrap();
    let mut interp = Interp::new(program.clone());
    interp.set_budget(Some(10_000));
    let mut vm = Vm::new(program);
    vm.set_budget(Some(10_000));
    let a = run_engine(&mut interp, "spin", &[Value::Int(1)]);
    let b = run_engine(&mut vm, "spin", &[Value::Int(1)]);
    writeln!(
        out,
        "  budget 10000 -> interp: {} | vm: {} | {}",
        describe(&a.0),
        describe(&b.0),
        if a.0 == b.0 && a.1.cost == b.1.cost {
            "IDENTICAL"
        } else {
            "DIVERGED"
        }
    )
    .unwrap();

    writeln!(out, "\nbytecode metering (block-granular fused meters)").unwrap();
    writeln!(
        out,
        "  {:<16} {:>8} {:>8} {:>14}",
        "kernel", "instrs", "meters", "instrs/meter"
    )
    .unwrap();
    for case in kernel_suite() {
        let program = parse_program(case.source).unwrap();
        let function = program.function(case.function).unwrap();
        let chunk = lower_function(function, &model);
        writeln!(
            out,
            "  {:<16} {:>8} {:>8} {:>14.1}",
            case.name,
            chunk.len(),
            chunk.meter_count(),
            chunk.len() as f64 / chunk.meter_count().max(1) as f64
        )
        .unwrap();
    }

    writeln!(out, "\ninstrumented-code cache (serving-tier replay)").unwrap();
    let evaluator = KernelEvaluator::fma();
    let mut config = Configuration::new();
    for round in 0..25 {
        for bits in [52i64, 23, 12, 8] {
            config.set("mantissa", KnobValue::Int(bits));
            let features = [16.0 + (round % 3) as f64 * 8.0];
            evaluator.evaluate(&config, &features);
        }
    }
    let cache = evaluator.cache();
    writeln!(
        out,
        "  100 probes x 4 precision rungs x 3 workloads: {} lowerings, {} replays",
        cache.misses(),
        cache.hits()
    )
    .unwrap();
    writeln!(
        out,
        "  hit rate {:.1}% (gate >= 95%): {}",
        cache.hit_rate() * 100.0,
        if cache.hit_rate() >= 0.95 {
            "PASS"
        } else {
            "FAIL"
        }
    )
    .unwrap();

    let shared = std::sync::Arc::new(InstrumentedCodeCache::new());
    for _tenant in 0..8 {
        let program = parse_program(DOT_KERNEL).unwrap();
        let _vm = Vm::with_cache(program, model.clone(), &shared);
    }
    writeln!(
        out,
        "  8 tenants, one program digest: {} lowering, {} shared ({})",
        shared.misses(),
        shared.hits(),
        if shared.misses() == 1 {
            "SHARED"
        } else {
            "DIVERGED"
        }
    )
    .unwrap();

    writeln!(
        out,
        "\nverdict: {}",
        if agreed == checked {
            "VM is bit-identical to the reference interpreter on the full suite"
        } else {
            "DIVERGED — engines disagree"
        }
    )
    .unwrap();
    out
}

fn describe(result: &Result<Value, IrError>) -> String {
    match result {
        Ok(v) => format!("ok {v:?}"),
        Err(e) => format!("err `{e}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_reports_full_agreement() {
        let report = v1_vm_equivalence();
        assert!(!report.contains("DIVERGED"), "{report}");
        assert!(!report.contains("FAIL"), "{report}");
        let tally = report
            .lines()
            .find_map(|l| l.trim().strip_prefix("bit-identical: "))
            .expect("tally line");
        let (agreed, checked) = tally.split_once('/').expect("a/b");
        assert_eq!(agreed, checked, "{report}");
        assert!(checked.parse::<usize>().unwrap() >= 20, "{report}");
    }

    #[test]
    fn v1_is_deterministic() {
        assert_eq!(v1_vm_equivalence(), v1_vm_equivalence());
    }

    #[test]
    fn suite_kernels_all_run_on_the_vm() {
        for case in kernel_suite() {
            let program = parse_program(case.source).unwrap();
            let mut vm = Vm::new(program);
            let mut env = ExecEnv::new();
            vm.call(case.function, &case.args, &mut env)
                .unwrap_or_else(|e| panic!("{}: {e}", case.name));
            assert!(env.stats.cost > 0);
        }
    }
}
