//! Experiments U1–U2: the two driving use cases.

use antarex_apps::docking::{generate_library, generate_pocket, DockingCampaign, Ligand};
use antarex_apps::nav::{NavigationServer, RoadNetwork, TrafficModel};
use antarex_monitor::Sla;
use antarex_rtrm::dispatch::{run_task_pool, DispatchStrategy};
use antarex_sim::node::{Node, NodeSpec};
use antarex_sim::workload::{exponential, rush_hour_profile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// U1: the docking sweep under the three dispatch strategies on the
/// CINECA-like heterogeneous pool.
pub fn u1_docking_dispatch() -> String {
    let mut rng = StdRng::seed_from_u64(31);
    let pocket = generate_pocket(30, &mut rng);
    let mut library = generate_library(600, 24, &mut rng);
    library.sort_by_key(Ligand::size); // catalog order: worst case for static
    let campaign = DockingCampaign::new(library, pocket, 20_000, 5);
    let tasks = campaign.as_tasks();

    let pool = || -> Vec<Node> {
        (0..8)
            .map(|i| {
                if i < 4 {
                    Node::nominal(NodeSpec::cineca_accelerated(), i)
                } else {
                    Node::nominal(NodeSpec::cineca_xeon(), i)
                }
            })
            .collect()
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} ligands, 12 devices (4 CPU+2GPU nodes, 4 CPU nodes):",
        tasks.len()
    );
    let _ = writeln!(
        out,
        "{:<14} {:>13} {:>13} {:>11} {:>14}",
        "strategy", "makespan [s]", "energy [kJ]", "imbalance", "vs static"
    );
    let mut static_makespan = None;
    for strategy in DispatchStrategy::all() {
        let mut nodes = pool();
        let outcome = run_task_pool(&mut nodes, &tasks, strategy);
        let baseline = *static_makespan.get_or_insert(outcome.makespan_s);
        let _ = writeln!(
            out,
            "{:<14} {:>13.2} {:>13.1} {:>11.2} {:>13.2}x",
            strategy.name(),
            outcome.makespan_s,
            outcome.energy_j / 1e3,
            outcome.imbalance(),
            baseline / outcome.makespan_s
        );
    }
    let _ = writeln!(
        out,
        "paper: 'Dynamic load balancing and task placement are critical' (§VII-a)"
    );
    out
}

/// Shared navigation day simulation.
pub fn navigation_day(adaptive: bool, seed: u64, hours: f64) -> (Sla, f64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let network = RoadNetwork::city_grid(14, &mut rng);
    let traffic = TrafficModel::weekday().with_incidents(10, network.len(), &mut rng);
    let mut server = NavigationServer::new(network, traffic, 1);
    server.set_alternatives(8);
    let mut sla = Sla::upper_bound("latency", 0.5);
    let mut quality = 0.0;
    let mut served = 0u64;
    let mut time = 6.0 * 3600.0;
    let end = time + hours * 3600.0;
    while time < end {
        let rate = 0.35 * rush_hour_profile(time, 6.0);
        let gap = exponential(&mut rng, rate);
        server.drain(gap);
        time += gap;
        let outcome = server.serve(time, &mut rng);
        sla.check(time, outcome.latency_s);
        quality += outcome.alternatives as f64;
        served += 1;
        if adaptive && served.is_multiple_of(20) {
            let recent = sla
                .history()
                .window_since(time - 300.0)
                .iter()
                .map(|s| s.value)
                .fold(0.0, f64::max);
            let k = server.alternatives();
            if recent > 0.4 && k > 1 {
                server.set_alternatives(k - 1);
            } else if recent < 0.15 && k < 8 {
                server.set_alternatives(k + 1);
            }
        }
    }
    (sla, quality / served.max(1) as f64, served)
}

/// U2: fixed vs SLA-adaptive navigation over a 6-hour window spanning
/// the morning rush.
pub fn u2_navigation_adaptivity() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SLA: latency <= 0.5 s; 06:00-12:00, rush peak 5x at 08:00"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>12} {:>15} {:>14}",
        "policy", "requests", "violations", "violation rate", "mean quality"
    );
    for (label, adaptive) in [("fixed", false), ("adaptive", true)] {
        let (sla, quality, served) = navigation_day(adaptive, 2016, 6.0);
        let report = sla.report();
        let _ = writeln!(
            out,
            "{label:<10} {served:>9} {:>12} {:>14.1}% {quality:>14.2}",
            report.violations,
            100.0 * report.violation_rate()
        );
    }
    let _ = writeln!(
        out,
        "paper: balancing server-side computation against SLA under variable load (§VII-b)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u1_dynamic_beats_static() {
        let report = u1_docking_dispatch();
        let ratios: Vec<f64> = report
            .lines()
            .filter_map(|l| {
                l.split_whitespace()
                    .last()
                    .and_then(|w| w.strip_suffix('x'))
                    .and_then(|v| v.parse().ok())
            })
            .collect();
        assert_eq!(ratios.len(), 3, "{report}");
        assert!(ratios[1] > 1.1, "dynamic speedup {}: {report}", ratios[1]);
        assert!(ratios[2] >= ratios[1] * 0.9, "{report}");
    }

    #[test]
    fn u2_adaptive_reduces_violations() {
        let (fixed, _, _) = navigation_day(false, 77, 3.0);
        let (adaptive, _, _) = navigation_day(true, 77, 3.0);
        assert!(
            adaptive.report().violation_rate() < fixed.report().violation_rate(),
            "adaptive {:?} vs fixed {:?}",
            adaptive.report(),
            fixed.report()
        );
    }
}
