//! Experiment AD1: SLO-driven admission control and autoscaling.
//!
//! Drives the serving tier through a bursty multi-tenant overload and
//! measures what the SLO front door (admission tiers + virtual-capacity
//! autoscaler) buys:
//!
//! 1. **Overload protection** — a large population of well-behaved
//!    tenants shares the pool with a pack of aggressive tenants whose
//!    bursty (Markov-modulated Poisson) demand always fails probe
//!    integrity, so every request they land burns real pool time and
//!    quarantines instead of caching. The same workload is served three
//!    ways: well-behaved-only (the uncontended reference), mixed with
//!    the door open (hardened resilience, no front door), and mixed
//!    behind the front door. The headline claim: the controlled stack
//!    keeps ≥ 95% of the uncontended well-behaved goodput and holds its
//!    p99 while the open door collapses both.
//! 2. **Virtual-capacity invariance** — the autoscaler resizes the
//!    pool's *virtual* worker count only; the controlled campaign's
//!    final state and per-class outcomes are byte-identical at 1, 2, 4,
//!    and 8 physical worker threads.
//! 3. **Crash and recovery** — the controlled, journaled service is
//!    killed mid-campaign; recovery (snapshot + journal-suffix replay,
//!    including `AdmissionUpdate` and `Scale` entries) continues the
//!    remaining windows and the final state report is compared byte for
//!    byte against an uninterrupted run.
//!
//! Everything is virtual-time and seeded, so the whole report is
//! reproducible byte for byte — the CI determinism smoke diffs two runs.

use antarex_serve::chaos::ChaosConfig;
use antarex_serve::driver::{self, BurstProfile, DriverConfig};
use antarex_serve::nav::NavEvaluator;
use antarex_serve::pool::PoolConfig;
use antarex_serve::service::{BatchReport, ResilienceConfig};
use antarex_serve::store::TenantId;
use antarex_serve::{FrontDoorConfig, ServeError, ServiceConfig, TuningRequest, TuningService};
use antarex_sim::faults::{FaultConfig, FaultSchedule};
use antarex_tuner::manager::AppManager;
use std::fmt::Write as _;

/// Size of one AD1 campaign.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionScale {
    /// Well-behaved tenant sessions (ids `0..wb_tenants`).
    pub wb_tenants: usize,
    /// Aggressive tenant sessions (ids `wb_tenants..`), each with its
    /// own workload archetype so their poisoned probes never touch the
    /// well-behaved cache entries.
    pub aggressive_tenants: usize,
    /// Distinct archetypes shared among the well-behaved tenants.
    pub archetypes: usize,
    /// Every Nth well-behaved tenant is *fresh*: it carries unique
    /// workload features, so its first request is always a probe. This
    /// keeps a steady trickle of legitimate pool demand flowing for the
    /// whole campaign — the demand an overloaded queue visibly sheds —
    /// instead of the cache absorbing the entire well-behaved class
    /// after warmup. `0` disables the slice.
    pub fresh_every: usize,
    /// Virtual duration of the campaign, seconds.
    pub duration_s: f64,
    /// Mean request rate per well-behaved tenant, Hz.
    pub wb_rate_hz: f64,
    /// Calm-phase request rate per aggressive tenant, Hz (bursts run
    /// [`BurstProfile::aggressive`] times hotter).
    pub aggressive_rate_hz: f64,
    /// Physical pool workers.
    pub workers: usize,
    /// Evaluation-queue capacity (probes per batch before overflow).
    pub queue_capacity: usize,
}

impl AdmissionScale {
    /// The full campaign printed by the `ad1` experiment: ten thousand
    /// well-behaved tenants — most sharing archetypes (cache-friendly),
    /// a fresh slice carrying steady probe demand — against four
    /// hundred bursty aggressors.
    pub fn full() -> Self {
        AdmissionScale {
            wb_tenants: 10_000,
            aggressive_tenants: 400,
            archetypes: 100,
            fresh_every: 5,
            duration_s: 120.0,
            wb_rate_hz: 0.005,
            aggressive_rate_hz: 0.1,
            workers: 4,
            queue_capacity: 96,
        }
    }

    /// A tiny campaign for smoke testing in `cargo test`.
    pub fn tiny() -> Self {
        AdmissionScale {
            wb_tenants: 64,
            aggressive_tenants: 16,
            archetypes: 16,
            fresh_every: 4,
            duration_s: 30.0,
            wb_rate_hz: 0.05,
            aggressive_rate_hz: 0.2,
            workers: 2,
            queue_capacity: 24,
        }
    }

    /// Batch window of the campaign, seconds.
    pub fn window_s(&self) -> f64 {
        5.0
    }

    fn wb_driver(&self, seed: u64) -> DriverConfig {
        DriverConfig {
            tenants: self.wb_tenants,
            archetypes: self.archetypes,
            duration_s: self.duration_s,
            rate_per_tenant_hz: self.wb_rate_hz,
            batch_window_s: self.window_s(),
            seed,
        }
    }

    fn aggressive_driver(&self, seed: u64) -> DriverConfig {
        DriverConfig {
            tenants: self.aggressive_tenants,
            // archetypes is unused for id-offset tenants (they register
            // with per-tenant features below) but must be non-zero
            archetypes: self.aggressive_tenants.max(1),
            duration_s: self.duration_s,
            rate_per_tenant_hz: self.aggressive_rate_hz,
            batch_window_s: self.window_s(),
            seed,
        }
    }

    /// First aggressive tenant id.
    fn aggressive_base(&self) -> TenantId {
        self.wb_tenants as TenantId
    }
}

/// The merged campaign workload: well-behaved Poisson arrivals plus the
/// aggressive tenants' bursty stream (ids offset past the well-behaved
/// population), sorted by (time, tenant).
pub fn mixed_arrivals(seed: u64, scale: &AdmissionScale) -> Vec<TuningRequest> {
    let mut events = driver::arrivals(&scale.wb_driver(seed));
    let base = scale.aggressive_base();
    events.extend(
        driver::bursty_arrivals(&scale.aggressive_driver(seed), &BurstProfile::aggressive())
            .into_iter()
            .map(|e| TuningRequest {
                tenant: base + e.tenant,
                arrival_s: e.arrival_s,
            }),
    );
    events.sort_by(|a, b| {
        a.arrival_s
            .total_cmp(&b.arrival_s)
            .then(a.tenant.cmp(&b.tenant))
    });
    events
}

/// The campaign's chaos plane: no infrastructure faults (the overload
/// is the adversary), every aggressive tenant's probes poisoned so each
/// of their requests burns pool time and quarantines. The fault
/// schedule's node count is fixed — independent of the physical worker
/// count — so the virtual-capacity invariance proof compares like with
/// like.
fn overload_chaos(seed: u64, scale: &AdmissionScale) -> ChaosConfig {
    let schedule = FaultSchedule::generate(&FaultConfig::none(seed), 8, scale.duration_s + 60.0);
    let mut chaos = ChaosConfig::new(schedule);
    let base = scale.aggressive_base();
    for t in 0..scale.aggressive_tenants as TenantId {
        chaos = chaos.poison(base + t);
    }
    chaos
}

/// The campaign's probe evaluator: the city network with a planner
/// calibration eight times faster than the navigation default, putting
/// one probe at ~0.15 virtual seconds — the regime where the 0.5 s
/// latency SLO is meetable whenever capacity matches demand, so SLO
/// burn separates abusers from well-served tenants instead of flagging
/// every fresh probe.
fn campaign_evaluator(seed: u64) -> NavEvaluator {
    let mut evaluator = NavEvaluator::city(seed);
    evaluator.expansions_per_s *= 8.0;
    evaluator
}

fn campaign_service(
    seed: u64,
    scale: &AdmissionScale,
    workers: usize,
    front_door: Option<FrontDoorConfig>,
) -> TuningService<NavEvaluator> {
    let mut service = TuningService::with_resilience(
        ServiceConfig {
            pool: PoolConfig {
                workers,
                queue_capacity: scale.queue_capacity,
            },
            ..ServiceConfig::default()
        },
        ResilienceConfig::hardened(),
        campaign_evaluator(seed),
    )
    .with_chaos(overload_chaos(seed, scale));
    if let Some(fd) = front_door {
        service = service.with_front_door(fd);
    }
    // well-behaved tenants share archetypes (cache-friendly), except
    // the fresh slice, which carries per-tenant features and therefore
    // steady probe demand; aggressive tenants get per-tenant features
    // past both ranges so their quarantines never evict anyone else's
    // cached points
    for t in 0..scale.wb_tenants {
        let fresh = scale.fresh_every > 0 && t % scale.fresh_every == scale.fresh_every - 1;
        let features = if fresh {
            driver::archetype_features(scale.archetypes + t)
        } else {
            driver::archetype_features(t % scale.archetypes)
        };
        let _ = service.register_tenant(t as TenantId, driver::nav_manager(0.5), features);
    }
    let base = scale.aggressive_base();
    for t in 0..scale.aggressive_tenants {
        let features = driver::archetype_features(scale.archetypes + scale.wb_tenants + t);
        let _ = service.register_tenant(base + t as TenantId, driver::nav_manager(0.5), features);
    }
    service
}

/// Per-class outcome of one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassStats {
    /// Requests the class generated.
    pub requests: usize,
    /// Requests answered with a configuration.
    pub served: usize,
    /// Requests shed: queue overflow or front-door rejection.
    pub shed: usize,
    /// Requests failed: worker faults, deadlines, open circuits.
    pub failed: usize,
    /// Requests rejected for contract reasons (infeasible SLA, ...).
    pub rejected: usize,
    /// 99th-percentile virtual service latency of served requests.
    pub p99_latency_s: f64,
}

impl ClassStats {
    /// Fraction of the class's requests answered with a configuration.
    pub fn goodput(&self) -> f64 {
        if self.requests > 0 {
            self.served as f64 / self.requests as f64
        } else {
            0.0
        }
    }
}

/// Outcome of one campaign run under one front-door profile.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Profile label (`uncontended`, `open_door`, `controlled`).
    pub profile: &'static str,
    /// The well-behaved population's outcome.
    pub wb: ClassStats,
    /// The aggressive population's outcome.
    pub aggressive: ClassStats,
    /// Degraded (cache-only) answers the front door produced.
    pub degraded: u64,
    /// Requests hard-shed by the front door.
    pub admission_shed: u64,
    /// Admission tier transitions over the run.
    pub transitions: u64,
    /// Largest virtual capacity the autoscaler reached.
    pub peak_capacity: usize,
    /// Batch windows served.
    pub windows: usize,
}

fn p99(latencies: &mut [f64]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(f64::total_cmp);
    let index = ((latencies.len() as f64 * 0.99).ceil() as usize).clamp(1, latencies.len()) - 1;
    latencies[index]
}

/// Chunks the arrival stream into non-empty batch windows.
fn batch_windows(events: &[TuningRequest], window_s: f64) -> Vec<&[TuningRequest]> {
    let mut windows = Vec::new();
    let mut start = 0;
    let mut window_end = window_s;
    while start < events.len() {
        let end = events[start..]
            .iter()
            .position(|e| e.arrival_s >= window_end)
            .map(|offset| start + offset)
            .unwrap_or(events.len());
        if end == start {
            window_end += window_s;
            continue;
        }
        windows.push(&events[start..end]);
        start = end;
    }
    windows
}

fn tally_window(
    requests: &[TuningRequest],
    report: &BatchReport,
    wb_tenants: usize,
    wb: &mut ClassStats,
    aggressive: &mut ClassStats,
    wb_latencies: &mut Vec<f64>,
    aggressive_latencies: &mut Vec<f64>,
) {
    for (request, response) in requests.iter().zip(&report.responses) {
        let well_behaved = (request.tenant as usize) < wb_tenants;
        let (class, latencies) = if well_behaved {
            (&mut *wb, &mut *wb_latencies)
        } else {
            (&mut *aggressive, &mut *aggressive_latencies)
        };
        class.requests += 1;
        match response {
            Ok(answer) => {
                class.served += 1;
                latencies.push(answer.latency_s);
            }
            Err(ServeError::Shed { .. }) | Err(ServeError::AdmissionRejected { .. }) => {
                class.shed += 1;
            }
            Err(ServeError::WorkerFailed { .. })
            | Err(ServeError::Deadline)
            | Err(ServeError::CircuitOpen { .. }) => class.failed += 1,
            Err(_) => class.rejected += 1,
        }
    }
}

/// Serves one campaign workload under one profile, classifying every
/// outcome as well-behaved or aggressive.
pub fn overload_run(
    seed: u64,
    scale: &AdmissionScale,
    profile: &'static str,
    front_door: Option<FrontDoorConfig>,
    include_aggressive: bool,
) -> RunOutcome {
    let events = if include_aggressive {
        mixed_arrivals(seed, scale)
    } else {
        driver::arrivals(&scale.wb_driver(seed))
    };
    let service = campaign_service(seed, scale, scale.workers, front_door);
    let windows = batch_windows(&events, scale.window_s());
    let mut wb = ClassStats::default();
    let mut aggressive = ClassStats::default();
    let mut wb_latencies = Vec::new();
    let mut aggressive_latencies = Vec::new();
    let mut degraded = 0u64;
    let mut admission_shed = 0u64;
    let mut peak_capacity = scale.workers;
    for window in &windows {
        let report = service.serve_batch(window);
        tally_window(
            window,
            &report,
            scale.wb_tenants,
            &mut wb,
            &mut aggressive,
            &mut wb_latencies,
            &mut aggressive_latencies,
        );
        degraded += report.degraded as u64;
        admission_shed += report.admission_shed as u64;
        peak_capacity = peak_capacity.max(report.capacity);
    }
    wb.p99_latency_s = p99(&mut wb_latencies);
    aggressive.p99_latency_s = p99(&mut aggressive_latencies);
    RunOutcome {
        profile,
        wb,
        aggressive,
        degraded,
        admission_shed,
        transitions: service.obs().admission_transitions(),
        peak_capacity,
        windows: windows.len(),
    }
}

/// The three-way overload comparison: well-behaved-only reference, the
/// mixed workload with the door open, the mixed workload behind the
/// front door.
pub fn overload_campaign(seed: u64, scale: &AdmissionScale) -> Vec<RunOutcome> {
    vec![
        overload_run(seed, scale, "uncontended", None, false),
        overload_run(seed, scale, "open_door", None, true),
        overload_run(
            seed,
            scale,
            "controlled",
            Some(FrontDoorConfig::hardened()),
            true,
        ),
    ]
}

/// Outcome of the virtual-capacity invariance proof.
#[derive(Debug, Clone, PartialEq)]
pub struct InvarianceOutcome {
    /// Physical worker counts compared.
    pub worker_counts: Vec<usize>,
    /// Whether every run produced byte-identical per-class outcomes.
    pub outcomes_identical: bool,
    /// Whether every run's final state report was byte-identical.
    pub state_identical: bool,
}

/// Runs the controlled campaign at several physical worker counts and
/// checks that outcomes and final state are byte-identical: the
/// autoscaler only ever resizes *virtual* capacity.
pub fn worker_invariance(seed: u64, scale: &AdmissionScale) -> InvarianceOutcome {
    let worker_counts = vec![1, 2, 4, 8];
    let events = mixed_arrivals(seed, scale);
    let windows = batch_windows(&events, scale.window_s());
    let mut outcomes: Vec<(String, String)> = Vec::new();
    for &workers in &worker_counts {
        let service = campaign_service(seed, scale, workers, Some(FrontDoorConfig::hardened()));
        let mut digest = String::new();
        for window in &windows {
            let report = service.serve_batch(window);
            let _ = write!(
                digest,
                "[cap={} deg={} shed={} resp={:?}]",
                report.capacity, report.degraded, report.admission_shed, report.responses,
            );
        }
        outcomes.push((digest, service.state_report()));
    }
    let (first_digest, first_state) = &outcomes[0];
    InvarianceOutcome {
        outcomes_identical: outcomes.iter().all(|(d, _)| d == first_digest),
        state_identical: outcomes.iter().all(|(_, s)| s == first_state),
        worker_counts,
    }
}

/// Outcome of the crash-recovery drill.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// Batch windows served before the crash.
    pub windows_before_crash: usize,
    /// Batch windows served after recovery.
    pub windows_after_crash: usize,
    /// Whether a Daly snapshot existed at the crash.
    pub had_snapshot: bool,
    /// Journal-suffix entries replayed on recovery.
    pub replayed_entries: usize,
    /// Whether the recovered run's final state report — admission
    /// tiers, EWMA burns, and autoscaler state included — equals the
    /// uninterrupted run's, byte for byte.
    pub bit_identical: bool,
}

/// Kills the controlled service mid-campaign, recovers from snapshot +
/// journal suffix (replaying `AdmissionUpdate` and `Scale` entries),
/// finishes the workload, and compares against an uninterrupted run.
pub fn crash_recovery_drill(seed: u64, scale: &AdmissionScale) -> RecoveryOutcome {
    let events = mixed_arrivals(seed, scale);
    let windows = batch_windows(&events, scale.window_s());
    let crash_at = windows.len() / 2;
    let front_door = FrontDoorConfig::hardened();
    let make_manager = |_tenant: TenantId| -> AppManager { driver::nav_manager(0.5) };

    let build = || campaign_service(seed, scale, scale.workers, Some(front_door));

    // the uninterrupted reference
    let reference = build();
    for window in &windows {
        reference.serve_batch(window);
    }

    // the victim: crash after `crash_at` windows, recover, continue
    let victim = build();
    for window in &windows[..crash_at] {
        victim.serve_batch(window);
    }
    let (snapshot, entries) = victim.crash();
    let had_snapshot = snapshot.is_some();
    let replayed_entries = entries.len();
    let recovered = TuningService::recover(
        ServiceConfig {
            pool: PoolConfig {
                workers: scale.workers,
                queue_capacity: scale.queue_capacity,
            },
            ..ServiceConfig::default()
        },
        ResilienceConfig::hardened(),
        Some(overload_chaos(seed, scale)),
        Some(front_door),
        campaign_evaluator(seed),
        snapshot,
        &entries,
        &make_manager,
    );
    for window in &windows[crash_at..] {
        recovered.serve_batch(window);
    }

    RecoveryOutcome {
        windows_before_crash: crash_at,
        windows_after_crash: windows.len() - crash_at,
        had_snapshot,
        replayed_entries,
        bit_identical: recovered.state_report() == reference.state_report(),
    }
}

/// Renders the full AD1 report for one seed and scale.
pub fn ad1_report(seed: u64, scale: &AdmissionScale) -> String {
    let mut out = String::new();
    let fd = FrontDoorConfig::hardened();
    let _ = writeln!(
        out,
        "admission campaign (seed {seed}, {} well-behaved + {} aggressive tenants, {} workers, {:.0} s virtual)",
        scale.wb_tenants, scale.aggressive_tenants, scale.workers, scale.duration_s
    );
    let _ = writeln!(
        out,
        "front door: target {:.2}, degrade {:.0}x/{:.0}x, shed {:.0}x/{:.0}x, dwell {:.0} s; autoscale {}..{} virtual workers",
        fd.admission.target,
        fd.admission.degrade_enter,
        fd.admission.degrade_exit,
        fd.admission.shed_enter,
        fd.admission.shed_exit,
        fd.admission.min_dwell_s,
        fd.autoscale.min_workers,
        fd.autoscale.max_workers,
    );

    let rows = overload_campaign(seed, scale);
    let _ = writeln!(
        out,
        "\n{:>11} {:>5} {:>9} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "profile", "class", "requests", "served", "shed", "failed", "goodput", "p99"
    );
    for row in &rows {
        for (class, stats) in [("wb", &row.wb), ("aggr", &row.aggressive)] {
            if stats.requests == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:>11} {:>5} {:>9} {:>7} {:>7} {:>7} {:>8.1}% {:>7.3} s",
                row.profile,
                class,
                stats.requests,
                stats.served,
                stats.shed,
                stats.failed,
                100.0 * stats.goodput(),
                stats.p99_latency_s,
            );
        }
    }
    let uncontended = &rows[0];
    let open_door = &rows[1];
    let controlled = &rows[2];
    let wb_reference = uncontended.wb.goodput();
    let _ = writeln!(
        out,
        "controlled keeps {:.1}% of uncontended well-behaved goodput; the open door keeps {:.1}%",
        100.0 * controlled.wb.goodput() / wb_reference,
        100.0 * open_door.wb.goodput() / wb_reference,
    );
    let _ = writeln!(
        out,
        "well-behaved p99: uncontended {:.3} s, open door {:.3} s, controlled {:.3} s (SLO 0.5 s)",
        uncontended.wb.p99_latency_s, open_door.wb.p99_latency_s, controlled.wb.p99_latency_s,
    );
    let _ = writeln!(
        out,
        "front door: {} degraded answers, {} hard sheds, {} tier transitions, peak virtual capacity {} (physical {})",
        controlled.degraded,
        controlled.admission_shed,
        controlled.transitions,
        controlled.peak_capacity,
        scale.workers,
    );

    let invariance = worker_invariance(seed, scale);
    let _ = writeln!(
        out,
        "\nvirtual-capacity invariance across {:?} physical workers: outcomes {}, state {}",
        invariance.worker_counts,
        if invariance.outcomes_identical {
            "IDENTICAL"
        } else {
            "DIVERGED"
        },
        if invariance.state_identical {
            "IDENTICAL"
        } else {
            "DIVERGED"
        },
    );

    let recovery = crash_recovery_drill(seed, scale);
    let _ = writeln!(
        out,
        "\ncrash after {} of {} windows: snapshot {}, {} journal entries replayed, recovered front-door state {} the uninterrupted run",
        recovery.windows_before_crash,
        recovery.windows_before_crash + recovery.windows_after_crash,
        if recovery.had_snapshot { "present" } else { "absent" },
        recovery.replayed_entries,
        if recovery.bit_identical {
            "IDENTICAL to"
        } else {
            "DIVERGED from"
        }
    );
    out
}

/// The registered `ad1` experiment.
pub fn ad1_admission_control() -> String {
    ad1_report(42, &AdmissionScale::full())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_deterministic() {
        let a = ad1_report(3, &AdmissionScale::tiny());
        let b = ad1_report(3, &AdmissionScale::tiny());
        assert_eq!(a, b, "same seed must reproduce the report byte for byte");
    }

    #[test]
    fn front_door_protects_well_behaved_goodput() {
        let rows = overload_campaign(42, &AdmissionScale::full());
        let reference = rows[0].wb.goodput();
        assert!(
            reference > 0.9,
            "uncontended must mostly serve: {reference}"
        );
        let open = rows[1].wb.goodput() / reference;
        let controlled = rows[2].wb.goodput() / reference;
        assert!(
            open <= 0.90,
            "the overload must cost the open door >= 10% of well-behaved goodput: {open}"
        );
        assert!(
            controlled >= 0.95,
            "the front door must keep >= 95% of well-behaved goodput: {controlled}"
        );
        assert!(
            rows[2].wb.p99_latency_s < rows[1].wb.p99_latency_s,
            "the front door must hold p99: controlled {} vs open {}",
            rows[2].wb.p99_latency_s,
            rows[1].wb.p99_latency_s
        );
        assert!(
            rows[2].admission_shed > 0,
            "aggressive tenants must get hard-shed"
        );
        assert!(
            rows[2].peak_capacity > AdmissionScale::full().workers,
            "the autoscaler must have grown virtual capacity"
        );
    }

    #[test]
    fn controlled_outcomes_are_physical_worker_invariant() {
        let outcome = worker_invariance(7, &AdmissionScale::tiny());
        assert!(
            outcome.outcomes_identical,
            "responses must not depend on threads"
        );
        assert!(outcome.state_identical, "state must not depend on threads");
    }

    #[test]
    fn crash_recovery_is_bit_identical() {
        let outcome = crash_recovery_drill(7, &AdmissionScale::tiny());
        assert!(outcome.windows_before_crash > 0);
        assert!(outcome.windows_after_crash > 0);
        assert!(outcome.bit_identical, "recovery must replay exactly");
    }
}
