//! Experiments C1–C5: the paper's quantitative claims, paper value vs
//! measured value on the simulated platform.

use antarex_core::exascale::{ExascaleProjection, ENVELOPE_HIGH_W, ENVELOPE_LOW_W, EXAFLOPS};
use antarex_rtrm::governor::{optimal_pstate, run_with_governor, Governor, GovernorKind};
use antarex_sim::cooling::{ambient_temp_c, CoolingPlant, SUMMER_DAY, WINTER_DAY};
use antarex_sim::job::WorkUnit;
use antarex_sim::node::{Node, NodeSpec};
use antarex_sim::variability::ProcessVariation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// C1: Green500-style efficiency of the simulated accelerated node vs the
/// CPU-only node.
pub fn c1_heterogeneous_efficiency() -> String {
    let work = WorkUnit::compute_bound(2e13);

    let mut homo = Node::nominal(NodeSpec::cineca_xeon(), 0);
    let homo_outcome = homo.execute(&work);
    let homo_eff = homo_outcome.mflops_per_watt(work.flops);

    let measure_hetero = |spec: NodeSpec| -> f64 {
        let mut node = Node::nominal(spec, 1);
        let halves = work.split(2);
        let a = node.execute_offloaded(&halves[0], 0);
        let b = node.execute_offloaded(&halves[1], 1);
        work.flops / 1e6 / (a.energy_j + b.energy_j)
    };
    let gpu_eff = measure_hetero(NodeSpec::cineca_accelerated());
    let mic_eff = measure_hetero(NodeSpec::salomon_phi());

    let mut out = String::new();
    let _ = writeln!(out, "{:<28} {:>14} {:>8}", "node", "MFLOPS/W", "ratio");
    let _ = writeln!(
        out,
        "{:<28} {homo_eff:>14.0} {:>8.2}",
        "CPU-only (2x Xeon)", 1.0
    );
    let _ = writeln!(
        out,
        "{:<28} {gpu_eff:>14.0} {:>8.2}",
        "heterogeneous (+2 GPGPU)",
        gpu_eff / homo_eff
    );
    let _ = writeln!(
        out,
        "{:<28} {mic_eff:>14.0} {:>8.2}",
        "heterogeneous (+2 MIC)",
        mic_eff / homo_eff
    );
    let _ = writeln!(
        out,
        "paper (Green500, 06/2015): 7032 vs 2304 MFLOPS/W -> ratio 3.05"
    );
    out
}

/// C2: Monte-Carlo energy distribution over sampled process corners.
pub fn c2_variability_spread() -> String {
    let mut rng = StdRng::seed_from_u64(161);
    let work = WorkUnit::with_intensity(2e12, 4.0);
    let mut energies: Vec<f64> = (0..200)
        .map(|i| {
            let mut node = Node::with_variation(
                NodeSpec::cineca_xeon(),
                i,
                ProcessVariation::sample(&mut rng),
            );
            node.execute(&work).energy_j
        })
        .collect();
    energies.sort_by(f64::total_cmp);
    let mean = energies.iter().sum::<f64>() / energies.len() as f64;
    let p5 = energies[energies.len() / 20];
    let p95 = energies[energies.len() * 19 / 20];
    let spread = (energies.last().unwrap() - energies[0]) / mean;
    let p_spread = (p95 - p5) / mean;

    let mut out = String::new();
    let _ = writeln!(out, "200 nominally identical nodes, same job:");
    let _ = writeln!(
        out,
        "energy mean {:.1} kJ | p5-p95 spread {:.1}% | min-max spread {:.1}%",
        mean / 1e3,
        100.0 * p_spread,
        100.0 * spread
    );
    let _ = writeln!(out, "paper (Eurora characterization): ~15% variation");
    out
}

/// C3: energy per workload profile under each governor, with the savings
/// of the optimal operating point vs `performance`/`ondemand`.
pub fn c3_governor_savings() -> String {
    let profiles: [(&str, Vec<WorkUnit>); 4] = [
        ("memory-bound", vec![WorkUnit::memory_bound(3e11); 6]),
        ("intensity 1", vec![WorkUnit::with_intensity(3e11, 1.0); 6]),
        ("intensity 3", vec![WorkUnit::with_intensity(5e11, 3.0); 6]),
        ("compute-bound", vec![WorkUnit::compute_bound(1e12); 6]),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>12} {:>10} {:>9}",
        "profile", "perf [kJ]", "ondem [kJ]", "opt [kJ]", "saving", "opt P"
    );
    for (label, work) in &profiles {
        let mut energy = Vec::new();
        for kind in [
            GovernorKind::Performance,
            GovernorKind::Ondemand,
            GovernorKind::EnergyOptimal,
        ] {
            let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
            let (_, e) = run_with_governor(&mut node, &mut Governor::new(kind), work);
            energy.push(e);
        }
        let node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        let opt_idx = optimal_pstate(&node, &work[0]);
        let opt_f = node.spec().pstates.state(opt_idx).freq_ghz;
        let _ = writeln!(
            out,
            "{label:<14} {:>12.2} {:>12.2} {:>12.2} {:>9.1}% {opt_f:>7.1}G",
            energy[0] / 1e3,
            energy[1] / 1e3,
            energy[2] / 1e3,
            100.0 * (1.0 - energy[2] / energy[0]),
        );
    }
    let _ = writeln!(
        out,
        "paper: optimal operating points save 18-50% vs the default Linux governor"
    );
    out
}

/// C4: PUE across the year.
pub fn c4_pue_seasons() -> String {
    let plant = CoolingPlant::european_datacenter();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>10} {:>8}",
        "month", "day", "ambient", "PUE"
    );
    for (month, day) in [
        ("January", WINTER_DAY),
        ("March", 74),
        ("May", 135),
        ("July", SUMMER_DAY),
        ("September", 258),
        ("November", 319),
    ] {
        let ambient = ambient_temp_c(day);
        let _ = writeln!(
            out,
            "{month:<10} {day:>5} {ambient:>8.1} C {:>8.3}",
            plant.pue(1e6, ambient)
        );
    }
    let winter = plant.pue(1e6, ambient_temp_c(WINTER_DAY));
    let summer = plant.pue(1e6, ambient_temp_c(SUMMER_DAY));
    let _ = writeln!(
        out,
        "winter -> summer loss: {:.1}%   (paper: >10%)",
        100.0 * (summer - winter) / winter
    );
    out
}

/// C5: project the measured use-case node metrics to one exaFLOPS.
pub fn c5_exascale_projection() -> String {
    let work = WorkUnit::compute_bound(1e13);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>12} {:>14} {:>8}",
        "node", "GFLOP/s", "MFLOPS/W", "1 EF power", "fits?"
    );
    for (label, spec, accelerated) in [
        ("CPU-only (2x Xeon)", NodeSpec::cineca_xeon(), false),
        (
            "heterogeneous (+2 GPGPU)",
            NodeSpec::cineca_accelerated(),
            true,
        ),
        ("heterogeneous (+2 MIC)", NodeSpec::salomon_phi(), true),
    ] {
        let mut node = Node::nominal(spec, 0);
        let (time, energy) = if accelerated {
            let halves = work.split(2);
            let a = node.execute_offloaded(&halves[0], 0);
            let b = node.execute_offloaded(&halves[1], 1);
            (a.time_s.max(b.time_s), a.energy_j + b.energy_j)
        } else {
            let outcome = node.execute(&work);
            (outcome.time_s, outcome.energy_j)
        };
        let gflops = work.flops / 1e9 / time;
        let power = energy / time;
        let projection = ExascaleProjection::new(gflops, power, 1.25);
        let mw = projection.projected_power_w(EXAFLOPS) / 1e6;
        let _ = writeln!(
            out,
            "{label:<28} {gflops:>10.0} {:>12.0} {mw:>11.0} MW {:>8}",
            projection.mflops_per_watt(),
            if projection.fits_envelope() {
                "yes"
            } else {
                "no"
            }
        );
    }
    let _ = writeln!(
        out,
        "envelope: {:.0}-{:.0} MW. paper: 2015 efficiency is ~2 orders of magnitude short.",
        ENVELOPE_LOW_W / 1e6,
        ENVELOPE_HIGH_W / 1e6
    );

    // §I: "Performance metrics extracted from the two use cases will be
    // modelled to extrapolate these results towards Exascale" — scale the
    // docking sweep (bulk-synchronous with a per-iteration hit-list
    // reduction) across the TrueScale-class interconnect.
    let net = antarex_sim::interconnect::Interconnect::truescale_qdr();
    let _ = writeln!(
        out,
        "\nuse-case scaling (docking sweep, 1 s/iter compute, 64 KiB reduce):"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>14} {:>12}",
        "nodes", "iter time", "efficiency"
    );
    for ranks in [64usize, 1024, 16384, 262144] {
        let time = net.bsp_time_s(ranks, 1, 1.0, 65536.0);
        let eff = net.bsp_efficiency(ranks, 1, 1.0, 65536.0);
        let _ = writeln!(out, "{ranks:>10} {:>11.2e} s {:>11.1}%", time, 100.0 * eff);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_shape() {
        let report = c1_heterogeneous_efficiency();
        // extract the GPU ratio
        let ratio: f64 = report
            .lines()
            .find(|l| l.contains("GPGPU"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!((2.2..4.2).contains(&ratio), "{report}");
    }

    #[test]
    fn c3_contains_band_savings() {
        let report = c3_governor_savings();
        let savings: Vec<f64> = report
            .lines()
            .filter(|l| l.contains('%'))
            .filter_map(|l| {
                l.split_whitespace()
                    .find(|w| w.ends_with('%'))
                    .and_then(|w| w.trim_end_matches('%').parse().ok())
            })
            .collect();
        assert!(
            savings.iter().any(|s| (18.0..=50.0).contains(s)),
            "{report}"
        );
    }

    #[test]
    fn c4_loss_over_ten_percent() {
        let report = c4_pue_seasons();
        assert!(report.contains("loss"), "{report}");
        let loss: f64 = report
            .lines()
            .find(|l| l.contains("loss"))
            .and_then(|l| {
                l.split_whitespace()
                    .find(|w| w.ends_with('%'))
                    .and_then(|w| w.trim_end_matches('%').parse().ok())
            })
            .unwrap();
        assert!(loss > 10.0, "{report}");
    }

    #[test]
    fn c5_no_2015_node_fits() {
        let report = c5_exascale_projection();
        assert!(!report.contains(" yes"), "{report}");
    }
}
