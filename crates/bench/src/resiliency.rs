//! Experiment R1: the fault-injection campaign.
//!
//! Exercises the cross-layer resiliency stack end to end on the
//! simulated platform: deterministic fault schedules
//! (`antarex_sim::faults`) drive three sub-experiments —
//!
//! 1. **Checkpoint/restart** — a fixed batch of work on a small
//!    cluster, swept over fault rate × checkpoint policy (none /
//!    fixed interval / Daly-optimal) × governor, reporting wall clock,
//!    wasted-work fraction, and energy overhead relative to the
//!    fault-free run of the same governor.
//! 2. **Sensor-loss-tolerant thermal control** — a DVFS controller
//!    chasing a junction-temperature limit through an ambient swing,
//!    with its only sensor suffering dropouts and stuck-at faults; a
//!    naive consumer (acts on whatever arrives, holds blindly on
//!    nothing) against [`ResilientSensor`]'s
//!    hold-then-EWMA-then-assume-worst estimates.
//! 3. **CADA safe mode** — an exploring tuner loop hit by gray-slowdown
//!    episodes that inflate latency; [`SafeModeGuard`]
//!    falls back to the last known-good configuration after
//!    consecutive SLA violations, against a guard-less explorer.
//!
//! Everything is seeded: the same seed reproduces the identical report,
//! byte for byte (the determinism test relies on it).

use antarex_monitor::{Fill, ResilientSensor, Sla};
use antarex_rtrm::checkpoint::{crash_source, run_to_completion, CheckpointPolicy};
use antarex_rtrm::governor::{Governor, GovernorKind};
use antarex_sim::faults::{FaultConfig, FaultSchedule, SensorEffect};
use antarex_sim::job::WorkUnit;
use antarex_sim::node::{Node, NodeSpec};
use antarex_tuner::knob::KnobValue;
use antarex_tuner::safemode::{SafeModeAction, SafeModeGuard};
use antarex_tuner::Configuration;
use std::fmt::Write as _;

/// Size of one campaign run.
#[derive(Debug, Clone, Copy)]
pub struct CampaignScale {
    /// Nodes in the simulated cluster.
    pub nodes: usize,
    /// Work units of 1 TFLOP each per run.
    pub work_units: usize,
    /// Control horizon of the sensor/safe-mode parts, seconds.
    pub control_horizon_s: f64,
}

impl CampaignScale {
    /// The full campaign printed by the `r1` experiment.
    pub fn full() -> Self {
        CampaignScale {
            nodes: 16,
            work_units: 2048,
            control_horizon_s: 4.0 * 3600.0,
        }
    }

    /// A tiny grid for smoke testing in `cargo test`.
    pub fn tiny() -> Self {
        CampaignScale {
            nodes: 4,
            work_units: 8,
            control_horizon_s: 1800.0,
        }
    }
}

/// One row of the checkpoint sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRow {
    /// Fault-rate multiplier (0 = fault-free).
    pub fault_rate: f64,
    /// Policy label (`none`, `fixed`, `daly`).
    pub policy: &'static str,
    /// Governor name.
    pub governor: &'static str,
    /// Total wall clock, seconds.
    pub wall_clock_s: f64,
    /// Wasted work as a fraction of useful work.
    pub wasted_fraction: f64,
    /// Energy overhead vs the fault-free run of this governor.
    pub energy_overhead: f64,
    /// Crashes survived.
    pub restarts: usize,
}

/// Checkpoint/restart sweep: fault rate × policy × governor.
pub fn checkpoint_sweep(seed: u64, scale: CampaignScale) -> Vec<CheckpointRow> {
    let unit = WorkUnit::compute_bound(1e12);
    let ckpt_cost_s = 30.0;
    let restart_s = 60.0;
    let mut rows = Vec::new();
    for kind in [GovernorKind::Performance, GovernorKind::EnergyOptimal] {
        // characterize this governor's operating point once
        let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        let mut governor = Governor::new(kind);
        let idx = governor.select(&node, Some(&unit));
        node.set_pstate(idx);
        let outcome = node.execute(&unit);
        let work_s = outcome.time_s * scale.work_units as f64;
        let power_w = outcome.avg_power_w;
        let fault_free_energy_j = power_w * work_s * scale.nodes as f64;
        let horizon_s = work_s * 10.0;
        for fault_rate in [0.0, 1.0, 4.0] {
            let schedule = FaultSchedule::generate(
                &FaultConfig::exascale(seed, fault_rate),
                scale.nodes,
                horizon_s,
            );
            let crashes = schedule.any_crash_between(0.0, horizon_s);
            let cluster_mtbf_s = if fault_rate == 0.0 {
                f64::INFINITY
            } else {
                FaultConfig::exascale(seed, fault_rate).node_mtbf_s / scale.nodes as f64
            };
            let policies: [(&'static str, CheckpointPolicy); 3] = [
                ("none", CheckpointPolicy::none(restart_s)),
                (
                    "fixed-600s",
                    CheckpointPolicy::every(600.0, ckpt_cost_s, restart_s),
                ),
                (
                    "daly",
                    if cluster_mtbf_s.is_finite() {
                        CheckpointPolicy::daly(cluster_mtbf_s, ckpt_cost_s, restart_s)
                    } else {
                        // no faults: checkpointing is pure overhead, the
                        // optimal interval diverges — use none
                        CheckpointPolicy::none(restart_s)
                    },
                ),
            ];
            for (label, policy) in policies {
                let run = run_to_completion(work_s, policy, crash_source(crashes.clone()));
                let energy_j = power_w * run.wall_clock_s * scale.nodes as f64;
                rows.push(CheckpointRow {
                    fault_rate,
                    policy: label,
                    governor: kind.name(),
                    wall_clock_s: run.wall_clock_s,
                    wasted_fraction: run.wasted_work_s / work_s,
                    energy_overhead: energy_j / fault_free_energy_j - 1.0,
                    restarts: run.restarts,
                });
            }
        }
    }
    rows
}

/// One row of the thermal-control comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalRow {
    /// Fault-rate multiplier.
    pub fault_rate: f64,
    /// Consumer label (`naive` or `resilient`).
    pub consumer: &'static str,
    /// Thermal-SLA violation rate over the horizon.
    pub violation_rate: f64,
    /// Mean P-state index held (throughput proxy; higher is faster).
    pub mean_pstate: f64,
}

/// Per-P-state self-heating of the toy thermal plant, °C above ambient.
const HEAT_C: [f64; 8] = [30.0, 34.0, 38.0, 42.0, 46.0, 50.0, 54.0, 58.0];
const LIMIT_C: f64 = 80.0;
const MARGIN_C: f64 = 1.0;

fn ambient_c(t: f64) -> f64 {
    30.0 + 10.0 * (2.0 * std::f64::consts::PI * t / 1800.0).sin()
}

fn admissible_pstate(ambient: f64) -> usize {
    HEAT_C
        .iter()
        .rposition(|h| ambient + h <= LIMIT_C - MARGIN_C)
        .unwrap_or(0)
}

/// Thermal control under sensor loss: naive vs resilient consumption of
/// a faulty temperature sensor. The true junction temperature is
/// `ambient(t) + HEAT[pstate]`; the SLA is `temp <= 80 °C`.
pub fn thermal_control_run(
    seed: u64,
    fault_rate: f64,
    resilient: bool,
    horizon_s: f64,
) -> ThermalRow {
    let mut config = FaultConfig::none(seed);
    if fault_rate > 0.0 {
        // sensor faults only, long enough for the ambient to move
        // underneath a blind or frozen controller
        config.sensor_mtbf_s = 3600.0 / fault_rate;
        config.sensor_outage_s = 180.0;
        config.stuck_fraction = 0.5;
    }
    let schedule = FaultSchedule::generate(&config, 1, horizon_s);
    let mut sensor = ResilientSensor::thermal();
    let mut sla = Sla::upper_bound("junction", LIMIT_C);
    let mut pstate = admissible_pstate(ambient_c(0.0));
    let mut pstate_sum = 0.0;
    let mut steps = 0u64;
    let tick = 10.0;
    let mut t = 0.0;
    while t < horizon_s {
        let true_temp = ambient_c(t) + HEAT_C[pstate];
        sla.check(t, true_temp);
        // what the sensor delivers this tick
        let raw = match schedule.sensor_effect(0, t) {
            SensorEffect::Ok => Some(true_temp),
            SensorEffect::Dropped => None,
            SensorEffect::StuckSince(t0) => {
                // the register froze at whatever was true then; the
                // monitor's freeze detector (identical consecutive
                // samples) flags it, so the resilient path treats it
                // as missing while the naive path consumes it
                let frozen = ambient_c(t0) + HEAT_C[pstate];
                if resilient {
                    None
                } else {
                    Some(frozen)
                }
            }
        };
        // control: infer ambient from the estimate, pick the fastest
        // admissible P-state. The naive consumer acts on whatever
        // arrives (including a frozen value) and blindly holds on
        // nothing; the resilient one runs the estimate through the
        // hardened channel and backs off one P-state whenever the
        // estimate is not fresh — degrade gracefully under uncertainty.
        if resilient {
            let e = sensor.observe(t, raw);
            let (temp, penalty) = match e.fill {
                Fill::Fresh => (e.value.expect("fresh has a value"), 0),
                Fill::Held | Fill::Ewma => (e.value.expect("seen before"), 1),
                Fill::Unavailable => (LIMIT_C, 0), // assume the worst
            };
            let inferred_ambient = temp - HEAT_C[pstate];
            pstate = admissible_pstate(inferred_ambient).saturating_sub(penalty);
        } else if let Some(temp) = raw {
            let inferred_ambient = temp - HEAT_C[pstate];
            pstate = admissible_pstate(inferred_ambient);
        }
        pstate_sum += pstate as f64;
        steps += 1;
        t += tick;
    }
    ThermalRow {
        fault_rate,
        consumer: if resilient { "resilient" } else { "naive" },
        violation_rate: sla.report().violation_rate(),
        mean_pstate: pstate_sum / steps as f64,
    }
}

/// One row of the safe-mode comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SafeModeRow {
    /// Fault-rate multiplier.
    pub fault_rate: f64,
    /// Controller label (`explorer` or `safe-mode`).
    pub controller: &'static str,
    /// SLA violation rate across rounds.
    pub violation_rate: f64,
    /// Times the guard tripped (0 for the plain explorer).
    pub trips: u64,
    /// Mean quality (alternatives knob) across rounds.
    pub mean_quality: f64,
}

fn quality_config(alternatives: i64) -> Configuration {
    let mut c = Configuration::new();
    c.set("alternatives", KnobValue::Int(alternatives));
    c
}

/// Tuner exploration through gray-slowdown episodes, with and without
/// the safe-mode guard. Latency of a round is
/// `0.05 s × alternatives × slowdown(t)`; the SLA is `latency <= 0.5 s`,
/// so at the 2× episode slowdown only quality levels up to 5 survive —
/// exactly the configurations the guard has qualified as known-good
/// right before a trip.
pub fn safemode_run(seed: u64, fault_rate: f64, guarded: bool, horizon_s: f64) -> SafeModeRow {
    let mut config = FaultConfig::none(seed);
    if fault_rate > 0.0 {
        config.gray_mtbf_s = 4.0 * 3600.0 / fault_rate;
        config.gray_slowdown = 2.0;
        config.gray_duration_s = 600.0;
    }
    let schedule = FaultSchedule::generate(&config, 1, horizon_s);
    let mut guard = SafeModeGuard::new(3, 8);
    let mut sla = Sla::upper_bound("latency", 0.5);
    let round_s = 30.0;
    let mut alternatives: i64 = 1;
    let mut held: Option<i64> = None; // safe-mode override
    let mut quality_sum = 0.0;
    let mut rounds = 0u64;
    let mut t = 0.0;
    while t < horizon_s {
        let active = held.unwrap_or(alternatives);
        let latency_s = 0.05 * active as f64 * schedule.slowdown(0, t);
        let ok = sla.check(t, latency_s);
        quality_sum += active as f64;
        rounds += 1;
        if guarded {
            match guard.record_round(ok, &quality_config(active)) {
                SafeModeAction::Engage(good) => {
                    held = Some(good.get_int("alternatives").unwrap_or(1));
                }
                SafeModeAction::Release => held = None,
                SafeModeAction::Normal | SafeModeAction::Hold => {}
            }
        }
        if held.is_none() {
            // explore: sweep the quality knob up, wrap after the top
            alternatives = if alternatives >= 8 {
                1
            } else {
                alternatives + 1
            };
        }
        t += round_s;
    }
    SafeModeRow {
        fault_rate,
        controller: if guarded { "safe-mode" } else { "explorer" },
        violation_rate: sla.report().violation_rate(),
        trips: guard.trips(),
        mean_quality: quality_sum / rounds as f64,
    }
}

/// Renders the full campaign for a seed and scale.
pub fn campaign_report(seed: u64, scale: CampaignScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault model: Weibull crashes (k=0.7), sensor dropouts/stuck-at,\n\
         power spikes, link degradation, gray slowdowns; seed {seed}"
    );

    let _ = writeln!(
        out,
        "\n-- checkpoint/restart: {} nodes, {} TFLOP units, cost 30 s, restart 60 s",
        scale.nodes, scale.work_units
    );
    let _ = writeln!(
        out,
        "{:<15} {:>5} {:<11} {:>10} {:>9} {:>9} {:>9}",
        "governor", "rate", "policy", "wall [s]", "wasted", "energy+", "restarts"
    );
    for row in checkpoint_sweep(seed, scale) {
        let _ = writeln!(
            out,
            "{:<15} {:>5.1} {:<11} {:>10.0} {:>8.1}% {:>8.1}% {:>9}",
            row.governor,
            row.fault_rate,
            row.policy,
            row.wall_clock_s,
            row.wasted_fraction * 100.0,
            row.energy_overhead * 100.0,
            row.restarts
        );
    }

    let _ = writeln!(
        out,
        "\n-- thermal control under sensor loss (limit {LIMIT_C} deg C, tick 10 s)"
    );
    let _ = writeln!(
        out,
        "{:<6} {:<10} {:>15} {:>13}",
        "rate", "consumer", "violation rate", "mean P-state"
    );
    for fault_rate in [0.0, 4.0] {
        for resilient in [false, true] {
            let row = thermal_control_run(seed, fault_rate, resilient, scale.control_horizon_s);
            let _ = writeln!(
                out,
                "{:<6.1} {:<10} {:>14.1}% {:>13.2}",
                row.fault_rate,
                row.consumer,
                row.violation_rate * 100.0,
                row.mean_pstate
            );
        }
    }

    let _ = writeln!(
        out,
        "\n-- CADA safe mode through gray-slowdown episodes (SLA 0.5 s)"
    );
    let _ = writeln!(
        out,
        "{:<6} {:<10} {:>15} {:>6} {:>13}",
        "rate", "controller", "violation rate", "trips", "mean quality"
    );
    for fault_rate in [0.0, 4.0] {
        for guarded in [false, true] {
            let row = safemode_run(seed, fault_rate, guarded, scale.control_horizon_s);
            let _ = writeln!(
                out,
                "{:<6.1} {:<10} {:>14.1}% {:>6} {:>13.2}",
                row.fault_rate,
                row.controller,
                row.violation_rate * 100.0,
                row.trips,
                row.mean_quality
            );
        }
    }
    let _ = writeln!(
        out,
        "resiliency: checkpointing bounds wasted work, the hardened sensor\n\
         path holds the thermal SLA, and safe mode caps violation streaks"
    );
    out
}

/// R1: the full fault campaign.
pub fn r1_fault_campaign() -> String {
    campaign_report(101, CampaignScale::full())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic() {
        let a = campaign_report(7, CampaignScale::tiny());
        let b = campaign_report(7, CampaignScale::tiny());
        assert_eq!(a, b, "same seed must render byte-identical reports");
        let c = campaign_report(8, CampaignScale::tiny());
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn zero_fault_rate_has_no_resiliency_cost_for_none_policy() {
        let rows = checkpoint_sweep(5, CampaignScale::tiny());
        for row in rows.iter().filter(|r| r.fault_rate == 0.0) {
            assert_eq!(row.restarts, 0);
            assert_eq!(row.wasted_fraction, 0.0);
            if row.policy == "none" || row.policy == "daly" {
                assert!(
                    row.energy_overhead.abs() < 1e-9,
                    "fault-free {} run must match the baseline exactly",
                    row.policy
                );
            }
        }
    }

    #[test]
    fn checkpointing_reduces_waste_under_faults() {
        let rows = checkpoint_sweep(5, CampaignScale::tiny());
        for governor in ["performance", "energy-optimal"] {
            for rate in [1.0, 4.0] {
                let get = |policy: &str| {
                    rows.iter()
                        .find(|r| {
                            r.governor == governor && r.fault_rate == rate && r.policy == policy
                        })
                        .expect("row present")
                };
                let none = get("none");
                let daly = get("daly");
                if none.restarts > 0 {
                    assert!(
                        daly.wasted_fraction <= none.wasted_fraction,
                        "daly must not waste more than restart-from-zero \
                         ({governor}, rate {rate})"
                    );
                    assert!(daly.wall_clock_s <= none.wall_clock_s);
                }
            }
        }
    }

    #[test]
    fn resilient_sensor_holds_thermal_sla() {
        let horizon = 1800.0;
        let naive = thermal_control_run(11, 6.0, false, horizon);
        let resilient = thermal_control_run(11, 6.0, true, horizon);
        assert!(
            resilient.violation_rate <= naive.violation_rate,
            "resilient {} vs naive {}",
            resilient.violation_rate,
            naive.violation_rate
        );
        // fault-free: both consumers behave identically
        let a = thermal_control_run(11, 0.0, false, horizon);
        let b = thermal_control_run(11, 0.0, true, horizon);
        assert_eq!(a.violation_rate, b.violation_rate);
        assert_eq!(a.mean_pstate, b.mean_pstate);
    }

    #[test]
    fn safemode_reduces_violations_under_faults() {
        let horizon = 3600.0;
        let plain = safemode_run(13, 6.0, false, horizon);
        let guarded = safemode_run(13, 6.0, true, horizon);
        assert!(plain.violation_rate > 0.0, "episodes must cause violations");
        assert!(
            guarded.violation_rate < plain.violation_rate,
            "guarded {} vs plain {}",
            guarded.violation_rate,
            plain.violation_rate
        );
        assert!(guarded.trips > 0);
        // fault-free: the guard stays out of the way
        let free = safemode_run(13, 0.0, true, horizon);
        assert_eq!(free.trips, 0);
        assert_eq!(free.violation_rate, 0.0);
    }

    #[test]
    fn campaign_smoke_tiny_grid() {
        let report = campaign_report(3, CampaignScale::tiny());
        assert!(report.contains("checkpoint/restart"));
        assert!(report.contains("thermal control"));
        assert!(report.contains("safe mode"));
    }

    #[test]
    #[ignore = "full-scale campaign; run with cargo test -- --ignored"]
    fn full_campaign_runs() {
        let report = r1_fault_campaign();
        assert!(report.contains("daly"));
    }
}
