//! Experiments A1–A4: autotuning comparisons and design-choice ablations.

use antarex_ir::interp::{ExecEnv, Interp};
use antarex_ir::value::Value;
use antarex_ir::{parse_program, NodePath};
use antarex_precision::tuner::{PrecisionTuner, TunerOptions};
use antarex_rtrm::hierarchy::{FlatPowerManager, HierarchicalPowerManager};
use antarex_rtrm::thermal_ctrl::{Ms3Admission, ThermalThrottle};
use antarex_sim::job::WorkUnit;
use antarex_sim::node::{Node, NodeSpec};
use antarex_sim::variability::ProcessVariation;
use antarex_tuner::knob::Knob;
use antarex_tuner::search::annealing::Annealing;
use antarex_tuner::search::bandit::Bandit;
use antarex_tuner::search::exhaustive::Exhaustive;
use antarex_tuner::search::genetic::Genetic;
use antarex_tuner::search::hillclimb::HillClimb;
use antarex_tuner::search::random::RandomSearch;
use antarex_tuner::search::{SearchTechnique, Tuner};
use antarex_tuner::space::DesignSpace;
use antarex_weaver::transform::unroll::unroll_by_factor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

const TUNING_KERNEL: &str = "double saxpy(double a[], double b[], int n) {
    double s = 0.0;
    for (int i = 0; i < 64; i++) { s += a[i] * 1.5 + b[i]; }
    return s;
}";

fn unrolled_cost(unroll: u64) -> f64 {
    let mut program = parse_program(TUNING_KERNEL).unwrap();
    if unroll > 1 {
        program
            .edit_function("saxpy", |f| {
                unroll_by_factor(&mut f.body, &NodePath::root(1), unroll).unwrap();
            })
            .unwrap();
    }
    let mut env = ExecEnv::new();
    Interp::new(program)
        .call(
            "saxpy",
            &[
                Value::from(vec![1.0; 64]),
                Value::from(vec![2.0; 64]),
                Value::Int(64),
            ],
            &mut env,
        )
        .unwrap();
    env.stats.cost as f64
}

/// A1: evaluations-to-near-optimum for black-box techniques on the full
/// unroll space vs the same machinery on the annotation-shrunk grey-box
/// space.
pub fn a1_greybox_vs_blackbox() -> String {
    let black = DesignSpace::new(vec![Knob::int("unroll", 1, 64, 1)]);
    // the annotation: "unroll factors worth trying are powers of two"
    let grey = black.restrict("unroll", |v| {
        v.as_int().is_some_and(|i| i > 0 && (i & (i - 1)) == 0)
    });
    // ground truth optimum via exhaustive search on the full space
    let mut truth = Tuner::new(black.clone(), Box::new(Exhaustive::new()));
    let mut rng = StdRng::seed_from_u64(1);
    let (_, optimum) = truth
        .run(200, &mut rng, |c| {
            unrolled_cost(c.get_int("unroll").unwrap() as u64)
        })
        .unwrap();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "knob: unroll factor. black-box space: {} configs; grey-box: {} configs",
        black.size(),
        grey.size()
    );
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>16}",
        "technique (space)", "best cost", "evals to <=5% opt"
    );

    let run_one = |space: &DesignSpace,
                   technique: Box<dyn SearchTechnique>,
                   label: &str,
                   out: &mut String| {
        let mut tuner = Tuner::new(space.clone(), technique);
        let mut rng = StdRng::seed_from_u64(11);
        let best = tuner
            .run(40, &mut rng, |c| {
                unrolled_cost(c.get_int("unroll").unwrap() as u64)
            })
            .unwrap();
        let hit = tuner
            .evaluations_to_reach(optimum, 0.05)
            .map(|e| e.to_string())
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(out, "{label:<24} {:>10.0} {hit:>16}", best.1);
    };

    run_one(
        &black,
        Box::new(RandomSearch::new()),
        "random (black)",
        &mut out,
    );
    run_one(
        &black,
        Box::new(HillClimb::new()),
        "hill-climb (black)",
        &mut out,
    );
    run_one(
        &black,
        Box::new(Annealing::new()),
        "annealing (black)",
        &mut out,
    );
    run_one(
        &black,
        Box::new(Genetic::new()),
        "genetic (black)",
        &mut out,
    );
    run_one(
        &black,
        Box::new(Bandit::default_ensemble()),
        "bandit (black)",
        &mut out,
    );
    run_one(
        &grey,
        Box::new(Exhaustive::new()),
        "exhaustive (grey)",
        &mut out,
    );
    run_one(
        &grey,
        Box::new(Bandit::default_ensemble()),
        "bandit (grey)",
        &mut out,
    );
    let _ = writeln!(
        out,
        "paper: grey-box autotuning 'can rely on code annotations to shrink the search space' (§IV)"
    );
    out
}

/// A2: precision autotuning across error budgets on the dot kernel.
pub fn a2_precision_budget_sweep() -> String {
    let program = parse_program(antarex_core::scenario::DOT_KERNEL).unwrap();
    let inputs: Vec<Vec<Value>> = (1..=5)
        .map(|k| {
            let a: Vec<f64> = (0..32).map(|i| 0.05 * (i + k) as f64).collect();
            let b: Vec<f64> = (0..32).map(|i| 1.0 / (1.0 + i as f64)).collect();
            vec![Value::from(a), Value::from(b), Value::Int(32)]
        })
        .collect();
    let tuner = PrecisionTuner::new(program, "dot", inputs);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12} {:>14} {:>14} {:>10}",
        "budget", "energy ratio", "max rel err", "evals"
    );
    for budget in [1e-12, 1e-8, 1e-5, 1e-3, 1e-1] {
        let outcome = tuner
            .tune(&TunerOptions {
                error_budget: budget,
                max_sweeps: 8,
            })
            .unwrap();
        let _ = writeln!(
            out,
            "{budget:>12.0e} {:>14.3} {:>14.2e} {:>10}",
            outcome.energy_ratio, outcome.max_rel_error, outcome.evaluations
        );
    }
    let _ = writeln!(
        out,
        "paper: 'customized precision ... power/performance trade-offs when an\napplication can tolerate some loss of quality' (§IV)"
    );
    out
}

/// A3: hierarchical vs flat power management on a variability-affected,
/// demand-skewed cluster phase.
pub fn a3_hierarchical_vs_flat() -> String {
    let mut rng = StdRng::seed_from_u64(10);
    let make_pool = |rng: &mut StdRng| -> Vec<Node> {
        (0..4)
            .map(|i| {
                Node::with_variation(NodeSpec::cineca_xeon(), i, ProcessVariation::sample(rng))
            })
            .collect()
    };
    let work: Vec<Vec<WorkUnit>> = (0..4)
        .map(|i| vec![WorkUnit::compute_bound(1e12); if i == 0 { 8 } else { 2 }])
        .collect();
    let budget = 700.0;

    let mut pool = make_pool(&mut rng);
    let mut rng2 = StdRng::seed_from_u64(10);
    let hier = HierarchicalPowerManager::new(budget).run_phase(&mut pool, &work);
    let mut pool = make_pool(&mut rng2);
    let flat = FlatPowerManager::new(budget).run_phase(&mut pool, &work);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "cluster budget {budget} W, skewed demand (node 0 has 4x work):"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>12} {:>14}",
        "manager", "energy [kJ]", "makespan", "peak [W]", "overshoot[Ws]"
    );
    for (label, outcome) in [("flat", &flat), ("hierarchical", &hier)] {
        let _ = writeln!(
            out,
            "{label:<14} {:>12.1} {:>10.1} s {:>12.0} {:>14.1}",
            outcome.energy_j / 1e3,
            outcome.makespan_s,
            outcome.peak_power_w,
            outcome.overshoot_ws
        );
    }
    let _ = writeln!(
        out,
        "paper: 'scalable and hierarchical optimal control-loops ... at different time scale' (§V)"
    );
    out
}

/// A4: thermal-aware operation in a hot rack vs an oblivious baseline,
/// plus the MS3 admission profile.
pub fn a4_thermal_aware() -> String {
    let throttle = ThermalThrottle {
        limit_c: 75.0,
        release_c: 65.0,
    };
    let work = vec![WorkUnit::compute_bound(2e13); 10];

    let mut managed = Node::nominal(NodeSpec::cineca_xeon(), 0);
    managed.set_inlet_temp(36.0);
    let (t_managed, e_managed, v_managed) = throttle.run(&mut managed, &work);

    let mut oblivious = Node::nominal(NodeSpec::cineca_xeon(), 1);
    oblivious.set_inlet_temp(36.0);
    let mut t_free = 0.0;
    let mut e_free = 0.0;
    let mut v_free = 0;
    for w in &work {
        let outcome = oblivious.execute(w);
        t_free += outcome.time_s;
        e_free += outcome.energy_j;
        if outcome.final_temp_c > throttle.limit_c {
            v_free += 1;
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "hot rack (36 C inlet), junction limit 75 C, 10 heavy units:"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "policy", "time [s]", "energy [kJ]", "violations", "final T"
    );
    let _ = writeln!(
        out,
        "{:<14} {t_free:>10.1} {:>12.1} {v_free:>12} {:>10.1} C",
        "oblivious",
        e_free / 1e3,
        oblivious.temp_c()
    );
    let _ = writeln!(
        out,
        "{:<14} {t_managed:>10.1} {:>12.1} {v_managed:>12} {:>10.1} C",
        "thermal-aware",
        e_managed / 1e3,
        managed.temp_c()
    );

    let ms3 = Ms3Admission::mediterranean();
    let _ = writeln!(out, "\nMS3 'do less when it's too hot' admission profile:");
    for ambient in [10.0, 18.0, 24.0, 30.0, 36.0] {
        let _ = writeln!(
            out,
            "  ambient {ambient:>4.0} C -> admit {:>4.0}% of offered load",
            100.0 * ms3.admitted_fraction(ambient)
        );
    }
    out
}

/// A5: energy-aware frequency assignment for co-scheduled jobs under a
/// facility cap (the SuperMUC-style scheduling the paper cites, §V, ref. 22).
pub fn a5_energy_aware_scheduling() -> String {
    use antarex_rtrm::energy_sched::{EnergyAwareAssigner, JobRequest};
    let jobs = vec![
        JobRequest {
            id: 0,
            nodes: 8,
            profile: WorkUnit::memory_bound(2e11),
        },
        JobRequest {
            id: 1,
            nodes: 8,
            profile: WorkUnit::with_intensity(3e11, 2.0),
        },
        JobRequest {
            id: 2,
            nodes: 8,
            profile: WorkUnit::compute_bound(5e11),
        },
    ];
    let spec = NodeSpec::cineca_xeon();
    let unconstrained = EnergyAwareAssigner::new(spec.clone(), 1e9).assign(&jobs);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "3 co-scheduled jobs x 8 nodes; energy-optimal baseline power {:.0} W",
        unconstrained.total_power_w
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>10} {:>36}",
        "cap", "power [W]", "feasible", "per-job P-states (mem/mix/cpu)"
    );
    for fraction in [1.0, 0.9, 0.8, 0.7, 0.5] {
        let cap = unconstrained.total_power_w * fraction;
        let plan = EnergyAwareAssigner::new(spec.clone(), cap).assign(&jobs);
        let states: Vec<String> = plan
            .assignments
            .iter()
            .map(|a| format!("P{}", a.pstate))
            .collect();
        let _ = writeln!(
            out,
            "{:>9.0}% {:>12.0} {:>10} {:>36}",
            fraction * 100.0,
            plan.total_power_w,
            if plan.feasible { "yes" } else { "no" },
            states.join(" / ")
        );
    }
    let _ = writeln!(
        out,
        "memory-bound jobs absorb the cuts first (free slowdown); compute-bound\njobs keep their frequency until the cap forces everyone down."
    );
    out
}

/// A6: batch scheduling policies replayed on the node models — the
/// cluster-level "job dispatching" knob of §V, with energy accounting.
pub fn a6_scheduler_replay() -> String {
    use antarex_rtrm::replay::replay;
    use antarex_rtrm::scheduler::{BatchScheduler, SchedulerPolicy};
    use antarex_sim::job::Job;
    use antarex_sim::workload::poisson_jobs;

    // a contended morning: jobs arrive faster than they finish, with a
    // width mix that leaves holes only backfilling can use
    let mut rng = StdRng::seed_from_u64(14);
    let mut jobs = poisson_jobs(0.08, 600.0, 1, WorkUnit::compute_bound(6e12), &mut rng);
    for (i, job) in jobs.iter_mut().enumerate() {
        job.nodes = match i % 5 {
            0 => 4,
            1 | 2 => 2,
            _ => 1,
        };
        if i % 3 == 0 {
            job.work_per_node = WorkUnit::compute_bound(1.2e13);
        }
    }
    let jobs: Vec<Job> = jobs;
    // wall-time estimates close to the true runtime (288 GFLOP/s at the
    // max P-state) so the planned schedule survives replay
    let estimate = |job: &Job| job.work_per_node.flops / 288e9 * 1.05 + 1.0;

    let pool = |seed: u64| -> Vec<Node> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..4)
            .map(|i| {
                Node::with_variation(
                    NodeSpec::cineca_xeon(),
                    i,
                    ProcessVariation::sample(&mut rng),
                )
            })
            .collect()
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} jobs on 4 nodes, replayed on the node models:",
        jobs.len()
    );
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>13} {:>12}",
        "policy", "makespan", "utilization", "energy [MJ]"
    );
    for (label, policy) in [
        ("FIFO", SchedulerPolicy::Fifo),
        ("EASY backfill", SchedulerPolicy::EasyBackfill),
    ] {
        let schedule = BatchScheduler::new(4, policy).schedule(&jobs, estimate);
        let mut nodes = pool(7);
        let outcome = replay(&schedule, &jobs, &mut nodes);
        let _ = writeln!(
            out,
            "{label:<16} {:>10.0} s {:>12.1}% {:>12.2}",
            outcome.makespan_s,
            100.0 * outcome.utilization,
            outcome.energy_j / 1e6
        );
    }
    let _ = writeln!(
        out,
        "backfilling fills scheduling holes: higher utilization, shorter\nmakespan, and less idle-power waste for the same work."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a6_backfill_not_worse_than_fifo() {
        let report = a6_scheduler_replay();
        let rows: Vec<(f64, f64)> = report
            .lines()
            .filter(|l| l.starts_with("FIFO") || l.starts_with("EASY"))
            .map(|l| {
                let cols: Vec<&str> = l.split_whitespace().collect();
                // policy may be two words; take from the end: energy, util%, "s", makespan
                let util: f64 = cols[cols.len() - 2].trim_end_matches('%').parse().unwrap();
                let makespan: f64 = cols[cols.len() - 4].parse().unwrap();
                (makespan, util)
            })
            .collect();
        assert_eq!(rows.len(), 2, "{report}");
        let (fifo, easy) = (rows[0], rows[1]);
        // EASY guarantees it never delays the head reservation, not a
        // strictly shorter makespan: a backfilled job can land on a node
        // whose process corner is slightly slower, shifting the replayed
        // makespan by a job or two. Allow 1% slack on the replay.
        assert!(
            easy.0 <= fifo.0 * 1.01,
            "easy makespan {} vs fifo {}: {report}",
            easy.0,
            fifo.0
        );
        assert!(easy.1 >= fifo.1 - 0.5, "{report}");
    }

    #[test]
    fn a5_caps_are_respected_and_ranked() {
        let report = a5_energy_aware_scheduling();
        assert!(report.contains("yes"), "{report}");
        let has_three_states = report.lines().any(|l| l.matches(" / ").count() == 2);
        assert!(has_three_states, "{report}");
    }

    #[test]
    fn a1_grey_box_converges() {
        let report = a1_greybox_vs_blackbox();
        assert!(report.contains("exhaustive (grey)"), "{report}");
        // the grey-box exhaustive row must have found a near-optimal cost
        assert!(!report.contains("exhaustive (grey)          -"), "{report}");
    }

    #[test]
    fn a2_energy_ratio_monotone_in_budget() {
        let report = a2_precision_budget_sweep();
        let ratios: Vec<f64> = report
            .lines()
            .skip(1)
            .filter_map(|l| {
                let cols: Vec<&str> = l.split_whitespace().collect();
                if cols.len() >= 4 {
                    cols[1].parse().ok()
                } else {
                    None
                }
            })
            .collect();
        assert!(ratios.len() >= 5, "{report}");
        for pair in ratios.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-9,
                "looser budget must save at least as much: {report}"
            );
        }
    }

    #[test]
    fn a3_hierarchical_overshoot_not_worse() {
        let report = a3_hierarchical_vs_flat();
        assert!(report.contains("hierarchical"), "{report}");
    }

    #[test]
    fn a4_thermal_policy_reduces_violations() {
        let report = a4_thermal_aware();
        let violations: Vec<u64> = report
            .lines()
            .filter(|l| l.starts_with("oblivious") || l.starts_with("thermal-aware"))
            .filter_map(|l| l.split_whitespace().nth(3).and_then(|v| v.parse().ok()))
            .collect();
        assert_eq!(violations.len(), 2, "{report}");
        assert!(violations[1] < violations[0], "{report}");
    }
}
