//! Canonical mini-C kernels used across examples, tests and benchmarks.

/// Sum of squares over a fixed-size buffer — the minimal unrollable
/// kernel (`sumsq16` has a constant 16-iteration loop).
pub const SUMSQ_KERNEL: &str = "double sumsq16(double a[]) {
    double s = 0.0;
    for (int i = 0; i < 16; i++) { s += a[i] * a[i]; }
    return s;
}";

/// The paper-style `kernel(a, size)` with a dynamic bound plus a driver —
/// the Fig. 4 specialization target.
pub const DYNAMIC_KERNEL: &str = "double kernel(double a[], int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) { s += a[i] * a[i]; }
    return s;
}
double run(double buf[], int n) {
    return kernel(buf, n);
}";

/// A small dense matrix-vector product (fixed 8×8) — a richer
/// instrumentation/unrolling target with a nested loop.
pub const MATVEC_KERNEL: &str = "void matvec8(double m[], double x[], double y[]) {
    for (int i = 0; i < 8; i++) {
        double acc = 0.0;
        for (int j = 0; j < 8; j++) { acc += m[i * 8 + j] * x[j]; }
        y[i] = acc;
    }
}";

/// A 1-D three-point stencil over a fixed buffer — the precision-tuning
/// target (accumulations tolerate reduced mantissa width).
pub const STENCIL_KERNEL: &str = "void stencil32(double input[], double output[]) {
    for (int i = 1; i < 31; i++) {
        output[i] = 0.25 * input[i - 1] + 0.5 * input[i] + 0.25 * input[i + 1];
    }
}";

/// A dot product with a runtime length — used by the precision and
/// tuning experiments.
pub const DOT_KERNEL: &str = "double dot(double a[], double b[], int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
    return s;
}";

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::interp::{ExecEnv, Interp};
    use antarex_ir::parse_program;
    use antarex_ir::value::Value;

    #[test]
    fn all_kernels_parse() {
        for (name, src) in [
            ("sumsq", SUMSQ_KERNEL),
            ("dynamic", DYNAMIC_KERNEL),
            ("matvec", MATVEC_KERNEL),
            ("stencil", STENCIL_KERNEL),
            ("dot", DOT_KERNEL),
        ] {
            assert!(parse_program(src).is_ok(), "kernel {name} failed to parse");
        }
    }

    #[test]
    fn matvec_computes_identity() {
        let program = parse_program(MATVEC_KERNEL).unwrap();
        let mut interp = Interp::new(program);
        // identity matrix
        let mut m = vec![0.0f64; 64];
        for i in 0..8 {
            m[i * 8 + i] = 1.0;
        }
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let program2 = parse_program(&format!(
            "{MATVEC_KERNEL}
             double check(double m[], double x[]) {{
                 double y[8];
                 matvec8(m, x, y);
                 return y[5];
             }}"
        ))
        .unwrap();
        *interp.program_mut() = program2;
        let out = interp
            .call(
                "check",
                &[Value::from(m), Value::from(x)],
                &mut ExecEnv::new(),
            )
            .unwrap();
        assert_eq!(out, Value::Float(5.0));
    }

    #[test]
    fn stencil_smooths() {
        let src = format!(
            "{STENCIL_KERNEL}
             double check() {{
                 double input[32];
                 double output[32];
                 input[16] = 4.0;
                 stencil32(input, output);
                 return output[15] + output[16] + output[17];
             }}"
        );
        let program = parse_program(&src).unwrap();
        let mut interp = Interp::new(program);
        let out = interp.call("check", &[], &mut ExecEnv::new()).unwrap();
        // the impulse spreads but conserves mass: 1 + 2 + 1 quarters of 4
        assert_eq!(out, Value::Float(4.0));
    }
}
