//! Projection toward the Exascale envelope.
//!
//! Paper §I: "the target power envelope for future Exascale system ranges
//! between 20 and 30 MW", and heterogeneous efficiency (~7 GFLOPS/W in
//! 2015) "is still two orders of magnitude lower than that needed for
//! supporting Exascale systems at the target power envelope of 20 MW".
//! §I also promises that "performance metrics extracted from the two use
//! cases will be modelled to extrapolate these results towards Exascale
//! systems". This module does that extrapolation: efficiency-driven power
//! projection plus Amdahl/Gustafson scaling of the use-case workloads.

/// One exaFLOPS, in FLOP/s.
pub const EXAFLOPS: f64 = 1e18;

/// The paper's target envelope, watts.
pub const ENVELOPE_LOW_W: f64 = 20e6;
/// Upper end of the envelope, watts.
pub const ENVELOPE_HIGH_W: f64 = 30e6;

/// An efficiency-driven projection from measured node metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExascaleProjection {
    /// Measured sustained node throughput, GFLOP/s.
    pub node_gflops: f64,
    /// Measured node power, watts.
    pub node_power_w: f64,
    /// Facility PUE applied on top of IT power.
    pub pue: f64,
}

impl ExascaleProjection {
    /// Creates a projection from measured node metrics.
    ///
    /// # Panics
    ///
    /// Panics unless throughput, power and PUE are positive (PUE ≥ 1).
    pub fn new(node_gflops: f64, node_power_w: f64, pue: f64) -> Self {
        assert!(
            node_gflops > 0.0 && node_power_w > 0.0,
            "metrics must be positive"
        );
        assert!(pue >= 1.0, "PUE cannot be below 1");
        ExascaleProjection {
            node_gflops,
            node_power_w,
            pue,
        }
    }

    /// Measured node efficiency, MFLOPS/W (IT only).
    pub fn mflops_per_watt(&self) -> f64 {
        self.node_gflops * 1000.0 / self.node_power_w
    }

    /// Nodes needed to reach `target_flops` sustained.
    pub fn nodes_needed(&self, target_flops: f64) -> f64 {
        target_flops / (self.node_gflops * 1e9)
    }

    /// Projected facility power at `target_flops`, watts.
    pub fn projected_power_w(&self, target_flops: f64) -> f64 {
        self.nodes_needed(target_flops) * self.node_power_w * self.pue
    }

    /// Whether one exaFLOPS fits the paper's 20 MW target at this
    /// efficiency.
    pub fn fits_envelope(&self) -> bool {
        self.projected_power_w(EXAFLOPS) <= ENVELOPE_LOW_W
    }

    /// The efficiency improvement factor still required to reach the
    /// 20 MW exascale envelope (1.0 = already there).
    pub fn efficiency_gap(&self) -> f64 {
        (self.projected_power_w(EXAFLOPS) / ENVELOPE_LOW_W).max(1.0)
    }
}

/// Amdahl speedup of a workload with serial fraction `serial` on `n`
/// processors (strong scaling).
///
/// # Panics
///
/// Panics unless `serial` is in `[0, 1]` and `n ≥ 1`.
pub fn amdahl_speedup(serial: f64, n: f64) -> f64 {
    assert!((0.0..=1.0).contains(&serial), "serial fraction in [0, 1]");
    assert!(n >= 1.0, "need at least one processor");
    1.0 / (serial + (1.0 - serial) / n)
}

/// Gustafson scaled speedup (weak scaling): the problem grows with the
/// machine, as the paper's use cases do (bigger chemical libraries, more
/// navigation users).
///
/// # Panics
///
/// Panics unless `serial` is in `[0, 1]` and `n ≥ 1`.
pub fn gustafson_speedup(serial: f64, n: f64) -> f64 {
    assert!((0.0..=1.0).contains(&serial), "serial fraction in [0, 1]");
    assert!(n >= 1.0, "need at least one processor");
    serial + (1.0 - serial) * n
}

/// Parallel efficiency (speedup / n) under strong scaling.
pub fn strong_scaling_efficiency(serial: f64, n: f64) -> f64 {
    amdahl_speedup(serial, n) / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn petascale_2015_node_misses_envelope_by_orders_of_magnitude() {
        // a CPU-only 2015 node: ~0.3 TFLOPS at ~300 W, PUE 1.25
        let projection = ExascaleProjection::new(300.0, 300.0, 1.25);
        assert!(!projection.fits_envelope());
        let gap = projection.efficiency_gap();
        assert!(
            (20.0..200.0).contains(&gap),
            "gap {gap} should be around two orders of magnitude"
        );
    }

    #[test]
    fn efficient_enough_node_fits() {
        // ~90 GFLOPS/W node (the actual exascale-era figure): 10 TF at 110 W
        let projection = ExascaleProjection::new(10_000.0, 110.0, 1.1);
        assert!(projection.fits_envelope());
        assert_eq!(projection.efficiency_gap(), 1.0);
    }

    #[test]
    fn projection_arithmetic() {
        let projection = ExascaleProjection::new(1000.0, 500.0, 1.2);
        assert_eq!(projection.nodes_needed(1e15), 1000.0);
        assert!((projection.projected_power_w(1e15) - 1000.0 * 500.0 * 1.2).abs() < 1e-6);
        assert!((projection.mflops_per_watt() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn amdahl_saturates_gustafson_does_not() {
        let serial = 0.01;
        let strong_1k = amdahl_speedup(serial, 1000.0);
        let strong_1m = amdahl_speedup(serial, 1_000_000.0);
        assert!(strong_1k < 100.0 / serial);
        assert!(
            strong_1m < 1.0 / serial * 1.01,
            "Amdahl ceiling at 1/serial"
        );
        let weak_1m = gustafson_speedup(serial, 1_000_000.0);
        assert!(weak_1m > 0.9e6, "weak scaling keeps growing");
    }

    #[test]
    fn efficiency_degrades_with_scale() {
        let e_small = strong_scaling_efficiency(0.001, 100.0);
        let e_large = strong_scaling_efficiency(0.001, 100_000.0);
        assert!(e_small > 0.9);
        assert!(e_large < e_small);
    }

    #[test]
    fn trivial_bounds() {
        assert_eq!(amdahl_speedup(1.0, 1e6), 1.0);
        assert!((amdahl_speedup(0.0, 64.0) - 64.0).abs() < 1e-9);
        assert_eq!(gustafson_speedup(1.0, 1e6), 1.0);
    }

    #[test]
    #[should_panic(expected = "PUE")]
    fn sub_unity_pue_rejected() {
        let _ = ExascaleProjection::new(1.0, 1.0, 0.9);
    }
}
