//! # antarex-core — the ANTAREX tool flow
//!
//! Ties the workspace together into the flow of the paper's Fig. 1
//! (Silvano et al., DATE 2016): C/C++ functional descriptions plus
//! ANTAREX DSL specifications go through the source-to-source compiler and
//! weaver; split compilation defers specialization to runtime; the
//! application autotuner and the runtime resource manager close their
//! control loops around the running application.
//!
//! * [`flow`] — [`flow::ToolFlow`]: parse → weave → deploy; the
//!   deployed [`flow::Runtime`] executes the woven program with
//!   dynamic weaving installed;
//! * [`split`] — split-compilation statistics: offline preparation vs
//!   online binding, version-cache behaviour;
//! * [`scenario`] — the canonical mini-C kernels used by examples, tests
//!   and benchmarks;
//! * [`exascale`] — the projection toward the 20–30 MW Exascale envelope
//!   the paper opens with (§I): efficiency-driven power extrapolation and
//!   Amdahl/Gustafson scaling.
//!
//! # Examples
//!
//! ```
//! use antarex_core::flow::ToolFlow;
//! use antarex_core::scenario;
//! use antarex_dsl::figures::FIG3_UNROLL_INNERMOST_LOOPS;
//! use antarex_dsl::DslValue;
//!
//! # fn main() -> Result<(), antarex_core::FlowError> {
//! let mut flow = ToolFlow::new(scenario::SUMSQ_KERNEL, FIG3_UNROLL_INNERMOST_LOOPS)?;
//! flow.weave(
//!     "UnrollInnermostLoops",
//!     &[DslValue::FuncRef("sumsq16".into()), DslValue::Int(32)],
//! )?;
//! let mut runtime = flow.deploy();
//! let (value, stats) = runtime.call(
//!     "sumsq16",
//!     &[antarex_ir::value::Value::from(vec![1.0; 16])],
//! )?;
//! assert_eq!(value, antarex_ir::value::Value::Float(16.0));
//! assert_eq!(stats.loop_iters, 0, "the loop was unrolled away");
//! # Ok(())
//! # }
//! ```

pub mod bridge;
pub mod exascale;
pub mod flow;
pub mod scenario;
pub mod split;

pub use flow::{FlowError, Runtime, ToolFlow};
