//! The design-time → runtime tool flow (paper Fig. 1).

use antarex_dsl::interp::Weaver;
use antarex_dsl::{parse_aspects, DslError, DslValue};
use antarex_ir::cost::ExecStats;
use antarex_ir::interp::{ExecEnv, HostFn, Interp};
use antarex_ir::value::Value;
use antarex_ir::{parse_program, Executor, IrError, Program};
use antarex_vm::Vm;
use antarex_weaver::VersionStore;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Error of the combined tool flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The functional (mini-C) source failed.
    Ir(IrError),
    /// The extra-functional (DSL) source or weaving failed.
    Dsl(DslError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Ir(e) => write!(f, "{e}"),
            FlowError::Dsl(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Ir(e) => Some(e),
            FlowError::Dsl(e) => Some(e),
        }
    }
}

impl From<IrError> for FlowError {
    fn from(e: IrError) -> Self {
        FlowError::Ir(e)
    }
}

impl From<DslError> for FlowError {
    fn from(e: DslError) -> Self {
        FlowError::Dsl(e)
    }
}

/// The design-time half: functional code plus aspect library, with
/// weaving applied in place.
///
/// See the [crate-level example](crate).
pub struct ToolFlow {
    program: Program,
    weaver: Weaver,
}

impl fmt::Debug for ToolFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ToolFlow")
            .field("functions", &self.program.function_names())
            .field("weaver", &self.weaver)
            .finish()
    }
}

impl ToolFlow {
    /// Parses the functional C-like source and the DSL aspect source.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] on parse errors in either language.
    pub fn new(c_source: &str, dsl_source: &str) -> Result<Self, FlowError> {
        let program = parse_program(c_source)?;
        let library = parse_aspects(dsl_source)?;
        Ok(ToolFlow {
            program,
            weaver: Weaver::new(library),
        })
    }

    /// Builds a flow from already-parsed pieces.
    pub fn from_parts(program: Program, weaver: Weaver) -> Self {
        ToolFlow { program, weaver }
    }

    /// The (current, possibly woven) program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Mutable access to the program (manual design-time edits).
    pub fn program_mut(&mut self) -> &mut Program {
        &mut self.program
    }

    /// The weaver (aspect library, captured dynamic plans).
    pub fn weaver(&self) -> &Weaver {
        &self.weaver
    }

    /// Applies an aspect with the given inputs (static parts weave now;
    /// `apply dynamic` parts are captured for runtime).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Dsl`] on weaving failures.
    pub fn weave(&mut self, aspect: &str, inputs: &[DslValue]) -> Result<DslValue, FlowError> {
        Ok(self.weaver.weave(&mut self.program, aspect, inputs)?)
    }

    /// Emits the woven program as C-like source (the source-to-source
    /// output of the flow).
    pub fn emit_source(&self) -> String {
        antarex_ir::printer::print_program(&self.program)
    }

    /// Finishes design time: deploys the woven program with the dynamic
    /// weaver installed as the call dispatcher, executing on the metered
    /// bytecode VM (the fast engine; bit-identical to the interpreter).
    pub fn deploy(self) -> Runtime {
        self.deploy_on(Box::new(Vm::new(Program::new())))
    }

    /// As [`ToolFlow::deploy`], but on the tree-walking interpreter (the
    /// executable reference engine) — useful for engine-equivalence
    /// checks and debugging.
    pub fn deploy_interpreted(self) -> Runtime {
        self.deploy_on(Box::new(Interp::new(Program::new())))
    }

    fn deploy_on(self, mut engine: Box<dyn Executor>) -> Runtime {
        let store = self.weaver.store();
        let dynamic = self.weaver.into_dynamic();
        *engine.program_mut() = self.program;
        engine.set_dispatcher(Box::new(dynamic));
        Runtime {
            engine,
            store,
            env: ExecEnv::new(),
        }
    }
}

/// The runtime half: the deployed application under dynamic weaving.
pub struct Runtime {
    engine: Box<dyn Executor>,
    store: Rc<RefCell<VersionStore>>,
    env: ExecEnv,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("engine", &self.engine.engine_name())
            .field("functions", &self.engine.program().function_names())
            .field("total_stats", &self.env.stats)
            .finish()
    }
}

impl Runtime {
    /// Calls a function, returning its value and the statistics of *this
    /// call* (cumulative stats are also kept; see [`Runtime::total_stats`]).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Ir`] on runtime errors.
    pub fn call(
        &mut self,
        function: &str,
        args: &[Value],
    ) -> Result<(Value, ExecStats), FlowError> {
        let mut env = ExecEnv::new();
        let value = self.engine.call(function, args, &mut env)?;
        self.env.stats.merge(&env.stats);
        Ok((value, env.stats))
    }

    /// Registers a host (instrumentation) function.
    pub fn register_host(&mut self, name: impl Into<String>, f: HostFn) {
        self.engine.register_host(name.into(), f);
    }

    /// The execution engine backing this runtime (`"vm"` / `"interp"`).
    pub fn engine_name(&self) -> &'static str {
        self.engine.engine_name()
    }

    /// Cumulative statistics across all calls.
    pub fn total_stats(&self) -> ExecStats {
        self.env.stats
    }

    /// The running program (it grows as dynamic weaving adds versions).
    pub fn program(&self) -> &Program {
        self.engine.program()
    }

    /// Specialized versions registered for a function so far.
    pub fn version_count(&self, function: &str) -> usize {
        self.store.borrow().version_count(function)
    }

    /// Dispatch cache (hits, misses) for a function.
    pub fn dispatch_stats(&self, function: &str) -> (u64, u64) {
        self.store.borrow().stats(function)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DYNAMIC_KERNEL, SUMSQ_KERNEL};
    use antarex_dsl::figures::{
        FIG2_PROFILE_ARGUMENTS, FIG3_UNROLL_INNERMOST_LOOPS, FIG4_SPECIALIZE_KERNEL,
    };
    use std::cell::RefCell;

    #[test]
    fn fig1_flow_end_to_end() {
        // Fig. 1: DSL + C source -> weave -> deploy -> adaptive runtime.
        let aspects = format!("{FIG4_SPECIALIZE_KERNEL}\n{FIG3_UNROLL_INNERMOST_LOOPS}");
        let mut flow = ToolFlow::new(DYNAMIC_KERNEL, &aspects).unwrap();
        flow.weave("SpecializeKernel", &[DslValue::Int(4), DslValue::Int(64)])
            .unwrap();
        let mut runtime = flow.deploy();
        let buf = Value::from(vec![0.5; 32]);
        // first call specializes, second hits the version cache
        let (v1, _) = runtime.call("run", &[buf.clone(), Value::Int(32)]).unwrap();
        let (v2, stats2) = runtime.call("run", &[buf, Value::Int(32)]).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(runtime.version_count("kernel"), 1);
        let (hits, _) = runtime.dispatch_stats("kernel");
        assert!(hits >= 1);
        assert_eq!(stats2.loop_iters, 0, "specialized version is unrolled");
    }

    #[test]
    fn weave_then_emit_source() {
        // note: Fig. 2's template splices the argument list, so the call
        // must have at least one argument to produce parseable code
        let mut flow =
            ToolFlow::new("void app(int n) { kernel(n); }", FIG2_PROFILE_ARGUMENTS).unwrap();
        flow.weave("ProfileArguments", &[DslValue::from("kernel")])
            .unwrap();
        let source = flow.emit_source();
        assert!(source.contains("profile_args("));
    }

    #[test]
    fn runtime_hosts_and_cumulative_stats() {
        let mut flow = ToolFlow::new(SUMSQ_KERNEL, FIG2_PROFILE_ARGUMENTS).unwrap();
        flow.weave("ProfileArguments", &[DslValue::from("none")])
            .unwrap();
        let mut runtime = flow.deploy();
        let calls = Rc::new(RefCell::new(0));
        let sink = Rc::clone(&calls);
        runtime.register_host(
            "probe",
            Box::new(move |_| {
                *sink.borrow_mut() += 1;
                Ok(Value::Unit)
            }),
        );
        let buf = Value::from(vec![1.0; 16]);
        runtime.call("sumsq16", std::slice::from_ref(&buf)).unwrap();
        runtime.call("sumsq16", &[buf]).unwrap();
        assert!(runtime.total_stats().flops >= 64);
        assert_eq!(*calls.borrow(), 0, "aspect matched nothing: no probes");
    }

    #[test]
    fn deploy_engines_are_equivalent() {
        // the default (VM) and reference (interp) deployments must agree
        // on values and statistics for the same woven program
        let aspects = format!("{FIG4_SPECIALIZE_KERNEL}\n{FIG3_UNROLL_INNERMOST_LOOPS}");
        let run = |deploy_interp: bool| {
            let mut flow = ToolFlow::new(DYNAMIC_KERNEL, &aspects).unwrap();
            flow.weave("SpecializeKernel", &[DslValue::Int(4), DslValue::Int(64)])
                .unwrap();
            let mut runtime = if deploy_interp {
                flow.deploy_interpreted()
            } else {
                flow.deploy()
            };
            let buf = Value::from(vec![0.5; 32]);
            let (v1, s1) = runtime.call("run", &[buf.clone(), Value::Int(32)]).unwrap();
            let (v2, s2) = runtime.call("run", &[buf, Value::Int(32)]).unwrap();
            (v1, s1, v2, s2)
        };
        let (iv1, is1, iv2, is2) = run(true);
        let (vv1, vs1, vv2, vs2) = run(false);
        assert_eq!(iv1, vv1);
        assert_eq!(iv2, vv2);
        assert_eq!(is1, vs1, "first-call stats must be identical");
        assert_eq!(is2, vs2, "cached-version stats must be identical");
    }

    #[test]
    fn deploy_defaults_to_the_vm() {
        let flow = ToolFlow::new("int f() { return 1; }", "aspectdef A\nend").unwrap();
        let runtime = flow.deploy();
        assert_eq!(runtime.engine_name(), "vm");
    }

    #[test]
    fn bad_sources_error() {
        assert!(matches!(
            ToolFlow::new("int f( {", "aspectdef A end"),
            Err(FlowError::Ir(_))
        ));
        assert!(matches!(
            ToolFlow::new("int f() { return 1; }", "aspectdef"),
            Err(FlowError::Dsl(_))
        ));
    }

    #[test]
    fn flow_error_display_and_source() {
        use std::error::Error as _;
        let err = FlowError::from(IrError::Unresolved("f".into()));
        assert!(err.to_string().contains("unresolved"));
        assert!(err.source().is_some());
    }
}
