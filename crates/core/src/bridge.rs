//! Bridging woven kernels onto the simulated platform.
//!
//! The tool flow's two halves meet here: the metered execution engine
//! measures a kernel's *demand* (flops, memory traffic), and the platform
//! simulator turns demand into *time and energy* on a concrete node at a
//! concrete P-state. This is how a DSL-level decision (unroll, specialize,
//! reduce precision) becomes a joule number the RTRM can reason about.

use crate::flow::FlowError;
use antarex_ir::cost::ExecStats;
use antarex_ir::interp::ExecEnv;
use antarex_ir::value::Value;
use antarex_ir::Program;
use antarex_sim::job::WorkUnit;
use antarex_sim::node::{ExecOutcome, Node};
use antarex_vm::Vm;

/// Demand profile of one kernel invocation, as measured by the metered
/// execution engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Interpreter statistics of the profiling run.
    pub stats: ExecStats,
    /// The equivalent platform work unit.
    pub work: WorkUnit,
}

/// Profiles `function` of `program` on the given arguments, deriving the
/// platform work unit: FLOPs map one-to-one; each array access moves one
/// 8-byte double. Runs on the bytecode VM (bit-identical statistics to
/// the reference interpreter, an order of magnitude faster to collect).
///
/// # Errors
///
/// Returns [`FlowError::Ir`] if execution fails.
pub fn profile_kernel(
    program: &Program,
    function: &str,
    args: &[Value],
) -> Result<KernelProfile, FlowError> {
    let mut vm = Vm::new(program.clone());
    let mut env = ExecEnv::new();
    vm.call(function, args, &mut env)?;
    let stats = env.stats;
    let work = WorkUnit::new(stats.flops as f64, stats.mem_ops as f64 * 8.0);
    Ok(KernelProfile { stats, work })
}

/// Executes a profiled kernel `invocations` times on `node` at its current
/// P-state, returning the platform outcome of the whole batch.
pub fn simulate_on_node(profile: &KernelProfile, node: &mut Node, invocations: u64) -> ExecOutcome {
    let batch = WorkUnit::new(
        profile.work.flops * invocations as f64,
        profile.work.bytes * invocations as f64,
    );
    node.execute(&batch)
}

/// Energy (joules) of running the kernel batch on a nominal node of the
/// given spec at the energy-optimal P-state for its intensity — the
/// one-call summary used by knob-evaluation loops.
pub fn platform_energy_j(
    profile: &KernelProfile,
    spec: &antarex_sim::node::NodeSpec,
    invocations: u64,
) -> f64 {
    let node = Node::nominal(spec.clone(), 0);
    let best = antarex_rtrm::governor::optimal_pstate(&node, &profile.work);
    let mut node = Node::nominal(spec.clone(), 0);
    node.set_pstate(best);
    simulate_on_node(profile, &mut node, invocations).energy_j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DOT_KERNEL;
    use antarex_ir::parse_program;
    use antarex_ir::NodePath;
    use antarex_sim::node::NodeSpec;
    use antarex_weaver::transform::unroll::unroll_full;

    fn dot_args(n: usize) -> Vec<Value> {
        vec![
            Value::from(vec![1.0; n]),
            Value::from(vec![2.0; n]),
            Value::Int(n as i64),
        ]
    }

    #[test]
    fn profile_derives_sane_demand() {
        let program = parse_program(DOT_KERNEL).unwrap();
        let profile = profile_kernel(&program, "dot", &dot_args(64)).unwrap();
        assert_eq!(profile.stats.flops, 128, "64 mul + 64 add");
        assert_eq!(profile.work.flops, 128.0);
        assert_eq!(profile.work.bytes, 128.0 * 8.0, "two loads per iteration");
    }

    #[test]
    fn profile_matches_the_reference_interpreter() {
        // the profile feeding the simulator must not depend on the engine
        let program = parse_program(DOT_KERNEL).unwrap();
        let vm_profile = profile_kernel(&program, "dot", &dot_args(64)).unwrap();
        let mut interp = antarex_ir::interp::Interp::new(program);
        let mut env = ExecEnv::new();
        interp.call("dot", &dot_args(64), &mut env).unwrap();
        assert_eq!(vm_profile.stats, env.stats);
    }

    #[test]
    fn platform_energy_scales_with_invocations() {
        let program = parse_program(DOT_KERNEL).unwrap();
        let profile = profile_kernel(&program, "dot", &dot_args(256)).unwrap();
        let spec = NodeSpec::cineca_xeon();
        let once = platform_energy_j(&profile, &spec, 1_000_000);
        let twice = platform_energy_j(&profile, &spec, 2_000_000);
        assert!(twice > once * 1.8 && twice < once * 2.2);
    }

    #[test]
    fn unrolling_saves_platform_energy_via_fewer_interpreter_flops() {
        // unrolling does not change flops, but specialization+folding can;
        // here we check the *bridge* is faithful: same flops -> same work
        let program = parse_program(DOT_KERNEL).unwrap();
        let mut unrolled = parse_program(
            "double dot(double a[], double b[], int n) {
                 double s = 0.0;
                 for (int i = 0; i < 64; i++) { s += a[i] * b[i]; }
                 return s;
             }",
        )
        .unwrap();
        unrolled
            .edit_function("dot", |f| {
                unroll_full(&mut f.body, &NodePath::root(1)).unwrap();
            })
            .unwrap();
        let base = profile_kernel(&program, "dot", &dot_args(64)).unwrap();
        let opt = profile_kernel(&unrolled, "dot", &dot_args(64)).unwrap();
        assert_eq!(base.work.flops, opt.work.flops, "same arithmetic demand");
        assert!(
            opt.stats.cost < base.stats.cost,
            "but less interpreter overhead"
        );
    }

    #[test]
    fn simulate_on_node_uses_current_pstate() {
        // scalar kernel: no memory traffic, so time follows frequency
        let program = parse_program(
            "double poly(double x, int n) {
                 double s = 0.0;
                 for (int i = 0; i < n; i++) { s = s * x + 1.0; }
                 return s;
             }",
        )
        .unwrap();
        let profile =
            profile_kernel(&program, "poly", &[Value::Float(0.5), Value::Int(64)]).unwrap();
        assert_eq!(profile.work.bytes, 0.0, "compute-bound profile");
        let mut fast = Node::nominal(NodeSpec::cineca_xeon(), 0);
        fast.set_pstate(fast.spec().pstates.max_index());
        let mut slow = Node::nominal(NodeSpec::cineca_xeon(), 1);
        slow.set_pstate(0);
        let a = simulate_on_node(&profile, &mut fast, 1_000_000);
        let b = simulate_on_node(&profile, &mut slow, 1_000_000);
        assert!(a.time_s < b.time_s);
    }
}
