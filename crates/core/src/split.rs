//! Split-compilation accounting.
//!
//! "The key idea is to split the compilation process in two steps —
//! offline, and online — and to offload as much of the complexity as
//! possible to the offline step, conveying the results to runtime
//! optimizers" (§III). This module quantifies the split for a deployed
//! runtime: how much work happened offline (static weaving), how often
//! the online step had to synthesize code (specializations), and how
//! often it rode the version cache for free.

use crate::flow::{FlowError, Runtime};
use antarex_ir::value::Value;

/// Split-compilation statistics for one call-site function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitReport {
    /// Calls answered straight from the version cache.
    pub cache_hits: u64,
    /// Calls that fell through the cache (miss or out of range).
    pub cache_misses: u64,
    /// Distinct specialized versions synthesized online.
    pub versions: usize,
    /// Mean per-call cost (abstract units) over the measured calls.
    pub mean_cost: f64,
}

impl SplitReport {
    /// Cache hit rate over all dispatches.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Drives `calls` through a deployed runtime, then reports the split
/// between online synthesis and cache reuse for `function`.
///
/// # Errors
///
/// Propagates runtime errors from any call.
pub fn measure_split(
    runtime: &mut Runtime,
    entry: &str,
    function: &str,
    calls: &[Vec<Value>],
) -> Result<SplitReport, FlowError> {
    let mut total_cost = 0u64;
    for args in calls {
        let (_, stats) = runtime.call(entry, args)?;
        total_cost += stats.cost;
    }
    let (hits, misses) = runtime.dispatch_stats(function);
    Ok(SplitReport {
        cache_hits: hits,
        cache_misses: misses,
        versions: runtime.version_count(function),
        mean_cost: if calls.is_empty() {
            0.0
        } else {
            total_cost as f64 / calls.len() as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::ToolFlow;
    use crate::scenario::DYNAMIC_KERNEL;
    use antarex_dsl::figures::{FIG3_UNROLL_INNERMOST_LOOPS, FIG4_SPECIALIZE_KERNEL};
    use antarex_dsl::DslValue;

    fn deployed() -> Runtime {
        let aspects = format!("{FIG4_SPECIALIZE_KERNEL}\n{FIG3_UNROLL_INNERMOST_LOOPS}");
        let mut flow = ToolFlow::new(DYNAMIC_KERNEL, &aspects).unwrap();
        flow.weave("SpecializeKernel", &[DslValue::Int(4), DslValue::Int(64)])
            .unwrap();
        flow.deploy()
    }

    #[test]
    fn repeated_sizes_ride_the_cache() {
        let mut runtime = deployed();
        let calls: Vec<Vec<Value>> = (0..10)
            .map(|_| vec![Value::from(vec![1.0; 16]), Value::Int(16)])
            .collect();
        let report = measure_split(&mut runtime, "run", "kernel", &calls).unwrap();
        assert_eq!(report.versions, 1);
        // the first call misses once, synthesizes, then resolves from the
        // store like every later call: 10 hits, 1 miss
        assert_eq!(report.cache_hits, 10);
        assert_eq!(report.cache_misses, 1);
        assert!(report.hit_rate() > 0.85);
        assert!(report.mean_cost > 0.0);
    }

    #[test]
    fn out_of_range_sizes_never_specialize() {
        let mut runtime = deployed();
        let calls: Vec<Vec<Value>> = (0..5)
            .map(|_| vec![Value::from(vec![1.0; 100]), Value::Int(100)])
            .collect();
        let report = measure_split(&mut runtime, "run", "kernel", &calls).unwrap();
        assert_eq!(report.versions, 0);
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.hit_rate(), 0.0);
    }

    #[test]
    fn varied_sizes_build_a_version_per_value() {
        let mut runtime = deployed();
        let calls: Vec<Vec<Value>> = [8usize, 16, 24, 8, 16, 24]
            .iter()
            .map(|&n| vec![Value::from(vec![1.0; n]), Value::Int(n as i64)])
            .collect();
        let report = measure_split(&mut runtime, "run", "kernel", &calls).unwrap();
        assert_eq!(report.versions, 3);
        assert_eq!(report.cache_hits, 6, "3 post-synthesis + 3 repeats");
        assert_eq!(report.cache_misses, 3);
    }

    #[test]
    fn empty_call_list() {
        let mut runtime = deployed();
        let report = measure_split(&mut runtime, "run", "kernel", &[]).unwrap();
        assert_eq!(report.mean_cost, 0.0);
        assert_eq!(report.hit_rate(), 0.0);
    }
}
