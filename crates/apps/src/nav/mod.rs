//! Use Case 2: self-adaptive navigation system.
//!
//! "To solve the growing automotive traffic load, it is necessary to find
//! the best utilization of an existing road network, under a variable
//! workload ... The efficient operation of such a system depends strongly
//! on balancing data collection, big data analysis and extreme
//! computational power" (§VII-b).
//!
//! The server-side planner answers routing requests on a synthetic road
//! network with time-dependent congestion. Its software knob is the
//! number of *alternative routes* computed per request (more alternatives
//! → better traffic-aware choices, more CPU per request). Under rush-hour
//! load the ANTAREX runtime dials the knob down to hold the latency SLA.

pub mod error;
pub mod graph;
pub mod route;
pub mod server;
pub mod traffic;

pub use error::NavError;
pub use graph::RoadNetwork;
pub use route::{alternative_routes, shortest_path, Route};
pub use server::{NavigationServer, RequestOutcome};
pub use traffic::TrafficModel;
