//! Synthetic road network: an urban grid with a highway overlay.

use rand::Rng;

/// A directed edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Destination node.
    pub to: usize,
    /// Free-flow travel time, seconds.
    pub base_time_s: f64,
    /// `true` for highway segments (congestion behaves differently).
    pub highway: bool,
}

/// A road network with planar node coordinates (for A* heuristics).
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    coords: Vec<(f64, f64)>,
    adjacency: Vec<Vec<Edge>>,
    edge_count: usize,
}

impl RoadNetwork {
    /// Builds an `n × n` city grid (50 km/h streets, 500 m blocks) with a
    /// sparse highway overlay (110 km/h, skipping several blocks), with
    /// slight random perturbation of street times.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn city_grid(n: usize, rng: &mut impl Rng) -> Self {
        assert!(n >= 2, "grid must be at least 2x2");
        let block_m = 500.0;
        let street_time = block_m / (50.0 / 3.6);
        let mut network = RoadNetwork {
            coords: (0..n * n)
                .map(|i| ((i % n) as f64 * block_m, (i / n) as f64 * block_m))
                .collect(),
            adjacency: vec![Vec::new(); n * n],
            edge_count: 0,
        };
        let id = |x: usize, y: usize| y * n + x;
        for y in 0..n {
            for x in 0..n {
                let mut jitter = || 1.0 + rng.gen_range(-0.15..0.25);
                let (j1, j2) = (jitter(), jitter());
                if x + 1 < n {
                    network.add_bidirectional(id(x, y), id(x + 1, y), street_time * j1, false);
                }
                if y + 1 < n {
                    network.add_bidirectional(id(x, y), id(x, y + 1), street_time * j2, false);
                }
            }
        }
        // highway ring at 1/4 and 3/4 rows/columns, skipping 4 blocks a hop
        let q1 = n / 4;
        let q3 = (3 * n) / 4;
        let hop = 4.min(n - 1);
        let hw_time = (hop as f64 * block_m) / (110.0 / 3.6);
        for fixed in [q1, q3] {
            let mut x = 0;
            while x + hop < n {
                network.add_bidirectional(id(x, fixed), id(x + hop, fixed), hw_time, true);
                network.add_bidirectional(id(fixed, x), id(fixed, x + hop), hw_time, true);
                x += hop;
            }
        }
        network
    }

    fn add_bidirectional(&mut self, a: usize, b: usize, time: f64, highway: bool) {
        self.adjacency[a].push(Edge {
            to: b,
            base_time_s: time,
            highway,
        });
        self.adjacency[b].push(Edge {
            to: a,
            base_time_s: time,
            highway,
        });
        self.edge_count += 2;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Returns `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Outgoing edges of a node.
    pub fn edges(&self, node: usize) -> &[Edge] {
        &self.adjacency[node]
    }

    /// Planar coordinates of a node, metres.
    pub fn coord(&self, node: usize) -> (f64, f64) {
        self.coords[node]
    }

    /// Euclidean distance between two nodes, metres.
    pub fn distance_m(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.coords[a];
        let (bx, by) = self.coords[b];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Admissible travel-time lower bound between nodes (highway speed
    /// over the straight-line distance), seconds — the A* heuristic.
    pub fn heuristic_s(&self, a: usize, b: usize) -> f64 {
        self.distance_m(a, b) / (110.0 / 3.6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let network = RoadNetwork::city_grid(10, &mut rng);
        assert_eq!(network.len(), 100);
        // 2 * (2 * 10 * 9) street edges plus highway edges
        assert!(network.edge_count() > 360);
        // corner has exactly 2 street neighbours
        assert_eq!(network.edges(0).len(), 2);
    }

    #[test]
    fn highways_are_faster_per_metre() {
        let mut rng = StdRng::seed_from_u64(2);
        let network = RoadNetwork::city_grid(12, &mut rng);
        let mut street_speed: f64 = 0.0;
        let mut highway_speed: f64 = 0.0;
        for node in 0..network.len() {
            for edge in network.edges(node) {
                let d = network.distance_m(node, edge.to);
                let v = d / edge.base_time_s;
                if edge.highway {
                    highway_speed = highway_speed.max(v);
                } else {
                    street_speed = street_speed.max(v);
                }
            }
        }
        assert!(highway_speed > street_speed * 1.5);
    }

    #[test]
    fn heuristic_is_admissible_on_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        let network = RoadNetwork::city_grid(8, &mut rng);
        for node in 0..network.len() {
            for edge in network.edges(node) {
                assert!(
                    network.heuristic_s(node, edge.to) <= edge.base_time_s + 1e-9,
                    "heuristic overestimates edge {node}->{}",
                    edge.to
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_grid_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = RoadNetwork::city_grid(1, &mut rng);
    }
}
