//! The server-side navigation service.
//!
//! Requests arrive at a time-varying rate; each is answered by computing
//! `alternatives` candidate routes (the quality knob) on a pool of worker
//! cores. Latency is modelled from search effort: expanded nodes divided
//! by the core's expansion throughput, plus queueing delay when offered
//! load exceeds capacity — exactly the regime where the ANTAREX runtime
//! must shed quality to hold the latency SLA.

use super::error::NavError;
use super::graph::RoadNetwork;
use super::route::{alternative_routes, Route};
use super::traffic::TrafficModel;
use rand::Rng;

/// Outcome of serving one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Time the request arrived, seconds of day.
    pub arrival_s: f64,
    /// Total latency (queueing + compute), seconds.
    pub latency_s: f64,
    /// Travel time of the returned best route, seconds.
    pub best_travel_time_s: f64,
    /// Number of alternatives actually computed.
    pub alternatives: usize,
}

/// Bounded retry with exponential backoff, plus a load-shedding
/// threshold, for serving requests on a faulty backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff after each failed retry.
    pub backoff_multiplier: f64,
    /// Backlog (seconds of queued service time) beyond which the
    /// server sheds load by answering with a single alternative.
    pub shed_backlog_s: f64,
}

impl RetryPolicy {
    /// Three attempts, 50 ms initial backoff doubling each time, shed
    /// above two seconds of backlog.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_s: 0.05,
            backoff_multiplier: 2.0,
            shed_backlog_s: 2.0,
        }
    }

    /// Validates the policy: at least one attempt, a non-negative
    /// backoff and shed threshold, a multiplier of at least 1.
    pub fn try_validate(&self) -> Result<(), NavError> {
        if self.max_attempts == 0 {
            return Err(NavError::InvalidPolicy("need at least one attempt"));
        }
        if self.base_backoff_s < 0.0 {
            return Err(NavError::InvalidPolicy("backoff must be non-negative"));
        }
        if self.backoff_multiplier < 1.0 {
            return Err(NavError::InvalidPolicy("multiplier must be >= 1"));
        }
        if self.shed_backlog_s < 0.0 {
            return Err(NavError::InvalidPolicy("shed threshold non-negative"));
        }
        Ok(())
    }
}

/// Outcome of serving one request through [`NavigationServer::serve_resilient`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientOutcome {
    /// The answered request, if any attempt succeeded.
    pub outcome: Option<RequestOutcome>,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Compute seconds burned by failed attempts (wasted work).
    pub wasted_compute_s: f64,
    /// Whether load shedding degraded the request to one alternative.
    pub shed: bool,
}

/// The navigation server.
#[derive(Debug, Clone)]
pub struct NavigationServer {
    network: RoadNetwork,
    traffic: TrafficModel,
    /// Worker cores serving requests.
    pub cores: usize,
    /// Node expansions per second per core (planner throughput).
    pub expansions_per_s: f64,
    alternatives: usize,
    backlog_s: f64,
}

impl NavigationServer {
    /// Creates a server over a network and traffic model with the given
    /// worker-core count.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(network: RoadNetwork, traffic: TrafficModel, cores: usize) -> Self {
        assert!(cores > 0, "server needs at least one core");
        NavigationServer {
            network,
            traffic,
            cores,
            // time-dependent planners hit the traffic model on every edge
            // relaxation: ~1500 expansions/s/core, calibrated so a
            // full-quality request costs hundreds of milliseconds — the
            // regime where rush-hour load genuinely saturates the server
            expansions_per_s: 1500.0,
            alternatives: 4,
            backlog_s: 0.0,
        }
    }

    /// The road network served.
    pub fn network(&self) -> &RoadNetwork {
        &self.network
    }

    /// The current quality knob: alternatives per request.
    pub fn alternatives(&self) -> usize {
        self.alternatives
    }

    /// Sets the quality knob.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is zero.
    pub fn set_alternatives(&mut self, alternatives: usize) {
        assert!(alternatives > 0, "need at least one route");
        self.alternatives = alternatives;
    }

    /// Pending work in the queue, expressed as seconds of single-request
    /// service time.
    pub fn backlog_s(&self) -> f64 {
        self.backlog_s
    }

    /// Lets the queue drain for `dt` seconds of wall time without
    /// arrivals.
    pub fn drain(&mut self, dt: f64) {
        self.backlog_s = (self.backlog_s - dt).max(0.0);
    }

    /// Draws an OD pair, plans the configured alternatives and charges
    /// the compute to the shared backlog. Returns the drawn pair, the
    /// routes, and the (queueing, compute) latency split.
    fn serve_core(
        &mut self,
        arrival_s: f64,
        rng: &mut impl Rng,
    ) -> Result<(usize, usize, Vec<Route>, f64, f64), NavError> {
        if self.network.is_empty() {
            return Err(NavError::EmptyNetwork);
        }
        let origin = rng.gen_range(0..self.network.len());
        let destination = rng.gen_range(0..self.network.len());
        let routes = alternative_routes(
            &self.network,
            &self.traffic,
            origin,
            destination,
            arrival_s,
            self.alternatives,
        );
        let expanded: usize = routes.iter().map(|r| r.expanded).sum();
        let compute_s = expanded as f64 / self.expansions_per_s / self.cores as f64;
        let queueing_s = self.backlog_s;
        // the work was done even when no route came back
        self.backlog_s += compute_s;
        Ok((origin, destination, routes, queueing_s, compute_s))
    }

    /// Serves one request arriving at `arrival_s` between two random
    /// nodes, computing the configured number of alternatives and
    /// returning the outcome. Queueing is modelled by a shared backlog:
    /// service time adds to it, divided by the core count.
    ///
    /// Degenerate inputs surface as [`NavError`] instead of a panic:
    /// this is the entry point for the multi-tenant serving tier, where
    /// one bad request must not take down the process.
    pub fn try_serve(
        &mut self,
        arrival_s: f64,
        rng: &mut impl Rng,
    ) -> Result<RequestOutcome, NavError> {
        let (origin, destination, routes, queueing_s, compute_s) =
            self.serve_core(arrival_s, rng)?;
        let Some(first) = routes.first() else {
            return Err(NavError::NoRoute {
                origin,
                destination,
            });
        };
        Ok(RequestOutcome {
            arrival_s,
            latency_s: queueing_s + compute_s,
            best_travel_time_s: first.travel_time_s,
            alternatives: routes.len(),
        })
    }

    /// Panicking convenience wrapper over the same planning path as
    /// [`NavigationServer::try_serve`]; an unreachable destination is
    /// reported as an infinite best travel time rather than an error.
    ///
    /// # Panics
    ///
    /// Panics when the network is empty.
    pub fn serve(&mut self, arrival_s: f64, rng: &mut impl Rng) -> RequestOutcome {
        match self.serve_core(arrival_s, rng) {
            Ok((_, _, routes, queueing_s, compute_s)) => RequestOutcome {
                arrival_s,
                latency_s: queueing_s + compute_s,
                best_travel_time_s: routes
                    .first()
                    .map(|r| r.travel_time_s)
                    .unwrap_or(f64::INFINITY),
                alternatives: routes.len(),
            },
            Err(e) => panic!("{e}"),
        }
    }

    /// Serves one request on a backend that fails each attempt with
    /// probability `failure_prob`, applying `policy`: failed attempts
    /// burn their compute (it still lands on the queue) and add an
    /// exponentially growing backoff to the request latency; when the
    /// backlog exceeds `policy.shed_backlog_s` the request is degraded
    /// to a single alternative before the first attempt (load
    /// shedding). Returns `outcome: None` when every attempt failed.
    ///
    /// With `failure_prob == 0` and a backlog below the shed threshold
    /// this is byte-identical to [`NavigationServer::serve`] — the
    /// fault-free path draws the same RNG stream and runs the same
    /// planner.
    ///
    /// Result-based variant of [`NavigationServer::serve_resilient`]:
    /// an out-of-range `failure_prob`, a malformed policy, or a
    /// degenerate network come back as [`NavError`] values.
    pub fn try_serve_resilient(
        &mut self,
        arrival_s: f64,
        rng: &mut impl Rng,
        failure_prob: f64,
        policy: RetryPolicy,
    ) -> Result<ResilientOutcome, NavError> {
        if !(0.0..=1.0).contains(&failure_prob) {
            return Err(NavError::InvalidFailureProbability(failure_prob));
        }
        policy.try_validate()?;
        let shed = self.backlog_s > policy.shed_backlog_s && self.alternatives > 1;
        let saved_alternatives = self.alternatives;
        if shed {
            self.alternatives = 1;
        }
        let mut wasted_compute_s = 0.0;
        let mut backoff_total_s = 0.0;
        let mut backoff_s = policy.base_backoff_s;
        let mut result = ResilientOutcome {
            outcome: None,
            attempts: 0,
            wasted_compute_s: 0.0,
            shed,
        };
        for attempt in 1..=policy.max_attempts {
            result.attempts = attempt;
            // draw the failure AFTER computing, as a real backend
            // would: the work is done, then the reply is lost
            let backlog_before = self.backlog_s;
            let served = self.try_serve(arrival_s, rng);
            let mut outcome = match served {
                Ok(outcome) => outcome,
                // terminal errors (no route, degenerate network) are
                // returned at once; transient upstream faults burn an
                // attempt and back off like a lost reply would
                Err(e) if !e.is_retryable() || attempt == policy.max_attempts => {
                    self.alternatives = saved_alternatives;
                    return Err(e);
                }
                Err(_) => {
                    backoff_total_s += backoff_s;
                    self.drain(backoff_s);
                    backoff_s *= policy.backoff_multiplier;
                    continue;
                }
            };
            let compute_s = self.backlog_s - backlog_before;
            let failed = failure_prob > 0.0 && rng.gen_bool(failure_prob);
            if !failed {
                outcome.latency_s += backoff_total_s;
                result.outcome = Some(outcome);
                break;
            }
            wasted_compute_s += compute_s;
            if attempt < policy.max_attempts {
                backoff_total_s += backoff_s;
                // the queue drains while this request sits out its backoff
                self.drain(backoff_s);
                backoff_s *= policy.backoff_multiplier;
            }
        }
        self.alternatives = saved_alternatives;
        result.wasted_compute_s = wasted_compute_s;
        Ok(result)
    }

    /// # Panics
    ///
    /// Panics if `failure_prob` is outside `[0, 1]`, the policy is
    /// invalid, or the network is degenerate — the conditions
    /// [`NavigationServer::try_serve_resilient`] reports as errors.
    pub fn serve_resilient(
        &mut self,
        arrival_s: f64,
        rng: &mut impl Rng,
        failure_prob: f64,
        policy: RetryPolicy,
    ) -> ResilientOutcome {
        match self.try_serve_resilient(arrival_s, rng, failure_prob, policy) {
            Ok(result) => result,
            Err(e) => panic!("{e}"),
        }
    }

    /// Route-quality proxy of the current knob setting: the expected
    /// improvement of best-of-k over best-of-1 on random OD pairs at a
    /// reference time (1.0 = no improvement). Larger k explores more
    /// detours around congestion.
    pub fn quality_probe(&self, samples: usize, rng: &mut impl Rng) -> f64 {
        let mut gain = 0.0;
        let mut counted = 0;
        for _ in 0..samples {
            let origin = rng.gen_range(0..self.network.len());
            let destination = rng.gen_range(0..self.network.len());
            if origin == destination {
                continue;
            }
            let routes = alternative_routes(
                &self.network,
                &self.traffic,
                origin,
                destination,
                8.0 * 3600.0,
                self.alternatives,
            );
            if let Some(first) = routes.first() {
                let best = routes
                    .iter()
                    .map(|r| r.travel_time_s)
                    .fold(f64::INFINITY, f64::min);
                gain += first.travel_time_s / best.max(1e-9);
                counted += 1;
            }
        }
        if counted == 0 {
            1.0
        } else {
            gain / counted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server() -> NavigationServer {
        let mut rng = StdRng::seed_from_u64(20);
        let network = RoadNetwork::city_grid(16, &mut rng);
        NavigationServer::new(network, TrafficModel::weekday(), 4)
    }

    #[test]
    fn serving_accumulates_backlog_under_burst() {
        let mut s = server();
        let mut rng = StdRng::seed_from_u64(21);
        let first = s.serve(8.0 * 3600.0, &mut rng);
        assert_eq!(first.latency_s, first.latency_s.max(0.0));
        let mut last = first.latency_s;
        // a burst with no draining piles up queueing delay
        for _ in 0..20 {
            let outcome = s.serve(8.0 * 3600.0, &mut rng);
            last = outcome.latency_s;
        }
        assert!(last > first.latency_s, "queueing must build: {last}");
        assert!(s.backlog_s() > 0.0);
    }

    #[test]
    fn draining_empties_the_queue() {
        let mut s = server();
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..10 {
            s.serve(8.0 * 3600.0, &mut rng);
        }
        s.drain(1e9);
        assert_eq!(s.backlog_s(), 0.0);
    }

    #[test]
    fn fewer_alternatives_are_faster() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut hi = server();
        hi.set_alternatives(8);
        let mut lo = server();
        lo.set_alternatives(1);
        let mut hi_total = 0.0;
        let mut lo_total = 0.0;
        for _ in 0..10 {
            let mut r1 = rng.clone();
            hi_total += hi.serve(3600.0, &mut r1).latency_s;
            lo_total += lo.serve(3600.0, &mut rng).latency_s;
            hi.drain(1e9);
            lo.drain(1e9);
        }
        assert!(
            hi_total > lo_total * 2.0,
            "8 alternatives {hi_total} vs 1 alternative {lo_total}"
        );
    }

    #[test]
    fn more_alternatives_find_better_or_equal_routes() {
        let mut hi = server();
        hi.set_alternatives(6);
        let mut lo = server();
        lo.set_alternatives(1);
        let q_hi = hi.quality_probe(12, &mut StdRng::seed_from_u64(24));
        let q_lo = lo.quality_probe(12, &mut StdRng::seed_from_u64(24));
        // probe returns first/best ratio: 1.0 when k=1, >= 1.0 otherwise
        assert_eq!(q_lo, 1.0);
        assert!(q_hi >= 1.0);
    }

    #[test]
    fn outcome_fields_are_sane() {
        let mut s = server();
        let outcome = s.serve(5.0 * 3600.0, &mut StdRng::seed_from_u64(25));
        assert!(outcome.latency_s > 0.0);
        assert!(outcome.alternatives >= 1);
        assert!(outcome.best_travel_time_s >= 0.0);
    }

    #[test]
    fn resilient_with_zero_failures_matches_plain_serve() {
        let mut plain = server();
        let mut resilient = server();
        let mut rng_a = StdRng::seed_from_u64(30);
        let mut rng_b = StdRng::seed_from_u64(30);
        for i in 0..10 {
            let t = 8.0 * 3600.0 + f64::from(i);
            let a = plain.serve(t, &mut rng_a);
            let b = resilient.serve_resilient(t, &mut rng_b, 0.0, RetryPolicy::standard());
            assert_eq!(b.outcome.as_ref(), Some(&a), "request {i} diverged");
            assert_eq!(b.attempts, 1);
            assert_eq!(b.wasted_compute_s, 0.0);
        }
        assert_eq!(plain.backlog_s(), resilient.backlog_s());
    }

    #[test]
    fn certain_failure_exhausts_attempts_and_wastes_compute() {
        let mut s = server();
        let mut rng = StdRng::seed_from_u64(31);
        let policy = RetryPolicy::standard();
        let r = s.serve_resilient(8.0 * 3600.0, &mut rng, 1.0, policy);
        assert_eq!(r.outcome, None);
        assert_eq!(r.attempts, policy.max_attempts);
        assert!(r.wasted_compute_s > 0.0);
    }

    #[test]
    fn backoff_adds_to_latency_of_eventual_success() {
        // force the first attempt to fail, the second to succeed, by
        // finding a seed whose failure draws cooperate under p = 0.5
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff_s: 1.0,
            backoff_multiplier: 2.0,
            shed_backlog_s: f64::INFINITY,
        };
        let mut found_retry = false;
        for seed in 0..50 {
            let mut s = server();
            let mut rng = StdRng::seed_from_u64(seed);
            let r = s.serve_resilient(8.0 * 3600.0, &mut rng, 0.5, policy);
            if let Some(outcome) = &r.outcome {
                if r.attempts > 1 {
                    // at least base_backoff_s of waiting is in the latency
                    assert!(outcome.latency_s >= policy.base_backoff_s);
                    assert!(r.wasted_compute_s > 0.0);
                    found_retry = true;
                    break;
                }
            }
        }
        assert!(found_retry, "no retried-then-succeeded case in 50 seeds");
    }

    #[test]
    fn overload_sheds_to_one_alternative() {
        let mut s = server();
        s.set_alternatives(6);
        let mut rng = StdRng::seed_from_u64(33);
        let policy = RetryPolicy {
            shed_backlog_s: 0.0,
            ..RetryPolicy::standard()
        };
        // build up backlog beyond the (zero) threshold
        s.serve(8.0 * 3600.0, &mut rng);
        assert!(s.backlog_s() > 0.0);
        let r = s.serve_resilient(8.0 * 3600.0, &mut rng, 0.0, policy);
        assert!(r.shed);
        assert_eq!(r.outcome.expect("served").alternatives, 1);
        // the quality knob is restored afterwards
        assert_eq!(s.alternatives(), 6);
    }

    #[test]
    fn try_serve_matches_serve() {
        let mut plain = server();
        let mut fallible = server();
        let mut rng_a = StdRng::seed_from_u64(40);
        let mut rng_b = StdRng::seed_from_u64(40);
        for i in 0..10 {
            let t = 7.0 * 3600.0 + f64::from(i);
            let a = plain.serve(t, &mut rng_a);
            let b = fallible
                .try_serve(t, &mut rng_b)
                .expect("grid is connected");
            assert_eq!(a, b, "request {i} diverged");
        }
        assert_eq!(plain.backlog_s(), fallible.backlog_s());
    }

    #[test]
    fn bad_probability_is_a_typed_error() {
        let mut s = server();
        let mut rng = StdRng::seed_from_u64(35);
        let err = s
            .try_serve_resilient(0.0, &mut rng, -0.5, RetryPolicy::standard())
            .unwrap_err();
        assert_eq!(err, NavError::InvalidFailureProbability(-0.5));
    }

    #[test]
    fn bad_policy_is_a_typed_error() {
        let mut s = server();
        let mut rng = StdRng::seed_from_u64(36);
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::standard()
        };
        let err = s
            .try_serve_resilient(0.0, &mut rng, 0.0, policy)
            .unwrap_err();
        assert_eq!(err, NavError::InvalidPolicy("need at least one attempt"));
        // errors leave the quality knob untouched
        assert_eq!(s.alternatives(), 4);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_failure_probability_rejected() {
        let mut s = server();
        let mut rng = StdRng::seed_from_u64(34);
        let _ = s.serve_resilient(0.0, &mut rng, 1.5, RetryPolicy::standard());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let mut rng = StdRng::seed_from_u64(26);
        let network = RoadNetwork::city_grid(4, &mut rng);
        let _ = NavigationServer::new(network, TrafficModel::weekday(), 0);
    }
}
