//! The server-side navigation service.
//!
//! Requests arrive at a time-varying rate; each is answered by computing
//! `alternatives` candidate routes (the quality knob) on a pool of worker
//! cores. Latency is modelled from search effort: expanded nodes divided
//! by the core's expansion throughput, plus queueing delay when offered
//! load exceeds capacity — exactly the regime where the ANTAREX runtime
//! must shed quality to hold the latency SLA.

use super::graph::RoadNetwork;
use super::route::{alternative_routes, Route};
use super::traffic::TrafficModel;
use rand::Rng;

/// Outcome of serving one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Time the request arrived, seconds of day.
    pub arrival_s: f64,
    /// Total latency (queueing + compute), seconds.
    pub latency_s: f64,
    /// Travel time of the returned best route, seconds.
    pub best_travel_time_s: f64,
    /// Number of alternatives actually computed.
    pub alternatives: usize,
}

/// The navigation server.
#[derive(Debug, Clone)]
pub struct NavigationServer {
    network: RoadNetwork,
    traffic: TrafficModel,
    /// Worker cores serving requests.
    pub cores: usize,
    /// Node expansions per second per core (planner throughput).
    pub expansions_per_s: f64,
    alternatives: usize,
    backlog_s: f64,
}

impl NavigationServer {
    /// Creates a server over a network and traffic model with the given
    /// worker-core count.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(network: RoadNetwork, traffic: TrafficModel, cores: usize) -> Self {
        assert!(cores > 0, "server needs at least one core");
        NavigationServer {
            network,
            traffic,
            cores,
            // time-dependent planners hit the traffic model on every edge
            // relaxation: ~1500 expansions/s/core, calibrated so a
            // full-quality request costs hundreds of milliseconds — the
            // regime where rush-hour load genuinely saturates the server
            expansions_per_s: 1500.0,
            alternatives: 4,
            backlog_s: 0.0,
        }
    }

    /// The road network served.
    pub fn network(&self) -> &RoadNetwork {
        &self.network
    }

    /// The current quality knob: alternatives per request.
    pub fn alternatives(&self) -> usize {
        self.alternatives
    }

    /// Sets the quality knob.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is zero.
    pub fn set_alternatives(&mut self, alternatives: usize) {
        assert!(alternatives > 0, "need at least one route");
        self.alternatives = alternatives;
    }

    /// Pending work in the queue, expressed as seconds of single-request
    /// service time.
    pub fn backlog_s(&self) -> f64 {
        self.backlog_s
    }

    /// Lets the queue drain for `dt` seconds of wall time without
    /// arrivals.
    pub fn drain(&mut self, dt: f64) {
        self.backlog_s = (self.backlog_s - dt).max(0.0);
    }

    /// Serves one request arriving at `arrival_s` between two random
    /// nodes, computing the configured number of alternatives and
    /// returning the outcome. Queueing is modelled by a shared backlog:
    /// service time adds to it, divided by the core count.
    pub fn serve(&mut self, arrival_s: f64, rng: &mut impl Rng) -> RequestOutcome {
        let origin = rng.gen_range(0..self.network.len());
        let destination = rng.gen_range(0..self.network.len());
        let routes = alternative_routes(
            &self.network,
            &self.traffic,
            origin,
            destination,
            arrival_s,
            self.alternatives,
        );
        let expanded: usize = routes.iter().map(|r| r.expanded).sum();
        let compute_s = expanded as f64 / self.expansions_per_s / self.cores as f64;
        let queueing_s = self.backlog_s;
        self.backlog_s += compute_s;
        let best = routes
            .first()
            .map(Route::clone)
            .map(|r| r.travel_time_s)
            .unwrap_or(f64::INFINITY);
        RequestOutcome {
            arrival_s,
            latency_s: queueing_s + compute_s,
            best_travel_time_s: best,
            alternatives: routes.len(),
        }
    }

    /// Route-quality proxy of the current knob setting: the expected
    /// improvement of best-of-k over best-of-1 on random OD pairs at a
    /// reference time (1.0 = no improvement). Larger k explores more
    /// detours around congestion.
    pub fn quality_probe(&self, samples: usize, rng: &mut impl Rng) -> f64 {
        let mut gain = 0.0;
        let mut counted = 0;
        for _ in 0..samples {
            let origin = rng.gen_range(0..self.network.len());
            let destination = rng.gen_range(0..self.network.len());
            if origin == destination {
                continue;
            }
            let routes = alternative_routes(
                &self.network,
                &self.traffic,
                origin,
                destination,
                8.0 * 3600.0,
                self.alternatives,
            );
            if let Some(first) = routes.first() {
                let best = routes
                    .iter()
                    .map(|r| r.travel_time_s)
                    .fold(f64::INFINITY, f64::min);
                gain += first.travel_time_s / best.max(1e-9);
                counted += 1;
            }
        }
        if counted == 0 {
            1.0
        } else {
            gain / counted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server() -> NavigationServer {
        let mut rng = StdRng::seed_from_u64(20);
        let network = RoadNetwork::city_grid(16, &mut rng);
        NavigationServer::new(network, TrafficModel::weekday(), 4)
    }

    #[test]
    fn serving_accumulates_backlog_under_burst() {
        let mut s = server();
        let mut rng = StdRng::seed_from_u64(21);
        let first = s.serve(8.0 * 3600.0, &mut rng);
        assert_eq!(first.latency_s, first.latency_s.max(0.0));
        let mut last = first.latency_s;
        // a burst with no draining piles up queueing delay
        for _ in 0..20 {
            let outcome = s.serve(8.0 * 3600.0, &mut rng);
            last = outcome.latency_s;
        }
        assert!(last > first.latency_s, "queueing must build: {last}");
        assert!(s.backlog_s() > 0.0);
    }

    #[test]
    fn draining_empties_the_queue() {
        let mut s = server();
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..10 {
            s.serve(8.0 * 3600.0, &mut rng);
        }
        s.drain(1e9);
        assert_eq!(s.backlog_s(), 0.0);
    }

    #[test]
    fn fewer_alternatives_are_faster() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut hi = server();
        hi.set_alternatives(8);
        let mut lo = server();
        lo.set_alternatives(1);
        let mut hi_total = 0.0;
        let mut lo_total = 0.0;
        for _ in 0..10 {
            let mut r1 = rng.clone();
            hi_total += hi.serve(3600.0, &mut r1).latency_s;
            lo_total += lo.serve(3600.0, &mut rng).latency_s;
            hi.drain(1e9);
            lo.drain(1e9);
        }
        assert!(
            hi_total > lo_total * 2.0,
            "8 alternatives {hi_total} vs 1 alternative {lo_total}"
        );
    }

    #[test]
    fn more_alternatives_find_better_or_equal_routes() {
        let mut hi = server();
        hi.set_alternatives(6);
        let mut lo = server();
        lo.set_alternatives(1);
        let q_hi = hi.quality_probe(12, &mut StdRng::seed_from_u64(24));
        let q_lo = lo.quality_probe(12, &mut StdRng::seed_from_u64(24));
        // probe returns first/best ratio: 1.0 when k=1, >= 1.0 otherwise
        assert_eq!(q_lo, 1.0);
        assert!(q_hi >= 1.0);
    }

    #[test]
    fn outcome_fields_are_sane() {
        let mut s = server();
        let outcome = s.serve(5.0 * 3600.0, &mut StdRng::seed_from_u64(25));
        assert!(outcome.latency_s > 0.0);
        assert!(outcome.alternatives >= 1);
        assert!(outcome.best_travel_time_s >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let mut rng = StdRng::seed_from_u64(26);
        let network = RoadNetwork::city_grid(4, &mut rng);
        let _ = NavigationServer::new(network, TrafficModel::weekday(), 0);
    }
}
