//! Route planning: Dijkstra, A*, and penalty-based alternatives.

use super::graph::RoadNetwork;
use super::traffic::TrafficModel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A computed route.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Node sequence from origin to destination.
    pub nodes: Vec<usize>,
    /// Congested travel time, seconds.
    pub travel_time_s: f64,
    /// Search effort: priority-queue pops performed (the latency driver).
    pub expanded: usize,
}

#[derive(Debug, PartialEq)]
struct QueueEntry {
    node: usize,
    cost: f64,
    estimate: f64,
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.estimate.total_cmp(&self.estimate)
    }
}

/// Congested cost of an edge at the given departure time.
fn edge_cost(
    network: &RoadNetwork,
    traffic: &TrafficModel,
    from: usize,
    edge_index: usize,
    time_of_day_s: f64,
    penalties: Option<&[(usize, usize)]>,
) -> f64 {
    let edge = network.edges(from)[edge_index];
    let mut cost =
        edge.base_time_s * traffic.multiplier(from, edge_index, edge.highway, time_of_day_s);
    if let Some(penalized) = penalties {
        if penalized.contains(&(from, edge_index)) {
            cost *= 4.0;
        }
    }
    cost
}

/// A* shortest path under the current traffic (Dijkstra when
/// `use_heuristic` is false). Departure time is held constant during the
/// search — adequate for the sub-hour urban routes we serve.
///
/// Returns `None` if the destination is unreachable.
pub fn shortest_path(
    network: &RoadNetwork,
    traffic: &TrafficModel,
    origin: usize,
    destination: usize,
    time_of_day_s: f64,
    use_heuristic: bool,
) -> Option<Route> {
    shortest_path_penalized(
        network,
        traffic,
        origin,
        destination,
        time_of_day_s,
        use_heuristic,
        None,
    )
}

fn shortest_path_penalized(
    network: &RoadNetwork,
    traffic: &TrafficModel,
    origin: usize,
    destination: usize,
    time_of_day_s: f64,
    use_heuristic: bool,
    penalties: Option<&[(usize, usize)]>,
) -> Option<Route> {
    let n = network.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[origin] = 0.0;
    heap.push(QueueEntry {
        node: origin,
        cost: 0.0,
        estimate: 0.0,
    });
    let mut expanded = 0;
    while let Some(entry) = heap.pop() {
        if settled[entry.node] {
            continue;
        }
        settled[entry.node] = true;
        expanded += 1;
        if entry.node == destination {
            let mut nodes = vec![destination];
            let mut cursor = destination;
            while cursor != origin {
                cursor = prev[cursor];
                nodes.push(cursor);
            }
            nodes.reverse();
            return Some(Route {
                nodes,
                travel_time_s: entry.cost,
                expanded,
            });
        }
        for (edge_index, edge) in network.edges(entry.node).iter().enumerate() {
            let cost = entry.cost
                + edge_cost(
                    network,
                    traffic,
                    entry.node,
                    edge_index,
                    time_of_day_s,
                    penalties,
                );
            if cost < dist[edge.to] {
                dist[edge.to] = cost;
                prev[edge.to] = entry.node;
                let h = if use_heuristic {
                    network.heuristic_s(edge.to, destination)
                } else {
                    0.0
                };
                heap.push(QueueEntry {
                    node: edge.to,
                    cost,
                    estimate: cost + h,
                });
            }
        }
    }
    None
}

/// Computes up to `k` alternative routes by iterative edge penalization:
/// after each route is found, its edges are penalized and the search
/// repeats, yielding progressively different paths. Returns the routes in
/// discovery order (first = fastest). Search effort — and therefore
/// request latency — grows linearly with `k`: this is the navigation
/// server's quality knob.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn alternative_routes(
    network: &RoadNetwork,
    traffic: &TrafficModel,
    origin: usize,
    destination: usize,
    time_of_day_s: f64,
    k: usize,
) -> Vec<Route> {
    assert!(k > 0, "need at least one route");
    let mut routes: Vec<Route> = Vec::new();
    let mut penalties: Vec<(usize, usize)> = Vec::new();
    for _ in 0..k {
        let found = shortest_path_penalized(
            network,
            traffic,
            origin,
            destination,
            time_of_day_s,
            true,
            Some(&penalties),
        );
        let Some(route) = found else { break };
        // penalize this route's edges for the next iteration and
        // accumulate its true (unpenalized) cost in the same pass; a
        // returned route only traverses existing edges, so a missing
        // lookup simply contributes nothing rather than panicking
        let mut true_cost = 0.0;
        for pair in route.nodes.windows(2) {
            if let Some(edge_index) = network.edges(pair[0]).iter().position(|e| e.to == pair[1]) {
                penalties.push((pair[0], edge_index));
                true_cost += edge_cost(network, traffic, pair[0], edge_index, time_of_day_s, None);
            }
        }
        let mut route = route;
        route.travel_time_s = true_cost;
        if routes.iter().all(|r: &Route| r.nodes != route.nodes) {
            routes.push(route);
        }
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (RoadNetwork, TrafficModel) {
        let mut rng = StdRng::seed_from_u64(10);
        (
            RoadNetwork::city_grid(16, &mut rng),
            TrafficModel::weekday(),
        )
    }

    #[test]
    fn dijkstra_and_astar_agree_on_cost() {
        let (network, traffic) = setup();
        let (a, b) = (0, network.len() - 1);
        let dij = shortest_path(&network, &traffic, a, b, 3600.0, false).unwrap();
        let astar = shortest_path(&network, &traffic, a, b, 3600.0, true).unwrap();
        assert!(
            (dij.travel_time_s - astar.travel_time_s).abs() < 1e-6,
            "dijkstra {} vs a* {}",
            dij.travel_time_s,
            astar.travel_time_s
        );
        // a* expands fewer nodes
        assert!(astar.expanded <= dij.expanded);
    }

    #[test]
    fn routes_are_connected_paths() {
        let (network, traffic) = setup();
        let route = shortest_path(&network, &traffic, 5, 200, 0.0, true).unwrap();
        assert_eq!(*route.nodes.first().unwrap(), 5);
        assert_eq!(*route.nodes.last().unwrap(), 200);
        for pair in route.nodes.windows(2) {
            assert!(
                network.edges(pair[0]).iter().any(|e| e.to == pair[1]),
                "missing edge {} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn rush_hour_routes_are_slower() {
        let (network, traffic) = setup();
        let (a, b) = (0, network.len() - 1);
        let night = shortest_path(&network, &traffic, a, b, 3.0 * 3600.0, true).unwrap();
        let rush = shortest_path(&network, &traffic, a, b, 8.0 * 3600.0, true).unwrap();
        assert!(rush.travel_time_s > night.travel_time_s * 1.3);
    }

    #[test]
    fn alternatives_are_distinct_and_ranked() {
        let (network, traffic) = setup();
        let routes = alternative_routes(&network, &traffic, 3, 250, 3600.0, 4);
        assert!(routes.len() >= 2, "got {} alternatives", routes.len());
        for (i, a) in routes.iter().enumerate() {
            for b in &routes[i + 1..] {
                assert_ne!(a.nodes, b.nodes, "duplicate alternative");
            }
        }
        // first route is the fastest
        for other in &routes[1..] {
            assert!(routes[0].travel_time_s <= other.travel_time_s + 1e-6);
        }
    }

    #[test]
    fn more_alternatives_cost_more_effort() {
        let (network, traffic) = setup();
        let effort = |k: usize| -> usize {
            alternative_routes(&network, &traffic, 0, network.len() - 1, 3600.0, k)
                .iter()
                .map(|r| r.expanded)
                .sum()
        };
        assert!(effort(6) > effort(1) * 3);
    }

    #[test]
    fn same_node_route_is_trivial() {
        let (network, traffic) = setup();
        let route = shortest_path(&network, &traffic, 7, 7, 0.0, true).unwrap();
        assert_eq!(route.nodes, vec![7]);
        assert_eq!(route.travel_time_s, 0.0);
    }
}
