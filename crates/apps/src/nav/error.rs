//! Typed errors for the request-serving path.
//!
//! The navigation server originally treated every degenerate input as a
//! programmer error and panicked. A multi-tenant serving tier cannot
//! afford that: one malformed request must not take down the process.
//! The `try_*` methods on [`NavigationServer`](super::NavigationServer)
//! surface these conditions as values instead.

use std::fmt;

/// A request-serving failure.
#[derive(Debug, Clone, PartialEq)]
pub enum NavError {
    /// The road network has no nodes to route between.
    EmptyNetwork,
    /// No route exists between the drawn origin/destination pair.
    NoRoute {
        /// Origin node drawn for the request.
        origin: usize,
        /// Destination node drawn for the request.
        destination: usize,
    },
    /// The failure probability handed to the resilient path is outside
    /// `[0, 1]`.
    InvalidFailureProbability(f64),
    /// The retry policy is malformed (the message names the field).
    InvalidPolicy(&'static str),
    /// The shared autotuning service (the serving tier this app rides
    /// on) failed the request; `retryable` separates transient faults
    /// (worker crash, deadline, open breaker) from terminal ones
    /// (unknown tenant, infeasible SLA).
    Upstream {
        /// Whether the caller may retry — transient serving-tier
        /// faults clear on their own; terminal ones never do.
        retryable: bool,
        /// Human-readable cause from the serving tier.
        reason: String,
    },
}

impl NavError {
    /// Is retrying this request worthwhile? Routing failures and
    /// malformed inputs are terminal; transient upstream faults are
    /// not. [`NavigationServer::try_serve_resilient`](super::NavigationServer::try_serve_resilient)
    /// consults this to decide between backoff-and-retry and giving up.
    pub fn is_retryable(&self) -> bool {
        match self {
            NavError::EmptyNetwork
            | NavError::NoRoute { .. }
            | NavError::InvalidFailureProbability(_)
            | NavError::InvalidPolicy(_) => false,
            NavError::Upstream { retryable, .. } => *retryable,
        }
    }
}

impl fmt::Display for NavError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NavError::EmptyNetwork => write!(f, "road network has no nodes"),
            NavError::NoRoute {
                origin,
                destination,
            } => write!(f, "no route from node {origin} to node {destination}"),
            NavError::InvalidFailureProbability(p) => {
                write!(f, "failure probability must be in [0, 1], got {p}")
            }
            NavError::InvalidPolicy(reason) => write!(f, "invalid retry policy: {reason}"),
            NavError::Upstream { retryable, reason } => {
                let class = if *retryable { "transient" } else { "terminal" };
                write!(f, "upstream serving tier ({class}): {reason}")
            }
        }
    }
}

impl std::error::Error for NavError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(NavError::EmptyNetwork.to_string().contains("no nodes"));
        assert!(NavError::NoRoute {
            origin: 3,
            destination: 9
        }
        .to_string()
        .contains("3 to node 9"));
        assert!(NavError::InvalidFailureProbability(1.5)
            .to_string()
            .contains("probability"));
        assert!(NavError::InvalidPolicy("need at least one attempt")
            .to_string()
            .contains("attempt"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(NavError::EmptyNetwork);
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn retryable_classifier_separates_transient_from_terminal() {
        assert!(!NavError::EmptyNetwork.is_retryable());
        assert!(!NavError::NoRoute {
            origin: 0,
            destination: 1
        }
        .is_retryable());
        assert!(!NavError::InvalidPolicy("x").is_retryable());
        assert!(NavError::Upstream {
            retryable: true,
            reason: "worker 2 crashed".into()
        }
        .is_retryable());
        assert!(!NavError::Upstream {
            retryable: false,
            reason: "tenant 9 unknown".into()
        }
        .is_retryable());
        assert!(NavError::Upstream {
            retryable: true,
            reason: "x".into()
        }
        .to_string()
        .contains("transient"));
    }
}
