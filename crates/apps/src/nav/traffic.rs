//! Time-dependent congestion.
//!
//! Edge travel times are the free-flow base scaled by a congestion
//! multiplier that follows the daily rush-hour profile, hits city streets
//! harder than highways, and includes randomly scattered incidents —
//! the "contextual information" (§III) the self-adaptive navigation
//! server reacts to.

use antarex_sim::workload::rush_hour_profile;
use rand::Rng;

/// An incident slowing one edge for a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Incident {
    /// Edge owner node.
    pub from: usize,
    /// Edge index within the node's adjacency.
    pub edge_index: usize,
    /// Start time, seconds of day.
    pub start_s: f64,
    /// End time, seconds of day.
    pub end_s: f64,
    /// Extra multiplier while active (e.g. 3.0).
    pub severity: f64,
}

/// The traffic state generator.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    /// Peak rush-hour multiplier on city streets.
    pub street_peak: f64,
    /// Peak rush-hour multiplier on highways.
    pub highway_peak: f64,
    incidents: Vec<Incident>,
}

impl TrafficModel {
    /// A typical weekday: streets up to 2.6× at rush hour, highways up to
    /// 1.8×, no incidents.
    pub fn weekday() -> Self {
        TrafficModel {
            street_peak: 2.6,
            highway_peak: 1.8,
            incidents: Vec::new(),
        }
    }

    /// Adds `count` random incidents over the day across `nodes` nodes
    /// with up to `max_edges` adjacency entries each.
    pub fn with_incidents(mut self, count: usize, nodes: usize, rng: &mut impl Rng) -> Self {
        for _ in 0..count {
            let start = rng.gen_range(0.0..20.0 * 3600.0);
            self.incidents.push(Incident {
                from: rng.gen_range(0..nodes),
                edge_index: rng.gen_range(0..4),
                start_s: start,
                end_s: start + rng.gen_range(600.0..7200.0),
                severity: rng.gen_range(2.0..5.0),
            });
        }
        self
    }

    /// The incidents.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Congestion multiplier for an edge at a time of day.
    pub fn multiplier(
        &self,
        from: usize,
        edge_index: usize,
        highway: bool,
        time_of_day_s: f64,
    ) -> f64 {
        let peak = if highway {
            self.highway_peak
        } else {
            self.street_peak
        };
        let mut m = rush_hour_profile(time_of_day_s, peak);
        for incident in &self.incidents {
            if incident.from == from
                && incident.edge_index == edge_index
                && (incident.start_s..incident.end_s).contains(&time_of_day_s)
            {
                m *= incident.severity;
            }
        }
        m
    }
}

impl Default for TrafficModel {
    fn default() -> Self {
        Self::weekday()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rush_hour_hits_streets_harder() {
        let traffic = TrafficModel::weekday();
        let rush = 8.0 * 3600.0;
        let street = traffic.multiplier(0, 0, false, rush);
        let highway = traffic.multiplier(0, 0, true, rush);
        assert!(street > highway);
        assert!(street > 2.0);
        // night is quiet
        assert!(traffic.multiplier(0, 0, false, 3.0 * 3600.0) < 1.3);
    }

    #[test]
    fn incidents_multiply_in_their_window() {
        let traffic = TrafficModel {
            street_peak: 1.0,
            highway_peak: 1.0,
            incidents: vec![Incident {
                from: 5,
                edge_index: 1,
                start_s: 100.0,
                end_s: 200.0,
                severity: 3.0,
            }],
        };
        assert_eq!(traffic.multiplier(5, 1, false, 150.0), 3.0);
        assert_eq!(traffic.multiplier(5, 1, false, 250.0), 1.0);
        assert_eq!(
            traffic.multiplier(5, 0, false, 150.0),
            1.0,
            "other edge clear"
        );
    }

    #[test]
    fn incident_generation() {
        let mut rng = StdRng::seed_from_u64(9);
        let traffic = TrafficModel::weekday().with_incidents(20, 100, &mut rng);
        assert_eq!(traffic.incidents().len(), 20);
        assert!(traffic.incidents().iter().all(|i| i.end_s > i.start_s));
    }
}
