//! Use Case 1: computer-accelerated drug discovery.
//!
//! "Computational discovery of new drugs is a compute-intensive task ...
//! Typical problems include the prediction of properties of protein-ligand
//! complexes (such as docking and affinity) ... massively parallel, but
//! demonstrate unpredictable imbalances in the computational time" (§VII-a).
//!
//! The pipeline mirrors LiGen's geometric docking stage: each ligand is
//! rigidly rotated into a number of candidate *poses* and scored against
//! the pocket; the best pose wins. Per-ligand cost scales with
//! `atoms × pocket_spheres × poses` — and since library molecules vary
//! heavily in size, so does the runtime.

pub mod molecule;
pub mod parallel;
pub mod pipeline;
pub mod scoring;

pub use molecule::{generate_library, generate_pocket, Ligand, Pocket};
pub use parallel::run_parallel;
pub use pipeline::{DockingCampaign, DockingResult};
pub use scoring::{dock_ligand, DockingScore};
