//! Synthetic molecules: ligands and a binding pocket.

use antarex_sim::workload::lognormal;
use rand::Rng;

/// One atom: position plus van-der-Waals radius and partial charge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Position in Å.
    pub pos: [f64; 3],
    /// Van-der-Waals radius in Å.
    pub radius: f64,
    /// Partial charge (electron units).
    pub charge: f64,
}

/// A small-molecule ligand.
#[derive(Debug, Clone, PartialEq)]
pub struct Ligand {
    /// Library identifier.
    pub id: u64,
    /// Atoms around the centroid.
    pub atoms: Vec<Atom>,
}

impl Ligand {
    /// Number of heavy atoms.
    pub fn size(&self) -> usize {
        self.atoms.len()
    }

    /// Geometric centroid.
    pub fn centroid(&self) -> [f64; 3] {
        let n = self.atoms.len().max(1) as f64;
        let mut c = [0.0; 3];
        for atom in &self.atoms {
            for (axis, coord) in c.iter_mut().enumerate() {
                *coord += atom.pos[axis] / n;
            }
        }
        c
    }
}

/// A rigid binding pocket: negative-space probe spheres plus their
/// chemical preference.
#[derive(Debug, Clone, PartialEq)]
pub struct Pocket {
    /// Probe spheres the ligand should fill.
    pub spheres: Vec<Atom>,
}

impl Pocket {
    /// Number of probe spheres.
    pub fn size(&self) -> usize {
        self.spheres.len()
    }
}

/// Generates a random ligand with the given atom count: a self-avoiding
/// blob of atoms within a ~1 Å bond-length scale.
pub fn generate_ligand(id: u64, atoms: usize, rng: &mut impl Rng) -> Ligand {
    let mut list = Vec::with_capacity(atoms);
    let mut pos = [0.0f64; 3];
    for _ in 0..atoms {
        for p in &mut pos {
            *p += rng.gen_range(-0.9..0.9);
        }
        list.push(Atom {
            pos,
            radius: rng.gen_range(1.2..1.9),
            charge: rng.gen_range(-0.5..0.5),
        });
    }
    Ligand { id, atoms: list }
}

/// Generates a screening library with lognormal molecule sizes
/// (median `median_atoms`, log-σ 0.5: a realistic 8–120 atom spread).
pub fn generate_library(count: usize, median_atoms: usize, rng: &mut impl Rng) -> Vec<Ligand> {
    (0..count)
        .map(|i| {
            let atoms = ((median_atoms as f64) * lognormal(rng, 0.0, 0.5))
                .round()
                .clamp(4.0, 250.0) as usize;
            generate_ligand(i as u64, atoms, rng)
        })
        .collect()
}

/// Generates a pocket of `spheres` probe points in a rough ellipsoid.
pub fn generate_pocket(spheres: usize, rng: &mut impl Rng) -> Pocket {
    let spheres = (0..spheres)
        .map(|_| Atom {
            pos: [
                rng.gen_range(-6.0..6.0),
                rng.gen_range(-4.0..4.0),
                rng.gen_range(-4.0..4.0),
            ],
            radius: rng.gen_range(1.4..2.2),
            charge: rng.gen_range(-0.4..0.4),
        })
        .collect();
    Pocket { spheres }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ligand_generation_is_connected_ish() {
        let mut rng = StdRng::seed_from_u64(1);
        let ligand = generate_ligand(0, 30, &mut rng);
        assert_eq!(ligand.size(), 30);
        // consecutive atoms are within bonding-ish distance
        for pair in ligand.atoms.windows(2) {
            let d: f64 = (0..3)
                .map(|k| (pair[0].pos[k] - pair[1].pos[k]).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(d < 2.0, "chain break: {d}");
        }
    }

    #[test]
    fn library_sizes_are_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let library = generate_library(500, 24, &mut rng);
        let mut sizes: Vec<usize> = library.iter().map(Ligand::size).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        assert!((18..=32).contains(&median), "median {median}");
        let max = *sizes.last().unwrap();
        assert!(max > median * 2, "max {max} vs median {median}");
        // ids are unique and sequential
        assert_eq!(library[7].id, 7);
    }

    #[test]
    fn centroid_of_symmetric_pair() {
        let ligand = Ligand {
            id: 0,
            atoms: vec![
                Atom {
                    pos: [1.0, 0.0, 0.0],
                    radius: 1.5,
                    charge: 0.0,
                },
                Atom {
                    pos: [-1.0, 0.0, 0.0],
                    radius: 1.5,
                    charge: 0.0,
                },
            ],
        };
        assert_eq!(ligand.centroid(), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn pocket_generation() {
        let mut rng = StdRng::seed_from_u64(3);
        let pocket = generate_pocket(40, &mut rng);
        assert_eq!(pocket.size(), 40);
        assert!(pocket.spheres.iter().all(|s| s.radius > 0.0));
    }
}
