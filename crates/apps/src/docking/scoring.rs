//! Geometric docking: pose sampling and scoring.

use super::molecule::{Atom, Ligand, Pocket};
use rand::Rng;

/// Result of docking one ligand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DockingScore {
    /// Ligand identifier.
    pub ligand_id: u64,
    /// Best (lowest) interaction score over the sampled poses.
    pub best_score: f64,
    /// Index of the winning pose.
    pub best_pose: usize,
    /// Atom–sphere interactions evaluated (the work performed).
    pub interactions: u64,
}

/// Rotates a point by ZYX Euler angles.
fn rotate(p: [f64; 3], angles: [f64; 3]) -> [f64; 3] {
    let (sa, ca) = angles[0].sin_cos();
    let (sb, cb) = angles[1].sin_cos();
    let (sc, cc) = angles[2].sin_cos();
    // Rz(a)
    let p = [ca * p[0] - sa * p[1], sa * p[0] + ca * p[1], p[2]];
    // Ry(b)
    let p = [cb * p[0] + sb * p[2], p[1], -sb * p[0] + cb * p[2]];
    // Rx(c)
    [p[0], cc * p[1] - sc * p[2], sc * p[1] + cc * p[2]]
}

/// Pairwise interaction between a ligand atom and a pocket probe: a
/// soft Lennard-Jones well (favourable near contact distance) plus an
/// electrostatic term; clashes are strongly penalized.
fn interaction(a: &Atom, b: &Atom) -> f64 {
    let d2: f64 = (0..3).map(|k| (a.pos[k] - b.pos[k]).powi(2)).sum();
    let d = d2.sqrt().max(0.1);
    let sigma = a.radius + b.radius;
    let r = sigma / d;
    let lj = (r.powi(12) - 2.0 * r.powi(6)).min(50.0);
    let coulomb = 4.0 * a.charge * b.charge / d;
    lj + coulomb
}

/// Docks one ligand: samples `poses` rigid orientations/translations and
/// returns the best-scoring one. Work grows as
/// `atoms × pocket_spheres × poses` — the source of the use case's
/// imbalance, and `poses` is its autotuning knob.
///
/// # Panics
///
/// Panics if `poses` is zero.
pub fn dock_ligand(
    ligand: &Ligand,
    pocket: &Pocket,
    poses: usize,
    rng: &mut impl Rng,
) -> DockingScore {
    assert!(poses > 0, "need at least one pose");
    let centroid = ligand.centroid();
    let mut best = (f64::INFINITY, 0);
    let mut interactions = 0u64;
    for pose in 0..poses {
        let angles = [
            rng.gen_range(0.0..std::f64::consts::TAU),
            rng.gen_range(0.0..std::f64::consts::TAU),
            rng.gen_range(0.0..std::f64::consts::TAU),
        ];
        let shift = [
            rng.gen_range(-2.0..2.0),
            rng.gen_range(-2.0..2.0),
            rng.gen_range(-2.0..2.0),
        ];
        let mut score = 0.0;
        for atom in &ligand.atoms {
            let local = [
                atom.pos[0] - centroid[0],
                atom.pos[1] - centroid[1],
                atom.pos[2] - centroid[2],
            ];
            let rotated = rotate(local, angles);
            let placed = Atom {
                pos: [
                    rotated[0] + shift[0],
                    rotated[1] + shift[1],
                    rotated[2] + shift[2],
                ],
                radius: atom.radius,
                charge: atom.charge,
            };
            for sphere in &pocket.spheres {
                score += interaction(&placed, sphere);
                interactions += 1;
            }
        }
        if score < best.0 {
            best = (score, pose);
        }
    }
    DockingScore {
        ligand_id: ligand.id,
        best_score: best.0,
        best_pose: best.1,
        interactions,
    }
}

/// Estimated floating-point work of docking a ligand (used to map the
/// computation onto the platform simulator). Each scored atom–sphere
/// interaction sits inside a local pose-minimization loop in the real
/// pipeline (~50 iterations of ~40 flops), so the platform-level estimate
/// is ~2000 flops per interaction — calibrated to LiGen-like
/// seconds-per-ligand runtimes on a 2015 Xeon core.
pub fn estimated_flops(ligand: &Ligand, pocket: &Pocket, poses: usize) -> f64 {
    2000.0 * ligand.size() as f64 * pocket.size() as f64 * poses as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docking::molecule::{generate_library, generate_pocket};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn work_scales_with_poses_and_size() {
        let mut rng = StdRng::seed_from_u64(5);
        let pocket = generate_pocket(30, &mut rng);
        let library = generate_library(2, 20, &mut rng);
        let s8 = dock_ligand(&library[0], &pocket, 8, &mut StdRng::seed_from_u64(1));
        let s16 = dock_ligand(&library[0], &pocket, 16, &mut StdRng::seed_from_u64(1));
        assert_eq!(s16.interactions, 2 * s8.interactions);
        assert_eq!(
            estimated_flops(&library[0], &pocket, 16),
            2.0 * estimated_flops(&library[0], &pocket, 8)
        );
    }

    #[test]
    fn more_poses_never_worsen_the_best_score() {
        let mut rng = StdRng::seed_from_u64(6);
        let pocket = generate_pocket(25, &mut rng);
        let library = generate_library(5, 20, &mut rng);
        for ligand in &library {
            // same RNG stream prefix: the 32-pose run samples a superset
            let s8 = dock_ligand(ligand, &pocket, 8, &mut StdRng::seed_from_u64(42));
            let s32 = dock_ligand(ligand, &pocket, 32, &mut StdRng::seed_from_u64(42));
            assert!(
                s32.best_score <= s8.best_score + 1e-9,
                "ligand {}: 32 poses {} vs 8 poses {}",
                ligand.id,
                s32.best_score,
                s8.best_score
            );
        }
    }

    #[test]
    fn rotation_preserves_length() {
        let p = [1.0, 2.0, -0.5];
        let q = rotate(p, [0.3, -1.1, 2.4]);
        let lp: f64 = p.iter().map(|x| x * x).sum();
        let lq: f64 = q.iter().map(|x| x * x).sum();
        assert!((lp - lq).abs() < 1e-9);
    }

    #[test]
    fn clash_is_penalized() {
        let a = Atom {
            pos: [0.0; 3],
            radius: 1.5,
            charge: 0.0,
        };
        let overlapping = Atom {
            pos: [0.3, 0.0, 0.0],
            radius: 1.5,
            charge: 0.0,
        };
        let touching = Atom {
            pos: [3.0, 0.0, 0.0],
            radius: 1.5,
            charge: 0.0,
        };
        assert!(interaction(&a, &overlapping) > 0.0, "clash must cost");
        assert!(interaction(&a, &touching) < 0.0, "contact must pay");
    }

    #[test]
    #[should_panic(expected = "at least one pose")]
    fn zero_poses_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let pocket = generate_pocket(5, &mut rng);
        let ligand = crate::docking::molecule::generate_ligand(0, 5, &mut rng);
        dock_ligand(&ligand, &pocket, 0, &mut rng);
    }
}
