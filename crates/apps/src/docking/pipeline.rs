//! The docking campaign: library → scores, plus the platform mapping.
//!
//! A campaign both *computes* real docking scores (so quality is
//! measurable) and *describes* its computational demand as
//! [`antarex_sim::job::Task`]s (so the platform simulator and the
//! RTRM dispatch strategies can execute it at scale). The `poses` knob
//! trades screening quality for throughput — the application-level knob
//! the ANTAREX autotuner manages.

use super::molecule::{Ligand, Pocket};
use super::scoring::{dock_ligand, estimated_flops, DockingScore};
use antarex_sim::job::{Task, WorkUnit};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A configured screening campaign.
#[derive(Debug, Clone)]
pub struct DockingCampaign {
    library: Vec<Ligand>,
    pocket: Pocket,
    poses: usize,
    seed: u64,
}

/// Outcome of running a campaign.
#[derive(Debug, Clone)]
pub struct DockingResult {
    /// Per-ligand scores.
    pub scores: Vec<DockingScore>,
    /// Total atom–sphere interactions evaluated.
    pub total_interactions: u64,
}

impl DockingResult {
    /// Identifiers of the `n` best-scoring ligands (the screening hits).
    pub fn top_hits(&self, n: usize) -> Vec<u64> {
        let mut ranked: Vec<&DockingScore> = self.scores.iter().collect();
        ranked.sort_by(|a, b| a.best_score.total_cmp(&b.best_score));
        ranked.iter().take(n).map(|s| s.ligand_id).collect()
    }

    /// Fraction of `reference` hits recovered in this result's top-`n` —
    /// the screening-quality metric degraded by reducing `poses`.
    pub fn hit_overlap(&self, reference: &DockingResult, n: usize) -> f64 {
        let mine = self.top_hits(n);
        let theirs = reference.top_hits(n);
        if theirs.is_empty() {
            return 1.0;
        }
        let hits = theirs.iter().filter(|id| mine.contains(id)).count();
        hits as f64 / theirs.len() as f64
    }
}

impl DockingCampaign {
    /// Creates a campaign over a library and pocket with the given pose
    /// count (the quality knob).
    ///
    /// # Panics
    ///
    /// Panics if `poses` is zero.
    pub fn new(library: Vec<Ligand>, pocket: Pocket, poses: usize, seed: u64) -> Self {
        assert!(poses > 0, "need at least one pose");
        DockingCampaign {
            library,
            pocket,
            poses,
            seed,
        }
    }

    /// Library size.
    pub fn len(&self) -> usize {
        self.library.len()
    }

    /// Returns `true` if the library is empty.
    pub fn is_empty(&self) -> bool {
        self.library.is_empty()
    }

    /// The pose-count knob.
    pub fn poses(&self) -> usize {
        self.poses
    }

    /// Changes the pose-count knob.
    ///
    /// # Panics
    ///
    /// Panics if `poses` is zero.
    pub fn set_poses(&mut self, poses: usize) {
        assert!(poses > 0, "need at least one pose");
        self.poses = poses;
    }

    /// Actually computes every docking score (deterministic per seed:
    /// each ligand gets an independent RNG stream).
    pub fn run(&self) -> DockingResult {
        let mut scores = Vec::with_capacity(self.library.len());
        let mut total = 0;
        for ligand in &self.library {
            let mut rng = StdRng::seed_from_u64(self.seed ^ (ligand.id.wrapping_mul(0x9e37_79b9)));
            let score = dock_ligand(ligand, &self.pocket, self.poses, &mut rng);
            total += score.interactions;
            scores.push(score);
        }
        DockingResult {
            scores,
            total_interactions: total,
        }
    }

    /// Describes the campaign as platform tasks (one per ligand), in
    /// library order — this is what the dispatch experiments execute on
    /// the simulated cluster. Docking is compute-heavy: intensity ≈ 12
    /// flops/byte.
    pub fn as_tasks(&self) -> Vec<Task> {
        self.library
            .iter()
            .map(|ligand| Task {
                id: ligand.id,
                work: WorkUnit::with_intensity(
                    estimated_flops(ligand, &self.pocket, self.poses),
                    12.0,
                ),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docking::molecule::{generate_library, generate_pocket};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn campaign(poses: usize) -> DockingCampaign {
        let mut rng = StdRng::seed_from_u64(7);
        let pocket = generate_pocket(25, &mut rng);
        let library = generate_library(60, 20, &mut rng);
        DockingCampaign::new(library, pocket, poses, 99)
    }

    #[test]
    fn run_is_deterministic() {
        let c = campaign(8);
        let a = c.run();
        let b = c.run();
        assert_eq!(a.scores.len(), 60);
        assert_eq!(a.scores[5].best_score, b.scores[5].best_score);
    }

    #[test]
    fn tasks_mirror_library_imbalance() {
        let c = campaign(8);
        let tasks = c.as_tasks();
        assert_eq!(tasks.len(), 60);
        let min = tasks
            .iter()
            .map(|t| t.work.flops)
            .fold(f64::INFINITY, f64::min);
        let max = tasks.iter().map(|t| t.work.flops).fold(0.0, f64::max);
        assert!(max / min > 3.0, "imbalance {}x", max / min);
    }

    #[test]
    fn pose_knob_trades_quality_for_work() {
        let full = campaign(64).run();
        let cheap = campaign(4).run();
        assert!(cheap.total_interactions < full.total_interactions / 10);
        let overlap = cheap.hit_overlap(&full, 10);
        // fewer poses lose some hits but not everything
        assert!(overlap >= 0.2, "overlap {overlap}");
        // full self-overlap is perfect
        assert_eq!(full.hit_overlap(&full, 10), 1.0);
    }

    #[test]
    fn more_poses_improve_or_match_quality() {
        let full = campaign(64).run();
        let mid = campaign(24).run();
        let low = campaign(4).run();
        let mid_overlap = mid.hit_overlap(&full, 10);
        let low_overlap = low.hit_overlap(&full, 10);
        assert!(
            mid_overlap >= low_overlap - 0.101,
            "mid {mid_overlap} vs low {low_overlap}"
        );
    }

    #[test]
    fn top_hits_are_sorted_by_score() {
        let result = campaign(8).run();
        let hits = result.top_hits(5);
        assert_eq!(hits.len(), 5);
        let score_of = |id: u64| {
            result
                .scores
                .iter()
                .find(|s| s.ligand_id == id)
                .unwrap()
                .best_score
        };
        for pair in hits.windows(2) {
            assert!(score_of(pair[0]) <= score_of(pair[1]));
        }
    }

    #[test]
    #[should_panic(expected = "at least one pose")]
    fn zero_pose_knob_rejected() {
        let mut c = campaign(8);
        c.set_poses(0);
    }
}
