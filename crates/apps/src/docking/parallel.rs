//! Host-parallel docking on the deterministic work-stealing plan.
//!
//! The dispatch experiments (U1) study load balancing on the *simulated*
//! cluster; this module runs the same principle on the host machine.
//! The campaign is first *planned* by
//! [`antarex_sim::sched::steal_schedule`] over each ligand's
//! [`estimated_flops`] — a pure, seeded discrete-event simulation whose
//! stealing decisions depend only on the estimates — and the resulting
//! per-core job lists then execute on real threads. Heavy scaffolds
//! migrate to idle cores in the plan, so threads finish together, yet
//! the plan (and therefore the result) is byte-identical at any thread
//! count: determinism comes from planning, balance from stealing.

use super::molecule::{Ligand, Pocket};
use super::pipeline::DockingResult;
use super::scoring::{dock_ligand, estimated_flops};
use antarex_sim::sched::steal_schedule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Scores `library` against `pocket` on `workers` threads following a
/// deterministic work-stealing plan over per-ligand flops estimates.
/// Results are identical to the sequential
/// [`DockingCampaign::run`](super::pipeline::DockingCampaign::run) with
/// the same seed (per-ligand RNG streams are independent of scheduling).
///
/// # Panics
///
/// Panics if `workers` or `poses` is zero.
pub fn run_parallel(
    library: &[Ligand],
    pocket: &Pocket,
    poses: usize,
    seed: u64,
    workers: usize,
) -> DockingResult {
    assert!(workers > 0, "need at least one worker");
    assert!(poses > 0, "need at least one pose");
    let estimates: Vec<f64> = library
        .iter()
        .map(|ligand| estimated_flops(ligand, pocket, poses))
        .collect();
    // estimated flops ARE the costs here — planning needs relative
    // weight only, and the law is exact for docking
    let plan = steal_schedule(&estimates, &estimates, workers);
    let mut lanes: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for (job, &core) in plan.assignments.iter().enumerate() {
        lanes[core].push(job);
    }

    let results = Mutex::new(Vec::with_capacity(library.len()));
    std::thread::scope(|scope| {
        for lane in &lanes {
            let results = &results;
            scope.spawn(move || {
                let mut scored = Vec::with_capacity(lane.len());
                for &idx in lane {
                    let ligand = &library[idx];
                    let mut rng =
                        StdRng::seed_from_u64(seed ^ (ligand.id.wrapping_mul(0x9e37_79b9)));
                    scored.push(dock_ligand(ligand, pocket, poses, &mut rng));
                }
                results.lock().expect("no poisoned workers").extend(scored);
            });
        }
    });

    let mut scores = results.into_inner().expect("no poisoned workers");
    scores.sort_by_key(|s| s.ligand_id);
    let total_interactions = scores.iter().map(|s| s.interactions).sum();
    DockingResult {
        scores,
        total_interactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docking::molecule::{generate_library, generate_pocket};
    use crate::docking::pipeline::DockingCampaign;

    #[test]
    fn parallel_matches_sequential_exactly() {
        let mut rng = StdRng::seed_from_u64(8);
        let pocket = generate_pocket(20, &mut rng);
        let library = generate_library(60, 20, &mut rng);
        let sequential = DockingCampaign::new(library.clone(), pocket.clone(), 12, 77).run();
        for workers in [1, 2, 4] {
            let parallel = run_parallel(&library, &pocket, 12, 77, workers);
            assert_eq!(parallel.scores.len(), sequential.scores.len());
            assert_eq!(parallel.total_interactions, sequential.total_interactions);
            for (a, b) in parallel.scores.iter().zip(&sequential.scores) {
                assert_eq!(a.ligand_id, b.ligand_id);
                assert_eq!(a.best_score, b.best_score, "ligand {}", a.ligand_id);
                assert_eq!(a.best_pose, b.best_pose);
            }
        }
    }

    #[test]
    fn every_ligand_scored_exactly_once() {
        let mut rng = StdRng::seed_from_u64(9);
        let pocket = generate_pocket(15, &mut rng);
        let library = generate_library(101, 18, &mut rng);
        let result = run_parallel(&library, &pocket, 8, 1, 3);
        let mut ids: Vec<u64> = result.scores.iter().map(|s| s.ligand_id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 101);
    }

    #[test]
    fn the_plan_balances_a_scaffold_sorted_library() {
        let mut rng = StdRng::seed_from_u64(12);
        let pocket = generate_pocket(25, &mut rng);
        let mut library = generate_library(200, 24, &mut rng);
        // adversarial order: whole scaffolds of whales up front, the
        // exact shape that starves a static block partition
        library.sort_by_key(|l| std::cmp::Reverse(l.size()));
        let estimates: Vec<f64> = library
            .iter()
            .map(|l| estimated_flops(l, &pocket, 8))
            .collect();
        let plan = steal_schedule(&estimates, &estimates, 4);
        let mut per_core = [0.0f64; 4];
        for (job, &core) in plan.assignments.iter().enumerate() {
            per_core[core] += estimates[job];
        }
        let heaviest = per_core.iter().fold(0.0f64, |a, &b| a.max(b));
        let lightest = per_core.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(
            heaviest < 1.25 * lightest,
            "stealing plan left cores imbalanced: {per_core:?}"
        );
        assert!(plan.stats.steals > 0, "sorted tail must trigger steals");
    }

    #[test]
    #[should_panic(expected = "worker")]
    fn zero_workers_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let pocket = generate_pocket(5, &mut rng);
        run_parallel(&[], &pocket, 4, 0, 0);
    }
}
