//! Host-parallel docking: real threads, dynamic self-scheduling.
//!
//! The dispatch experiments (U1) study load balancing on the *simulated*
//! cluster; this module demonstrates the same principle on the host
//! machine: the campaign's ligands are scored on worker threads pulling
//! from a shared atomic work counter, so a thread that drew small
//! molecules immediately claims the next task instead of idling —
//! dynamic self-scheduling in the flesh.

use super::molecule::{Ligand, Pocket};
use super::pipeline::DockingResult;
use super::scoring::dock_ligand;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Scores `library` against `pocket` on `workers` threads with dynamic
/// self-scheduling. Results are identical to the sequential
/// [`DockingCampaign::run`](super::pipeline::DockingCampaign::run) with
/// the same seed (per-ligand RNG streams are independent of scheduling).
///
/// # Panics
///
/// Panics if `workers` or `poses` is zero.
pub fn run_parallel(
    library: &[Ligand],
    pocket: &Pocket,
    poses: usize,
    seed: u64,
    workers: usize,
) -> DockingResult {
    assert!(workers > 0, "need at least one worker");
    assert!(poses > 0, "need at least one pose");
    let cursor = AtomicUsize::new(0);
    let results = Mutex::new(Vec::with_capacity(library.len()));
    let total = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(ligand) = library.get(idx) else {
                    break;
                };
                let mut rng = StdRng::seed_from_u64(seed ^ (ligand.id.wrapping_mul(0x9e37_79b9)));
                let score = dock_ligand(ligand, pocket, poses, &mut rng);
                total.fetch_add(score.interactions, Ordering::Relaxed);
                results.lock().expect("no poisoned workers").push(score);
            });
        }
    });

    let mut scores = results.into_inner().expect("no poisoned workers");
    scores.sort_by_key(|s| s.ligand_id);
    DockingResult {
        scores,
        total_interactions: total.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docking::molecule::{generate_library, generate_pocket};
    use crate::docking::pipeline::DockingCampaign;

    #[test]
    fn parallel_matches_sequential_exactly() {
        let mut rng = StdRng::seed_from_u64(8);
        let pocket = generate_pocket(20, &mut rng);
        let library = generate_library(60, 20, &mut rng);
        let sequential = DockingCampaign::new(library.clone(), pocket.clone(), 12, 77).run();
        for workers in [1, 2, 4] {
            let parallel = run_parallel(&library, &pocket, 12, 77, workers);
            assert_eq!(parallel.scores.len(), sequential.scores.len());
            assert_eq!(parallel.total_interactions, sequential.total_interactions);
            for (a, b) in parallel.scores.iter().zip(&sequential.scores) {
                assert_eq!(a.ligand_id, b.ligand_id);
                assert_eq!(a.best_score, b.best_score, "ligand {}", a.ligand_id);
                assert_eq!(a.best_pose, b.best_pose);
            }
        }
    }

    #[test]
    fn every_ligand_scored_exactly_once() {
        let mut rng = StdRng::seed_from_u64(9);
        let pocket = generate_pocket(15, &mut rng);
        let library = generate_library(101, 18, &mut rng);
        let result = run_parallel(&library, &pocket, 8, 1, 3);
        let mut ids: Vec<u64> = result.scores.iter().map(|s| s.ligand_id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 101);
    }

    #[test]
    #[should_panic(expected = "worker")]
    fn zero_workers_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let pocket = generate_pocket(5, &mut rng);
        run_parallel(&[], &pocket, 4, 0, 0);
    }
}
