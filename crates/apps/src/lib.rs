//! # antarex-apps — the two ANTAREX use cases
//!
//! The project "is driven by two use cases taken from highly relevant HPC
//! application scenarios" (Silvano et al., DATE 2016, §VII):
//!
//! * [`docking`] — **Use Case 1: computer-accelerated drug discovery.**
//!   A synthetic LiGen-like pipeline: a generated ligand library is
//!   geometrically docked against a pocket; per-ligand cost varies wildly
//!   (the paper's "unpredictable imbalances"), and the number of sampled
//!   poses is the quality/throughput software knob.
//! * [`nav`] — **Use Case 2: self-adaptive navigation system.** A
//!   synthetic road network with time-dependent congestion serves routing
//!   requests; the number of alternative routes explored is the
//!   quality/latency software knob the server adapts under load to hold
//!   its SLA.
//!
//! Both applications expose their knobs and metrics in the shapes the
//! `antarex-tuner` machinery consumes, and their computational demand in
//! the shapes the `antarex-sim` platform executes.

pub mod docking;
pub mod nav;
