//! Property tests for the log-bucketed histogram and the span ring.
//!
//! The histogram's accuracy contract says: for any quantile `q`, the
//! estimate sits within `√γ − 1` relative error of the **exact**
//! rank-`⌈q·n⌉` sorted-slice quantile, whenever that exact sample is a
//! positive finite value in `[MIN_VALUE, MAX_VALUE)`; below the range
//! the estimate is `0.0`, at/above it `+inf`, and NaN never
//! participates. These tests drive adversarial sample sets — heavy
//! tails, many-decade log-uniform spreads, constants, boundary values,
//! denormals, and NaN/±inf mixtures — against an exact sorted-slice
//! oracle.

use antarex_obs::hist::{relative_error_bound, Histogram, MAX_VALUE, MIN_VALUE};
use antarex_obs::span::{SpanId, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exact rank-`⌈q·n⌉` quantile over the non-NaN samples, using the
/// same rank convention as `Histogram::quantile`.
fn exact_quantile(samples: &[f64], q: f64) -> Option<f64> {
    let mut clean: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
    if clean.is_empty() {
        return None;
    }
    clean.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = clean.len() as u64;
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
    Some(clean[(rank - 1) as usize])
}

/// Checks the accuracy contract for every probe quantile.
fn assert_contract(samples: &[f64], label: &str) {
    let hist = Histogram::new();
    for &v in samples {
        hist.record(v);
    }
    // tiny slack for ln() rounding at bucket boundaries
    let bound = relative_error_bound() * (1.0 + 1e-9) + 1e-12;
    for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
        let exact = exact_quantile(samples, q);
        let estimate = hist.quantile(q);
        match exact {
            None => assert_eq!(estimate, None, "{label}: empty input must yield None"),
            Some(v) if v < MIN_VALUE => {
                assert_eq!(
                    estimate,
                    Some(0.0),
                    "{label}: q={q}, exact {v} underflows but estimate was {estimate:?}"
                );
            }
            Some(v) if v >= MAX_VALUE => {
                assert_eq!(
                    estimate,
                    Some(f64::INFINITY),
                    "{label}: q={q}, exact {v} overflows but estimate was {estimate:?}"
                );
            }
            Some(v) => {
                let e = estimate
                    .unwrap_or_else(|| panic!("{label}: q={q} estimate missing for exact {v}"));
                let rel = (e - v).abs() / v;
                assert!(
                    rel <= bound,
                    "{label}: q={q}, exact {v}, estimate {e}, rel err {rel:.6} > {bound:.6}"
                );
            }
        }
    }
}

#[test]
fn uniform_samples_satisfy_the_bound() {
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1.0)).collect();
        assert_contract(&samples, &format!("uniform/{seed}"));
    }
}

#[test]
fn log_uniform_across_decades_satisfies_the_bound() {
    // spans from deep underflow (1e-12) to overflow (1e16)
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let samples: Vec<f64> = (0..2000)
            .map(|_| 10f64.powf(rng.gen_range(-12.0..16.0)))
            .collect();
        assert_contract(&samples, &format!("log-uniform/{seed}"));
    }
}

#[test]
fn heavy_tail_satisfies_the_bound() {
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let samples: Vec<f64> = (0..2000)
            .map(|_| {
                let u: f64 = rng.gen_range(1e-6..1.0);
                1e-6 * u.powf(-3.0) // pareto-ish: most mass tiny, huge spikes
            })
            .collect();
        assert_contract(&samples, &format!("heavy-tail/{seed}"));
    }
}

#[test]
fn constants_and_tiny_sets_satisfy_the_bound() {
    assert_contract(&[0.125], "single");
    assert_contract(&[1.0; 500], "constant");
    assert_contract(&[1e-4, 1e-4, 3.0], "near-constant");
    assert_contract(&[], "empty");
}

#[test]
fn bucket_boundary_values_satisfy_the_bound() {
    // values engineered to sit exactly on (or within ulps of) bucket
    // edges, where ln() rounding is most dangerous
    let gamma: f64 = 1.05;
    let mut samples = Vec::new();
    for k in 0..700 {
        samples.push(MIN_VALUE * gamma.powi(k));
        samples.push(MIN_VALUE * gamma.powi(k) * (1.0 + 1e-15));
        samples.push(MIN_VALUE * gamma.powi(k) * (1.0 - 1e-15));
    }
    assert_contract(&samples, "bucket-boundaries");
}

#[test]
fn nan_inf_zero_negative_mixture_satisfies_the_contract() {
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let samples: Vec<f64> = (0..3000)
            .map(|_| match rng.gen_range(0..10u64) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                4 => -rng.gen_range::<f64, _>(0.0..10.0),
                5 => 1e-310,                    // denormal → underflow
                6 => rng.gen_range(1e14..1e16), // straddles MAX_VALUE
                _ => rng.gen_range(1e-6..10.0), // ordinary
            })
            .collect();
        assert_contract(&samples, &format!("mixture/{seed}"));

        // NaN accounting: excluded from count, counted separately
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let nan_expected = samples.iter().filter(|v| v.is_nan()).count() as u64;
        let snap = hist.snapshot();
        assert_eq!(snap.nan, nan_expected);
        assert_eq!(snap.count + snap.nan, samples.len() as u64);
    }
}

#[test]
fn snapshot_sum_matches_exact_sum() {
    let mut rng = StdRng::seed_from_u64(400);
    let samples: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..5.0)).collect();
    let hist = Histogram::new();
    for &v in &samples {
        hist.record(v);
    }
    let exact: f64 = samples.iter().sum();
    let got = hist.snapshot().sum;
    assert!(
        (got - exact).abs() <= 1e-9 * exact.abs().max(1.0),
        "sum drifted: {got} vs {exact}"
    );
}

#[test]
fn ring_wraparound_retains_exactly_the_newest_spans() {
    for (capacity, total) in [(1usize, 10u64), (7, 7), (7, 8), (16, 1000), (64, 65)] {
        let tracer = Tracer::new(capacity);
        for i in 0..total {
            tracer.record("probe", Some(i % 3), SpanId::NONE, i as f64, i as f64 + 0.5);
        }
        assert_eq!(tracer.recorded(), total);
        let spans = tracer.spans();
        assert_eq!(spans.len(), capacity.min(total as usize));
        let first_retained = total - spans.len() as u64 + 1;
        for (offset, span) in spans.iter().enumerate() {
            assert_eq!(
                span.id.0,
                first_retained + offset as u64,
                "capacity {capacity}, total {total}: retained window is the newest suffix"
            );
        }
    }
}

#[test]
fn folded_output_survives_wraparound_with_nested_spans() {
    let tracer = Tracer::new(8);
    for batch in 0..50u64 {
        let t0 = batch as f64;
        let root = tracer.record("batch", None, SpanId::NONE, t0, t0 + 1.0);
        let req = tracer.record("request", Some(batch % 4), root, t0, t0 + 0.8);
        tracer.record("select", Some(batch % 4), req, t0, t0 + 0.1);
        tracer.record("eval", Some(batch % 4), req, t0 + 0.1, t0 + 0.7);
    }
    let folds = tracer.folded();
    assert!(!folds.is_empty());
    let total: u64 = folds.iter().map(|(_, w)| w).sum();
    assert!(total > 0, "weights must be positive after wraparound");
    // deterministic across identical replays
    let tracer2 = Tracer::new(8);
    for batch in 0..50u64 {
        let t0 = batch as f64;
        let root = tracer2.record("batch", None, SpanId::NONE, t0, t0 + 1.0);
        let req = tracer2.record("request", Some(batch % 4), root, t0, t0 + 0.8);
        tracer2.record("select", Some(batch % 4), req, t0, t0 + 0.1);
        tracer2.record("eval", Some(batch % 4), req, t0 + 0.1, t0 + 0.7);
    }
    assert_eq!(tracer.folded_text(), tracer2.folded_text());
}
