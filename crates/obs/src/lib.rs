//! # antarex-obs — deterministic observability plane
//!
//! The ANTAREX stack is built around a monitoring loop: observe
//! extra-functional metrics, feed them back into knob selection. This
//! crate turns that lens on the stack itself — one place where cache
//! hits, breaker trips, chaos retries, select/learn spans, power-cap
//! decisions, and per-tenant SLO burn all land, replacing the ad-hoc
//! atomics and stat structs that previously drifted across `serve` and
//! `tuner`.
//!
//! Three pillars:
//!
//! * **Metrics** ([`metrics`]): counters, gauges, and log-bucketed
//!   histograms ([`hist`], p50/p95/p99/p999 with a provable ≤ 2.47%
//!   relative error) in a [`MetricsRegistry`] keyed by interned names.
//!   Handles are shared atomics — the instrumented module and the
//!   exposition read the same cell.
//! * **Spans** ([`span`]): hierarchical regions on **virtual
//!   timestamps** in a fixed-capacity ring buffer, folded into
//!   flamegraph format. Span times record work content, not queue
//!   placement, so traces are byte-identical at any worker count.
//! * **SLO burn** ([`slo`]): per-tenant error-budget burn rates over
//!   [`antarex_monitor::sla`].
//!
//! Two cross-layer pillars sit on top:
//!
//! * **Causal traces** ([`trace`]): a 128-bit [`TraceCtx`] derived
//!   from `(tenant, probe_seed, batch)` — no wall clock — propagates
//!   admission → serve → sched → VM → RTRM, collecting linked events
//!   in a bounded [`TraceStore`] with deterministic head-based
//!   sampling, exported as Chrome `trace_event` JSON or a text
//!   waterfall.
//! * **Energy attribution** ([`energy`]): per-request joules = direct
//!   VM-metered energy + a demand-weighted share of node static and
//!   cooling overhead, booked in integer nanojoules so that
//!   Σ attributed + idle ≡ the facility meter *to the last bit* per
//!   virtual window ([`EnergyLedger::conservation_holds`]).
//!
//! Everything is allocation-light on the hot path (atomic increments
//! and one mutex-guarded slot write) and deterministic on the read
//! path: snapshots, expositions, and folds are sorted by resolved
//! names, never by racy interning order. The determinism contract is
//! split by [`Scope`]: `Invariant` metrics (event counts) are
//! byte-identical across worker counts on the fault-free path;
//! `Timing` metrics (virtual latencies, makespans) are deterministic
//! per worker count. Experiment `o1` in `crates/bench` enforces both.

pub mod energy;
pub mod export;
pub mod hist;
pub mod metrics;
pub mod slo;
pub mod span;
pub mod trace;

pub use energy::{
    largest_remainder_split, nj_to_j, to_nj, EnergyLedger, EnergyModel, WindowSummary,
};
pub use export::{burn_exposition, exposition, json_dump};
pub use hist::{Histogram, Snapshot as HistSnapshot, STANDARD_QUANTILES};
pub use metrics::{Counter, Gauge, MetricKey, MetricSnapshot, MetricValue, MetricsRegistry, Scope};
pub use slo::{BurnRow, SloBank};
pub use span::{SpanId, SpanRecord, Tracer};
pub use trace::{Layer, TraceCtx, TraceEvent, TraceId, TraceStore};

/// A complete observability plane: one registry, one tracer, one SLO
/// bank, one causal trace store, one energy ledger. Modules take cheap
/// handles out of it at wiring time and touch only atomics afterwards.
#[derive(Debug)]
pub struct ObsPlane {
    /// The metric registry.
    pub registry: MetricsRegistry,
    /// The span ring buffer.
    pub tracer: Tracer,
    /// Per-tenant SLO burn tracking.
    pub slo: SloBank,
    /// Cross-layer causal trace events.
    pub trace: TraceStore,
    /// Per-request energy attribution ledger.
    pub energy: EnergyLedger,
}

impl ObsPlane {
    /// A plane retaining `span_capacity` spans and tracking SLOs
    /// against `slo_target` (target good fraction, e.g. `0.999`).
    /// The trace store retains `4 × span_capacity` events at a 1/1
    /// sampling rate; [`ObsPlane::with_trace`] overrides both.
    pub fn new(span_capacity: usize, slo_target: f64) -> Self {
        ObsPlane::with_trace(span_capacity, slo_target, span_capacity * 4, 1)
    }

    /// A plane with explicit trace-store sizing: `trace_capacity`
    /// retained events, head-based sampling at `1/sample_every`.
    pub fn with_trace(
        span_capacity: usize,
        slo_target: f64,
        trace_capacity: usize,
        sample_every: u64,
    ) -> Self {
        let registry = MetricsRegistry::new();
        let tracer = Tracer::new(span_capacity);
        let trace = TraceStore::new(trace_capacity, sample_every);
        // Drop accounting: ring overwrites and trace-store overflow
        // surface in the exposition instead of staying silent. Both
        // are pure functions of record order, hence worker-invariant.
        registry.attach_counter(
            "obs_spans_dropped_total",
            Scope::Invariant,
            tracer.dropped_counter(),
        );
        registry.attach_counter(
            "obs_trace_events_dropped_total",
            Scope::Invariant,
            trace.dropped_counter(),
        );
        ObsPlane {
            registry,
            tracer,
            slo: SloBank::new(slo_target),
            trace,
            energy: EnergyLedger::new(1024),
        }
    }

    /// Full exposition: every metric (both scopes) plus SLO burn rows.
    pub fn exposition(&self) -> String {
        let mut out = export::exposition(&self.registry.snapshot(None));
        out.push_str(&export::burn_exposition(&self.slo.burn_rates()));
        out
    }

    /// Exposition restricted to [`Scope::Invariant`] metrics — the
    /// subset that must be byte-identical across worker counts on the
    /// fault-free path. SLO burn rows are included when they derive
    /// from invariant counts alone; here they are *excluded* because
    /// burn is checked against virtual latencies (timing-scoped).
    pub fn invariant_exposition(&self) -> String {
        export::exposition(&self.registry.snapshot(Some(Scope::Invariant)))
    }
}

impl Default for ObsPlane {
    /// 4096 retained spans, 99.9% SLO target.
    fn default() -> Self {
        ObsPlane::new(4096, 0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_exposition_combines_metrics_and_burn() {
        let plane = ObsPlane::new(16, 0.99);
        plane
            .registry
            .counter("plane-test_requests_total", Scope::Invariant)
            .add(3);
        plane.slo.check_upper(1, "latency", 1.0, 0.0, 2.0);
        let text = plane.exposition();
        assert!(text.contains("plane-test_requests_total 3"));
        assert!(text.contains("slo_burn_rate{tenant=\"1\",objective=\"latency\"}"));
    }

    #[test]
    fn drop_counters_surface_in_exposition() {
        let plane = ObsPlane::with_trace(1, 0.99, 1, 1);
        plane.tracer.record("a", None, SpanId::NONE, 0.0, 1.0);
        plane.tracer.record("b", None, SpanId::NONE, 1.0, 2.0);
        let ctx = TraceCtx::derive(1, 2, 3, 4, 1);
        for _ in 0..2 {
            plane.trace.record(TraceEvent {
                trace: ctx.id,
                tenant: 1,
                layer: Layer::Serve,
                name: "ev",
                start_s: 0.0,
                end_s: 1.0,
                value: 0.0,
                span: SpanId::NONE,
            });
        }
        let text = plane.invariant_exposition();
        assert!(text.contains("obs_spans_dropped_total 1"));
        assert!(text.contains("obs_trace_events_dropped_total 1"));
    }

    #[test]
    fn invariant_exposition_excludes_timing_and_burn() {
        let plane = ObsPlane::new(16, 0.99);
        plane
            .registry
            .counter("plane-test_inv_total", Scope::Invariant)
            .inc();
        plane
            .registry
            .histogram("plane-test_latency_seconds", Scope::Timing)
            .record(0.5);
        plane.slo.check_upper(1, "latency", 1.0, 0.0, 2.0);
        let text = plane.invariant_exposition();
        assert!(text.contains("plane-test_inv_total 1"));
        assert!(!text.contains("plane-test_latency_seconds"));
        assert!(!text.contains("slo_burn_rate"));
    }
}
