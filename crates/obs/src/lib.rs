//! # antarex-obs — deterministic observability plane
//!
//! The ANTAREX stack is built around a monitoring loop: observe
//! extra-functional metrics, feed them back into knob selection. This
//! crate turns that lens on the stack itself — one place where cache
//! hits, breaker trips, chaos retries, select/learn spans, power-cap
//! decisions, and per-tenant SLO burn all land, replacing the ad-hoc
//! atomics and stat structs that previously drifted across `serve` and
//! `tuner`.
//!
//! Three pillars:
//!
//! * **Metrics** ([`metrics`]): counters, gauges, and log-bucketed
//!   histograms ([`hist`], p50/p95/p99/p999 with a provable ≤ 2.47%
//!   relative error) in a [`MetricsRegistry`] keyed by interned names.
//!   Handles are shared atomics — the instrumented module and the
//!   exposition read the same cell.
//! * **Spans** ([`span`]): hierarchical regions on **virtual
//!   timestamps** in a fixed-capacity ring buffer, folded into
//!   flamegraph format. Span times record work content, not queue
//!   placement, so traces are byte-identical at any worker count.
//! * **SLO burn** ([`slo`]): per-tenant error-budget burn rates over
//!   [`antarex_monitor::sla`].
//!
//! Everything is allocation-light on the hot path (atomic increments
//! and one mutex-guarded slot write) and deterministic on the read
//! path: snapshots, expositions, and folds are sorted by resolved
//! names, never by racy interning order. The determinism contract is
//! split by [`Scope`]: `Invariant` metrics (event counts) are
//! byte-identical across worker counts on the fault-free path;
//! `Timing` metrics (virtual latencies, makespans) are deterministic
//! per worker count. Experiment `o1` in `crates/bench` enforces both.

pub mod export;
pub mod hist;
pub mod metrics;
pub mod slo;
pub mod span;

pub use export::{burn_exposition, exposition, json_dump};
pub use hist::{Histogram, Snapshot as HistSnapshot, STANDARD_QUANTILES};
pub use metrics::{Counter, Gauge, MetricKey, MetricSnapshot, MetricValue, MetricsRegistry, Scope};
pub use slo::{BurnRow, SloBank};
pub use span::{SpanId, SpanRecord, Tracer};

/// A complete observability plane: one registry, one tracer, one SLO
/// bank. Modules take cheap handles out of it at wiring time and touch
/// only atomics afterwards.
#[derive(Debug)]
pub struct ObsPlane {
    /// The metric registry.
    pub registry: MetricsRegistry,
    /// The span ring buffer.
    pub tracer: Tracer,
    /// Per-tenant SLO burn tracking.
    pub slo: SloBank,
}

impl ObsPlane {
    /// A plane retaining `span_capacity` spans and tracking SLOs
    /// against `slo_target` (target good fraction, e.g. `0.999`).
    pub fn new(span_capacity: usize, slo_target: f64) -> Self {
        ObsPlane {
            registry: MetricsRegistry::new(),
            tracer: Tracer::new(span_capacity),
            slo: SloBank::new(slo_target),
        }
    }

    /// Full exposition: every metric (both scopes) plus SLO burn rows.
    pub fn exposition(&self) -> String {
        let mut out = export::exposition(&self.registry.snapshot(None));
        out.push_str(&export::burn_exposition(&self.slo.burn_rates()));
        out
    }

    /// Exposition restricted to [`Scope::Invariant`] metrics — the
    /// subset that must be byte-identical across worker counts on the
    /// fault-free path. SLO burn rows are included when they derive
    /// from invariant counts alone; here they are *excluded* because
    /// burn is checked against virtual latencies (timing-scoped).
    pub fn invariant_exposition(&self) -> String {
        export::exposition(&self.registry.snapshot(Some(Scope::Invariant)))
    }
}

impl Default for ObsPlane {
    /// 4096 retained spans, 99.9% SLO target.
    fn default() -> Self {
        ObsPlane::new(4096, 0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_exposition_combines_metrics_and_burn() {
        let plane = ObsPlane::new(16, 0.99);
        plane
            .registry
            .counter("plane-test_requests_total", Scope::Invariant)
            .add(3);
        plane.slo.check_upper(1, "latency", 1.0, 0.0, 2.0);
        let text = plane.exposition();
        assert!(text.contains("plane-test_requests_total 3"));
        assert!(text.contains("slo_burn_rate{tenant=\"1\",objective=\"latency\"}"));
    }

    #[test]
    fn invariant_exposition_excludes_timing_and_burn() {
        let plane = ObsPlane::new(16, 0.99);
        plane
            .registry
            .counter("plane-test_inv_total", Scope::Invariant)
            .inc();
        plane
            .registry
            .histogram("plane-test_latency_seconds", Scope::Timing)
            .record(0.5);
        plane.slo.check_upper(1, "latency", 1.0, 0.0, 2.0);
        let text = plane.invariant_exposition();
        assert!(text.contains("plane-test_inv_total 1"));
        assert!(!text.contains("plane-test_latency_seconds"));
        assert!(!text.contains("slo_burn_rate"));
    }
}
