//! Metric handles and the registry that owns them.
//!
//! Three instrument kinds cover the stack: [`Counter`] (monotone
//! event counts), [`Gauge`] (last-written level, e.g. a power budget),
//! and [`Histogram`] (log-bucketed distributions, re-exported from
//! [`crate::hist`]). Handles are cheap `Arc` clones around atomics, so
//! an instrumented module and the registry read the *same* cells — the
//! single-source-of-truth property the PR 5 migration relies on: the
//! cache's hit counter and the exposition's `serve_cache_hits_total`
//! row are one atomic, not two numbers that can drift.
//!
//! # Determinism scope
//!
//! Every metric is registered under a [`Scope`]:
//!
//! * [`Scope::Invariant`] — pure event counts. On the fault-free path
//!   these are byte-identical at any worker count (the PR 2–4 virtual
//!   time contract); experiment `o1` diffs this subset across
//!   1/2/4/8 workers.
//! * [`Scope::Timing`] — values derived from the virtual schedule
//!   (queued latencies, makespans, busy time). Deterministic run-to-run
//!   for a fixed worker count, but legitimately a function of the
//!   worker count itself.
//!
//! Metric names are interned through [`antarex_tuner::intern`]; all
//! snapshot and exposition ordering is by *resolved name* (then
//! tenant), never by numeric symbol id, because id assignment order can
//! race across threads.

use crate::hist::{Histogram, Snapshot as HistSnapshot};
use antarex_tuner::intern::{intern, SymbolId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Worker-count invariance class of a metric (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// Event counts: byte-identical at any worker count (fault-free).
    Invariant,
    /// Virtual-schedule timing: varies with the worker count.
    Timing,
}

impl Scope {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            Scope::Invariant => "invariant",
            Scope::Timing => "timing",
        }
    }
}

/// A monotone event counter. Clones share the same atomic cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one event.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the count. Only for state restoration (e.g. syncing
    /// breaker trip totals after a crash-recovery restore) — normal
    /// instrumentation must stay monotone via [`inc`](Counter::inc) /
    /// [`add`](Counter::add).
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A last-written level (f64 bits in an atomic). Clones share the cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A fresh gauge at `0.0`.
    pub fn new() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Sets the level.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Identity of a registered metric: interned name plus optional tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricKey {
    /// Interned metric name.
    pub name: SymbolId,
    /// Owning tenant, or `None` for service-wide metrics.
    pub tenant: Option<u64>,
}

impl MetricKey {
    /// Exposition ordering: resolved name first, then tenant —
    /// numeric symbol ids never influence output order.
    fn sort_key(&self) -> (&'static str, Option<u64>) {
        (self.name.name(), self.tenant)
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    key: MetricKey,
    scope: Scope,
    instrument: Instrument,
}

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Full histogram summary.
    Histogram(HistSnapshot),
}

/// One row of a registry snapshot.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Resolved metric name.
    pub name: &'static str,
    /// Owning tenant, if tenant-scoped.
    pub tenant: Option<u64>,
    /// Invariance class.
    pub scope: Scope,
    /// Reading.
    pub value: MetricValue,
}

/// Registry of every metric in the process, keyed by interned name and
/// optional tenant. Registration is idempotent: asking twice for the
/// same `(name, tenant)` returns a handle onto the same cells, so
/// modules can be wired independently without double-counting.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn find_or_insert<T: Clone>(
        &self,
        name: &str,
        tenant: Option<u64>,
        scope: Scope,
        extract: impl Fn(&Instrument) -> Option<T>,
        build: impl FnOnce() -> (T, Instrument),
    ) -> T {
        let key = MetricKey {
            name: intern(name),
            tenant,
        };
        let mut entries = match self.entries.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        for entry in entries.iter() {
            if entry.key == key {
                return extract(&entry.instrument).unwrap_or_else(|| {
                    panic!("metric {name:?} already registered with a different kind")
                });
            }
        }
        let (handle, instrument) = build();
        entries.push(Entry {
            key,
            scope,
            instrument,
        });
        handle
    }

    /// Registers (or retrieves) a service-wide counter.
    pub fn counter(&self, name: &str, scope: Scope) -> Counter {
        self.tenant_counter(name, None, scope)
    }

    /// Registers (or retrieves) a per-tenant counter.
    pub fn tenant_counter(&self, name: &str, tenant: Option<u64>, scope: Scope) -> Counter {
        self.find_or_insert(
            name,
            tenant,
            scope,
            |instrument| match instrument {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (c.clone(), Instrument::Counter(c))
            },
        )
    }

    /// Registers a counter backed by an *existing* handle, adopting its
    /// cell instead of creating a new one. This is how pre-existing
    /// module counters migrate onto the registry without breaking their
    /// accessors. Idempotent on the key; the first attached handle wins.
    pub fn attach_counter(&self, name: &str, scope: Scope, handle: &Counter) -> Counter {
        self.find_or_insert(
            name,
            None,
            scope,
            |instrument| match instrument {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || (handle.clone(), Instrument::Counter(handle.clone())),
        )
    }

    /// Registers (or retrieves) a service-wide gauge.
    pub fn gauge(&self, name: &str, scope: Scope) -> Gauge {
        self.tenant_gauge(name, None, scope)
    }

    /// Registers (or retrieves) a per-tenant gauge.
    pub fn tenant_gauge(&self, name: &str, tenant: Option<u64>, scope: Scope) -> Gauge {
        self.find_or_insert(
            name,
            tenant,
            scope,
            |instrument| match instrument {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (g.clone(), Instrument::Gauge(g))
            },
        )
    }

    /// Registers (or retrieves) a service-wide histogram.
    pub fn histogram(&self, name: &str, scope: Scope) -> Histogram {
        self.tenant_histogram(name, None, scope)
    }

    /// Registers (or retrieves) a per-tenant histogram.
    pub fn tenant_histogram(&self, name: &str, tenant: Option<u64>, scope: Scope) -> Histogram {
        self.find_or_insert(
            name,
            tenant,
            scope,
            |instrument| match instrument {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::new();
                (h.clone(), Instrument::Histogram(h))
            },
        )
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        match self.entries.lock() {
            Ok(guard) => guard.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads every metric (optionally restricted to one [`Scope`]),
    /// sorted by resolved name then tenant — a deterministic order
    /// independent of registration and interning order.
    pub fn snapshot(&self, scope: Option<Scope>) -> Vec<MetricSnapshot> {
        let entries = match self.entries.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut rows: Vec<MetricSnapshot> = entries
            .iter()
            .filter(|entry| scope.is_none_or(|s| entry.scope == s))
            .map(|entry| MetricSnapshot {
                name: entry.key.name.name(),
                tenant: entry.key.tenant,
                scope: entry.scope,
                value: match &entry.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        rows.sort_by(|a, b| (a.name, a.tenant).cmp(&(b.name, b.tenant)));
        rows
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.len())
            .finish()
    }
}

// keep MetricKey::sort_key exercised even though exposition sorts on
// resolved snapshots
impl PartialOrd for MetricKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MetricKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("obs-test-requests", Scope::Invariant);
        let b = reg.counter("obs-test-requests", Scope::Invariant);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles share one cell");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn tenant_keys_are_distinct() {
        let reg = MetricsRegistry::new();
        let t1 = reg.tenant_counter("obs-test-tenant-req", Some(1), Scope::Invariant);
        let t2 = reg.tenant_counter("obs-test-tenant-req", Some(2), Scope::Invariant);
        t1.inc();
        assert_eq!(t1.get(), 1);
        assert_eq!(t2.get(), 0);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn attach_adopts_an_existing_cell() {
        let reg = MetricsRegistry::new();
        let pre_existing = Counter::new();
        pre_existing.add(5);
        let attached = reg.attach_counter("obs-test-attached", Scope::Invariant, &pre_existing);
        pre_existing.inc();
        assert_eq!(attached.get(), 6, "registry reads the adopted cell");
        match &reg.snapshot(None)[0].value {
            MetricValue::Counter(v) => assert_eq!(*v, 6),
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    fn gauge_round_trips() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("obs-test-budget", Scope::Invariant);
        g.set(120.5);
        assert!((g.get() - 120.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_sorts_by_name_then_tenant() {
        let reg = MetricsRegistry::new();
        reg.tenant_counter("obs-test-zzz", Some(2), Scope::Invariant);
        reg.tenant_counter("obs-test-zzz", Some(1), Scope::Invariant);
        reg.counter("obs-test-aaa", Scope::Invariant);
        let names: Vec<(&str, Option<u64>)> = reg
            .snapshot(None)
            .iter()
            .map(|row| (row.name, row.tenant))
            .collect();
        assert_eq!(
            names,
            vec![
                ("obs-test-aaa", None),
                ("obs-test-zzz", Some(1)),
                ("obs-test-zzz", Some(2)),
            ]
        );
    }

    #[test]
    fn scope_filter_selects_the_subset() {
        let reg = MetricsRegistry::new();
        reg.counter("obs-test-inv", Scope::Invariant);
        reg.histogram("obs-test-lat", Scope::Timing);
        assert_eq!(reg.snapshot(Some(Scope::Invariant)).len(), 1);
        assert_eq!(reg.snapshot(Some(Scope::Timing)).len(), 1);
        assert_eq!(reg.snapshot(None).len(), 2);
    }

    #[test]
    fn metric_key_orders_by_name_not_id() {
        // intern in reverse-alphabetical order so id order and name
        // order disagree
        let z = MetricKey {
            name: intern("obs-test-order-z"),
            tenant: None,
        };
        let a = MetricKey {
            name: intern("obs-test-order-a"),
            tenant: None,
        };
        assert!(a < z, "ordering must follow resolved names");
    }
}
