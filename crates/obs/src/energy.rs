//! Per-request energy attribution with an exact conservation invariant.
//!
//! The attribution model follows the cross-layer measurement chain of
//! the ANTAREX design: the VM meters dynamic energy per probe
//! (`ExecStats::flop_energy` rolled up into each evaluation's
//! `energy_j`), the serving layer knows which tenant request spent it,
//! and the cluster power model contributes the node static and cooling
//! overhead that no single request "caused". Per virtual window
//! (one serve batch):
//!
//! ```text
//! facility = Σ direct(evaluations + cache lookups)      # IT dynamic
//!          + static(node_static_w × busy seconds)       # IT static
//!          + cooling(overhead_fraction × IT energy)     # facility
//! request_i = direct_i + overhead_share_i
//! Σ_i request_i + idle_residual ≡ facility              # to the bit
//! ```
//!
//! The invariant is *exact*, not approximate, because all bookkeeping
//! happens in integer nanojoules: each physical quantity is rounded to
//! `u64` nanojoules exactly once at the meter boundary
//! ([`to_nj`]), overhead is split by a largest-remainder division
//! ([`largest_remainder_split`]) that distributes every unit, and
//! totals accumulate in `u128`. Floating-point summation could never
//! promise this — its Σ is order-dependent — so conservation checks
//! would rot into epsilon comparisons.
//!
//! The [`EnergyLedger`] retains bounded per-window summaries plus
//! exact running totals and per-tenant tallies, and is the source the
//! conservation gates in `energy_obs_bench` and the property tests
//! replay against.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Nanojoules per joule.
pub const NJ_PER_J: f64 = 1e9;

/// Rounds a joule quantity to integer nanojoules — the single rounding
/// step at the meter boundary. Negative and non-finite inputs clamp to
/// zero so corrupted readings cannot poison the conservation sums.
#[inline]
pub fn to_nj(joules: f64) -> u64 {
    if joules.is_finite() && joules > 0.0 {
        (joules * NJ_PER_J).round() as u64
    } else {
        0
    }
}

/// Integer nanojoules back to joules (display only — never fed back
/// into the conservation arithmetic).
#[inline]
pub fn nj_to_j(nj: u128) -> f64 {
    nj as f64 / NJ_PER_J
}

/// Node-level energy model parameters supplied by the serving layer.
///
/// `cooling_overhead` is the facility burden per unit of IT energy —
/// the load-independent `overhead_fraction` of the cluster cooling
/// model at the ambient the campaign runs at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Node static (uncore/idle) power charged over busy seconds, W.
    pub node_static_w: f64,
    /// Facility cooling overhead as a fraction of IT energy.
    pub cooling_overhead: f64,
    /// Power drawn by a knowledge-cache lookup, W.
    pub cache_lookup_w: f64,
}

impl Default for EnergyModel {
    /// A small always-on node share, a 10% cooling burden, and a 1 W
    /// cache path. Campaigns derive real values from the cluster
    /// cooling model instead (see `serve::obs::european_energy_model`).
    fn default() -> Self {
        EnergyModel {
            node_static_w: 2.0,
            cooling_overhead: 0.10,
            cache_lookup_w: 1.0,
        }
    }
}

/// Splits `total` into `weights.len()` integer shares proportional to
/// `weights`, distributing every unit: the shares always sum to
/// `total` exactly.
///
/// Quotients are floored and the leftover units go to the largest
/// fractional remainders (ties to the lowest index), the classic
/// largest-remainder apportionment. All-zero weights fall back to an
/// equal split. An empty slice returns no shares — the caller keeps
/// `total` as an explicit residual.
pub fn largest_remainder_split(total: u64, weights: &[u64]) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let n = weights.len();
    let weight_sum: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if weight_sum == 0 {
        let base = total / n as u64;
        let extra = (total % n as u64) as usize;
        return (0..n).map(|i| base + u64::from(i < extra)).collect();
    }
    let mut shares = vec![0u64; n];
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(n);
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let product = u128::from(total) * u128::from(w);
        let quotient = (product / weight_sum) as u64;
        shares[i] = quotient;
        assigned += quotient;
        remainders.push((product % weight_sum, i));
    }
    let mut leftover = total - assigned;
    if leftover > 0 {
        // Largest remainder first; ties broken by lowest index for
        // determinism.
        remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, i) in remainders.iter().take(leftover as usize) {
            shares[i] += 1;
        }
        leftover = 0;
    }
    debug_assert_eq!(leftover, 0);
    debug_assert_eq!(shares.iter().sum::<u64>(), total);
    shares
}

/// Exact energy bookkeeping for one virtual window (one serve batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowSummary {
    /// Window ordinal (the batch counter).
    pub index: u64,
    /// Requests that received an attributed share.
    pub requests: u64,
    /// Direct IT dynamic energy metered this window, nJ.
    pub direct_nj: u64,
    /// Static + cooling overhead this window, nJ.
    pub overhead_nj: u64,
    /// The facility meter: direct + overhead, nJ.
    pub facility_nj: u64,
    /// Σ per-request attributed energy, nJ.
    pub attributed_nj: u64,
    /// Residual energy no served request caused (failed evaluations,
    /// overhead of an all-shed window), nJ.
    pub idle_nj: u64,
}

impl WindowSummary {
    /// The conservation invariant for this window, checked in integer
    /// arithmetic: attributed + idle ≡ facility.
    pub fn conserved(&self) -> bool {
        u128::from(self.attributed_nj) + u128::from(self.idle_nj) == u128::from(self.facility_nj)
    }
}

struct LedgerInner {
    windows: Vec<WindowSummary>,
    windows_dropped: u64,
    facility_nj: u128,
    attributed_nj: u128,
    idle_nj: u128,
    per_tenant_nj: BTreeMap<u64, u128>,
}

/// Running energy-attribution ledger: bounded window summaries plus
/// exact `u128` totals that never saturate over a campaign.
pub struct EnergyLedger {
    inner: Mutex<LedgerInner>,
    capacity: usize,
}

impl EnergyLedger {
    /// A ledger retaining the first `capacity` window summaries
    /// (min 1); totals keep accumulating exactly after that.
    pub fn new(capacity: usize) -> Self {
        EnergyLedger {
            inner: Mutex::new(LedgerInner {
                windows: Vec::new(),
                windows_dropped: 0,
                facility_nj: 0,
                attributed_nj: 0,
                idle_nj: 0,
                per_tenant_nj: BTreeMap::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Books one window and its per-tenant attributed shares.
    pub fn record_window(&self, summary: WindowSummary, per_tenant_nj: &[(u64, u64)]) {
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.facility_nj += u128::from(summary.facility_nj);
        inner.attributed_nj += u128::from(summary.attributed_nj);
        inner.idle_nj += u128::from(summary.idle_nj);
        for &(tenant, nj) in per_tenant_nj {
            *inner.per_tenant_nj.entry(tenant).or_insert(0) += u128::from(nj);
        }
        if inner.windows.len() < self.capacity {
            inner.windows.push(summary);
        } else {
            inner.windows_dropped += 1;
        }
    }

    /// Retained window summaries (record order).
    pub fn windows(&self) -> Vec<WindowSummary> {
        match self.inner.lock() {
            Ok(guard) => guard.windows.clone(),
            Err(poisoned) => poisoned.into_inner().windows.clone(),
        }
    }

    /// Windows whose summary was not retained (totals still counted).
    pub fn windows_dropped(&self) -> u64 {
        match self.inner.lock() {
            Ok(guard) => guard.windows_dropped,
            Err(poisoned) => poisoned.into_inner().windows_dropped,
        }
    }

    /// Exact running totals `(facility, attributed, idle)` in nJ.
    pub fn totals_nj(&self) -> (u128, u128, u128) {
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        (inner.facility_nj, inner.attributed_nj, inner.idle_nj)
    }

    /// Exact per-tenant attributed totals in nJ, sorted by tenant.
    pub fn per_tenant_nj(&self) -> Vec<(u64, u128)> {
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner
            .per_tenant_nj
            .iter()
            .map(|(&t, &nj)| (t, nj))
            .collect()
    }

    /// The global conservation invariant: Σ attributed + Σ idle ≡
    /// Σ facility meter, *and* every retained window conserves
    /// individually. Exact integer comparison — to the last bit.
    pub fn conservation_holds(&self) -> bool {
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.attributed_nj + inner.idle_nj == inner.facility_nj
            && inner.windows.iter().all(WindowSummary::conserved)
    }

    /// Deterministic text dump of the ledger (totals + per-tenant
    /// tallies), used in experiment reports and invariance digests.
    pub fn report(&self) -> String {
        let (facility, attributed, idle) = self.totals_nj();
        let mut out = format!(
            "energy facility={facility}nJ attributed={attributed}nJ idle={idle}nJ conserved={} windows_retained={} windows_dropped={}\n",
            self.conservation_holds(),
            self.windows().len(),
            self.windows_dropped(),
        );
        for (tenant, nj) in self.per_tenant_nj() {
            out.push_str(&format!("energy_tenant{{tenant=\"{tenant}\"}} {nj}nJ\n"));
        }
        out
    }
}

impl std::fmt::Debug for EnergyLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (facility, attributed, idle) = self.totals_nj();
        f.debug_struct("EnergyLedger")
            .field("facility_nj", &facility)
            .field("attributed_nj", &attributed)
            .field("idle_nj", &idle)
            .field("windows", &self.windows().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_nj_rounds_once_and_clamps_garbage() {
        assert_eq!(to_nj(1.0), 1_000_000_000);
        assert_eq!(to_nj(1.5e-9), 2, "round-half-up at the nJ boundary");
        assert_eq!(to_nj(-3.0), 0);
        assert_eq!(to_nj(f64::NAN), 0);
        assert_eq!(to_nj(f64::INFINITY), 0);
        assert!((nj_to_j(2_500_000_000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn split_is_exact_and_proportional() {
        let shares = largest_remainder_split(100, &[1, 1, 2]);
        assert_eq!(shares.iter().sum::<u64>(), 100);
        assert_eq!(shares, vec![25, 25, 50]);
    }

    #[test]
    fn split_distributes_every_leftover_unit() {
        let shares = largest_remainder_split(10, &[3, 3, 3]);
        assert_eq!(shares.iter().sum::<u64>(), 10);
        assert_eq!(shares, vec![4, 3, 3], "tie broken to lowest index");
    }

    #[test]
    fn split_handles_zero_weights_and_empty() {
        assert_eq!(largest_remainder_split(7, &[0, 0, 0]), vec![3, 2, 2]);
        assert!(largest_remainder_split(7, &[]).is_empty());
        assert_eq!(largest_remainder_split(0, &[5, 9]), vec![0, 0]);
    }

    #[test]
    fn window_conservation_is_exact() {
        let good = WindowSummary {
            facility_nj: 100,
            attributed_nj: 93,
            idle_nj: 7,
            ..WindowSummary::default()
        };
        assert!(good.conserved());
        let off_by_one = WindowSummary { idle_nj: 6, ..good };
        assert!(!off_by_one.conserved(), "one lost nanojoule fails the gate");
    }

    #[test]
    fn ledger_accumulates_exact_totals_and_tenants() {
        let ledger = EnergyLedger::new(2);
        for i in 0..4u64 {
            ledger.record_window(
                WindowSummary {
                    index: i,
                    requests: 2,
                    direct_nj: 80,
                    overhead_nj: 20,
                    facility_nj: 100,
                    attributed_nj: 90,
                    idle_nj: 10,
                },
                &[(1, 60), (2, 30)],
            );
        }
        assert_eq!(ledger.totals_nj(), (400, 360, 40));
        assert_eq!(ledger.per_tenant_nj(), vec![(1, 240), (2, 120)]);
        assert_eq!(ledger.windows().len(), 2);
        assert_eq!(ledger.windows_dropped(), 2);
        assert!(ledger.conservation_holds());
        assert!(ledger.report().contains("conserved=true"));
    }

    #[test]
    fn ledger_flags_broken_conservation() {
        let ledger = EnergyLedger::new(4);
        ledger.record_window(
            WindowSummary {
                facility_nj: 100,
                attributed_nj: 99,
                idle_nj: 0,
                ..WindowSummary::default()
            },
            &[],
        );
        assert!(!ledger.conservation_holds());
    }
}
