//! Per-tenant SLO burn-rate tracking over [`antarex_monitor::sla`].
//!
//! An SLO sets a *target* fraction of good events (e.g. `0.999`); the
//! complement is the error budget. The **burn rate** is how fast a
//! tenant is consuming that budget:
//!
//! ```text
//! burn = violation_rate / (1 − target)
//! ```
//!
//! `burn == 1` means the budget is being consumed exactly at the
//! sustainable pace; `burn > 1` means the tenant will exhaust its
//! budget early — the standard multi-window alerting signal. The bank
//! wraps one [`Sla`] per `(tenant, objective)` pair so the serving
//! layer can check every response against per-tenant objectives and
//! export burn rates next to the metric plane.

use antarex_monitor::sla::{Sla, SlaReport};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// One tenant's burn-rate reading for one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRow {
    /// Tenant id.
    pub tenant: u64,
    /// Objective name.
    pub objective: String,
    /// Violation summary backing the rate.
    pub report: SlaReport,
    /// `violation_rate / (1 − target)`.
    pub burn: f64,
}

/// Per-tenant SLO bank: registers objectives lazily and accumulates
/// violation records deterministically (storage is ordered by
/// `(tenant, objective)`, so iteration and exposition order never
/// depend on insertion order).
pub struct SloBank {
    /// Target good fraction in `[0, 1)`, shared by all objectives.
    target: f64,
    slos: Mutex<BTreeMap<(u64, String), Sla>>,
}

impl SloBank {
    /// A bank with the given target good fraction (clamped into
    /// `[0, 1 − 1e-9]` so the error budget can never be zero).
    pub fn new(target: f64) -> Self {
        SloBank {
            target: target.clamp(0.0, 1.0 - 1e-9),
            slos: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configured target good fraction.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// Checks `value` against the tenant's upper-bound objective,
    /// creating it at `threshold` on first use. Returns `true` when
    /// the objective is met. The threshold is fixed at registration;
    /// later calls ignore the argument (SLAs renegotiate explicitly,
    /// not implicitly per measurement).
    pub fn check_upper(
        &self,
        tenant: u64,
        objective: &str,
        threshold: f64,
        time_s: f64,
        value: f64,
    ) -> bool {
        let mut slos = match self.slos.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let sla = slos
            .entry((tenant, objective.to_string()))
            .or_insert_with(|| Sla::upper_bound(objective, threshold));
        sla.check(time_s, value)
    }

    /// Burn-rate rows for every registered `(tenant, objective)`,
    /// in `(tenant, objective)` order.
    pub fn burn_rates(&self) -> Vec<BurnRow> {
        let slos = match self.slos.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        slos.iter()
            .map(|((tenant, objective), sla)| {
                let report = sla.report();
                BurnRow {
                    tenant: *tenant,
                    objective: objective.clone(),
                    report,
                    burn: report.burn_rate(self.target),
                }
            })
            .collect()
    }

    /// Number of registered `(tenant, objective)` pairs.
    pub fn len(&self) -> usize {
        match self.slos.lock() {
            Ok(guard) => guard.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// `true` when no objective has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for SloBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloBank")
            .field("target", &self.target)
            .field("objectives", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_of_one_consumes_budget_at_pace() {
        let bank = SloBank::new(0.99); // 1% budget
        for i in 0..100 {
            // exactly 1 violation in 100 checks
            let value = if i == 7 { 2.0 } else { 0.5 };
            bank.check_upper(1, "latency", 1.0, i as f64, value);
        }
        let rows = bank.burn_rates();
        assert_eq!(rows.len(), 1);
        assert!((rows[0].burn - 1.0).abs() < 1e-12);
        assert_eq!(rows[0].report.violations, 1);
    }

    #[test]
    fn heavy_violations_burn_fast() {
        let bank = SloBank::new(0.999);
        for i in 0..10 {
            bank.check_upper(2, "latency", 1.0, i as f64, 5.0); // all violate
        }
        let burn = bank.burn_rates()[0].burn;
        assert!(
            (burn - 1000.0).abs() < 1e-9,
            "100% violations / 0.1% budget"
        );
    }

    #[test]
    fn rows_are_ordered_by_tenant_then_objective() {
        let bank = SloBank::new(0.99);
        bank.check_upper(9, "zz", 1.0, 0.0, 0.5);
        bank.check_upper(1, "power", 1.0, 0.0, 0.5);
        bank.check_upper(1, "latency", 1.0, 0.0, 0.5);
        let rows = bank.burn_rates();
        let keys: Vec<(u64, &str)> = rows
            .iter()
            .map(|row| (row.tenant, row.objective.as_str()))
            .collect();
        assert_eq!(keys, vec![(1, "latency"), (1, "power"), (9, "zz")]);
    }

    #[test]
    fn clean_tenant_has_zero_burn() {
        let bank = SloBank::new(0.999);
        bank.check_upper(4, "latency", 1.0, 0.0, 0.2);
        assert_eq!(bank.burn_rates()[0].burn, 0.0);
    }
}
