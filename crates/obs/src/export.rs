//! Text exporters over metric snapshots and SLO burn rows.
//!
//! Three formats, all deterministic byte-for-byte given the same
//! readings (inputs arrive pre-sorted from
//! [`MetricsRegistry::snapshot`](crate::metrics::MetricsRegistry::snapshot)
//! and [`SloBank::burn_rates`](crate::slo::SloBank::burn_rates)):
//!
//! * [`exposition`] — Prometheus-style text: `# TYPE` headers,
//!   `name{tenant="…"} value` samples, histograms rendered as
//!   summaries with `quantile` labels plus `_sum`/`_count`;
//! * [`json_dump`] — a self-describing JSON array for programmatic
//!   diffing (non-finite floats are quoted strings, since JSON has no
//!   NaN/inf);
//! * the folded-stack trace format lives on
//!   [`Tracer::folded_text`](crate::span::Tracer::folded_text).

use crate::hist::STANDARD_QUANTILES;
use crate::metrics::{MetricSnapshot, MetricValue};
use crate::slo::BurnRow;
use std::fmt::Write as _;

fn fmt_f64(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

fn sample_name(name: &str, tenant: Option<u64>, extra_label: Option<(&str, &str)>) -> String {
    let mut labels = Vec::new();
    if let Some(tenant) = tenant {
        labels.push(format!("tenant=\"{tenant}\""));
    }
    if let Some((key, value)) = extra_label {
        labels.push(format!("{key}=\"{value}\""));
    }
    if labels.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{}}}", labels.join(","))
    }
}

/// Renders snapshot rows as Prometheus-style text exposition. Rows
/// must already be in snapshot order (name, then tenant); a `# TYPE`
/// header is emitted once per metric name.
pub fn exposition(rows: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for row in rows {
        let kind = match row.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "summary",
        };
        if last_name != Some(row.name) {
            let _ = writeln!(out, "# TYPE {} {kind}", row.name);
            last_name = Some(row.name);
        }
        match &row.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{} {v}", sample_name(row.name, row.tenant, None));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{} {}",
                    sample_name(row.name, row.tenant, None),
                    fmt_f64(*v)
                );
            }
            MetricValue::Histogram(snap) => {
                for (i, q) in STANDARD_QUANTILES.iter().enumerate() {
                    let value = snap.quantiles[i].map_or("NaN".to_string(), fmt_f64);
                    let q_label = format!("{q}");
                    let _ = writeln!(
                        out,
                        "{} {value}",
                        sample_name(row.name, row.tenant, Some(("quantile", &q_label)))
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    row.name,
                    tenant_suffix(row.tenant),
                    fmt_f64(snap.sum)
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    row.name,
                    tenant_suffix(row.tenant),
                    snap.count
                );
            }
        }
    }
    out
}

fn tenant_suffix(tenant: Option<u64>) -> String {
    match tenant {
        Some(t) => format!("{{tenant=\"{t}\"}}"),
        None => String::new(),
    }
}

/// Renders SLO burn rows as exposition gauges
/// (`slo_burn_rate{tenant="…",objective="…"}`).
pub fn burn_exposition(rows: &[BurnRow]) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    out.push_str("# TYPE slo_burn_rate gauge\n");
    for row in rows {
        let _ = writeln!(
            out,
            "slo_burn_rate{{tenant=\"{}\",objective=\"{}\"}} {}",
            row.tenant,
            row.objective,
            fmt_f64(row.burn)
        );
    }
    out
}

fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        format!("\"{}\"", fmt_f64(value))
    }
}

/// Renders snapshot rows as a JSON array (one object per metric).
/// Non-finite floats are quoted strings; absent quantiles are `null`.
pub fn json_dump(rows: &[MetricSnapshot]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tenant = row.tenant.map_or("null".to_string(), |t| t.to_string());
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"tenant\":{tenant},\"scope\":\"{}\"",
            row.name,
            row.scope.label()
        );
        match &row.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, ",\"kind\":\"counter\",\"value\":{v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, ",\"kind\":\"gauge\",\"value\":{}}}", json_f64(*v));
            }
            MetricValue::Histogram(snap) => {
                let _ = write!(
                    out,
                    ",\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"nan\":{},\
                     \"underflow\":{},\"overflow\":{}",
                    snap.count,
                    json_f64(snap.sum),
                    snap.nan,
                    snap.underflow,
                    snap.overflow
                );
                for (slot, q) in snap.quantiles.iter().zip(STANDARD_QUANTILES.iter()) {
                    let key = format!("p{}", (q * 1000.0).round() as u64);
                    let value = slot.map_or("null".to_string(), json_f64);
                    let _ = write!(out, ",\"{key}\":{value}");
                }
                out.push('}');
            }
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsRegistry, Scope};
    use antarex_monitor::sla::SlaReport;

    fn registry_with_rows() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("export-test_requests_total", Scope::Invariant)
            .add(7);
        reg.tenant_counter("export-test_requests_total", Some(3), Scope::Invariant)
            .add(2);
        reg.gauge("export-test_budget_watts", Scope::Invariant)
            .set(120.5);
        let hist = reg.histogram("export-test_latency_seconds", Scope::Timing);
        for i in 1..=100 {
            hist.record(i as f64 * 1e-3);
        }
        reg
    }

    #[test]
    fn exposition_emits_type_headers_once_per_name() {
        let reg = registry_with_rows();
        let text = exposition(&reg.snapshot(None));
        assert_eq!(
            text.matches("# TYPE export-test_requests_total counter")
                .count(),
            1,
            "shared name gets one header:\n{text}"
        );
        assert!(text.contains("export-test_requests_total 7"));
        assert!(text.contains("export-test_requests_total{tenant=\"3\"} 2"));
        assert!(text.contains("export-test_budget_watts 120.5"));
        assert!(text.contains("export-test_latency_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("export-test_latency_seconds_count 100"));
    }

    #[test]
    fn exposition_is_deterministic() {
        let reg = registry_with_rows();
        let a = exposition(&reg.snapshot(None));
        let b = exposition(&reg.snapshot(None));
        assert_eq!(a, b);
    }

    #[test]
    fn json_dump_handles_non_finite_values() {
        let reg = MetricsRegistry::new();
        reg.gauge("export-test_nan_gauge", Scope::Invariant)
            .set(f64::NAN);
        let json = json_dump(&reg.snapshot(None));
        assert!(json.contains("\"value\":\"NaN\""), "{json}");
        assert!(!json.contains("value\":NaN"), "bare NaN is invalid JSON");
    }

    #[test]
    fn json_dump_histogram_has_quantile_keys() {
        let reg = MetricsRegistry::new();
        let hist = reg.histogram("export-test_json_hist", Scope::Timing);
        hist.record(0.5);
        let json = json_dump(&reg.snapshot(None));
        for key in ["\"p500\":", "\"p950\":", "\"p990\":", "\"p999\":"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn burn_exposition_renders_rows() {
        let rows = vec![BurnRow {
            tenant: 4,
            objective: "latency".to_string(),
            report: SlaReport {
                checked: 10,
                violations: 1,
            },
            burn: 2.5,
        }];
        let text = burn_exposition(&rows);
        assert!(text.contains("slo_burn_rate{tenant=\"4\",objective=\"latency\"} 2.5"));
        assert_eq!(burn_exposition(&[]), "");
    }
}
