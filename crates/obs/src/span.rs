//! Hierarchical spans on virtual timestamps.
//!
//! A span is one completed region of work — a request, a cache probe,
//! an evaluation — with a parent pointer, a tenant, and `[start, end]`
//! in **virtual seconds**. Because the serving stack schedules on
//! virtual time (PR 2), every timestamp here is a pure function of the
//! workload, so a trace is byte-identical run-to-run; the span model
//! additionally records *work content* rather than queue placement
//! (e.g. an eval span covers the probe's cost, not its slot on a
//! worker), which makes traces invariant across worker counts too.
//!
//! Spans land in a fixed-capacity ring buffer: recording is one
//! mutex-protected slot write, no allocation after construction, and
//! the oldest spans are overwritten on wraparound — bounded memory no
//! matter how long the service runs.
//!
//! [`Tracer::folded`] aggregates the ring into folded-stack lines
//! (`root;child;leaf <weight>`), the input format of flamegraph
//! tooling; weights are per-span *self* time in integer nanoseconds so
//! the fold is exactly reproducible.

use crate::metrics::Counter;
use antarex_tuner::intern::{intern, SymbolId};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Identifier of a recorded span. `SpanId(0)` means "no parent".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no parent" sentinel.
    pub const NONE: SpanId = SpanId(0);

    /// `true` for the root sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// One completed region of work on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// This span's id (monotone from 1 in record order).
    pub id: SpanId,
    /// Enclosing span, or [`SpanId::NONE`].
    pub parent: SpanId,
    /// Interned span name.
    pub name: SymbolId,
    /// Owning tenant, if tenant-scoped.
    pub tenant: Option<u64>,
    /// Virtual start time (seconds).
    pub start_s: f64,
    /// Virtual end time (seconds), `>= start_s`.
    pub end_s: f64,
}

impl SpanRecord {
    /// Span duration in virtual seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

struct Ring {
    slots: Vec<SpanRecord>,
    capacity: usize,
    head: usize,
    recorded: u64,
    next_id: u64,
}

/// Fixed-capacity span recorder (see module docs).
pub struct Tracer {
    ring: Mutex<Ring>,
    dropped: Counter,
}

impl Tracer {
    /// A tracer keeping the most recent `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            ring: Mutex::new(Ring {
                slots: Vec::with_capacity(capacity),
                capacity,
                head: 0,
                recorded: 0,
                next_id: 1,
            }),
            dropped: Counter::new(),
        }
    }

    /// Records a completed span and returns its id for use as a
    /// child's `parent`. `end_s` is clamped up to `start_s` so a
    /// malformed interval can never produce negative durations.
    pub fn record(
        &self,
        name: &str,
        tenant: Option<u64>,
        parent: SpanId,
        start_s: f64,
        end_s: f64,
    ) -> SpanId {
        let record = SpanRecord {
            id: SpanId::NONE, // assigned under the lock
            parent,
            name: intern(name),
            tenant,
            start_s,
            end_s: end_s.max(start_s),
        };
        let mut ring = match self.ring.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let id = SpanId(ring.next_id);
        ring.next_id += 1;
        ring.recorded += 1;
        let record = SpanRecord { id, ..record };
        if ring.slots.len() < ring.capacity {
            ring.slots.push(record);
        } else {
            let head = ring.head;
            ring.slots[head] = record;
            self.dropped.inc();
        }
        ring.head = (ring.head + 1) % ring.capacity;
        id
    }

    /// Spans lost to ring wraparound (each overwrite evicts one).
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Handle to the drop counter, for adoption into a registry via
    /// `MetricsRegistry::attach_counter` so ring saturation shows up
    /// in the Prometheus exposition instead of staying silent.
    pub fn dropped_counter(&self) -> &Counter {
        &self.dropped
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        match self.ring.lock() {
            Ok(guard) => guard.recorded,
            Err(poisoned) => poisoned.into_inner().recorded,
        }
    }

    /// Spans currently held (≤ capacity).
    pub fn len(&self) -> usize {
        match self.ring.lock() {
            Ok(guard) => guard.slots.len(),
            Err(poisoned) => poisoned.into_inner().slots.len(),
        }
    }

    /// `true` when no span has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained spans in record order (oldest first).
    pub fn spans(&self) -> Vec<SpanRecord> {
        let ring = match self.ring.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut out = ring.slots.clone();
        out.sort_by_key(|span| span.id);
        out
    }

    /// Folded-stack aggregation of the retained spans.
    ///
    /// Each span contributes its *self* time — duration minus the summed
    /// durations of its retained children, clamped at zero — under the
    /// path `root;...;name`, weighted in integer nanoseconds. Spans
    /// whose parent was evicted from the ring are treated as roots.
    /// Lines are sorted by path, so the fold is a deterministic
    /// function of the retained span set.
    pub fn folded(&self) -> Vec<(String, u64)> {
        let spans = self.spans();
        let by_id: BTreeMap<SpanId, &SpanRecord> =
            spans.iter().map(|span| (span.id, span)).collect();
        let mut child_time: BTreeMap<SpanId, f64> = BTreeMap::new();
        for span in &spans {
            if !span.parent.is_none() && by_id.contains_key(&span.parent) {
                *child_time.entry(span.parent).or_insert(0.0) += span.duration_s();
            }
        }
        let mut folds: BTreeMap<String, u64> = BTreeMap::new();
        for span in &spans {
            let mut path = vec![span.name.name()];
            let mut cursor = span.parent;
            while let Some(parent) = by_id.get(&cursor) {
                path.push(parent.name.name());
                cursor = parent.parent;
            }
            path.reverse();
            let self_s =
                (span.duration_s() - child_time.get(&span.id).copied().unwrap_or(0.0)).max(0.0);
            let weight = (self_s * 1e9).round() as u64;
            *folds.entry(path.join(";")).or_insert(0) += weight;
        }
        folds.into_iter().collect()
    }

    /// Renders [`folded`](Tracer::folded) as newline-separated
    /// `path weight` lines — the flamegraph input format.
    pub fn folded_text(&self) -> String {
        let mut out = String::new();
        for (path, weight) in self.folded() {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("retained", &self.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_assign_monotone_ids() {
        let tracer = Tracer::new(8);
        let a = tracer.record("req", None, SpanId::NONE, 0.0, 1.0);
        let b = tracer.record("eval", Some(3), a, 0.2, 0.8);
        assert!(b > a);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, a);
        assert_eq!(spans[1].tenant, Some(3));
    }

    #[test]
    fn malformed_interval_is_clamped() {
        let tracer = Tracer::new(4);
        tracer.record("bad", None, SpanId::NONE, 5.0, 1.0);
        assert_eq!(tracer.spans()[0].duration_s(), 0.0);
    }

    #[test]
    fn wraparound_keeps_the_newest_spans() {
        let tracer = Tracer::new(3);
        for i in 0..7 {
            tracer.record("s", None, SpanId::NONE, i as f64, i as f64 + 1.0);
        }
        assert_eq!(tracer.len(), 3);
        assert_eq!(tracer.recorded(), 7);
        assert_eq!(tracer.dropped(), 4, "each overwrite counts one drop");
        let ids: Vec<u64> = tracer.spans().iter().map(|span| span.id.0).collect();
        assert_eq!(ids, vec![5, 6, 7], "oldest spans are overwritten");
    }

    #[test]
    fn no_drops_below_capacity() {
        let tracer = Tracer::new(8);
        tracer.record("s", None, SpanId::NONE, 0.0, 1.0);
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn folded_self_time_subtracts_children() {
        let tracer = Tracer::new(8);
        let root = tracer.record("request", None, SpanId::NONE, 0.0, 1.0);
        tracer.record("select", None, root, 0.0, 0.25);
        tracer.record("eval", None, root, 0.25, 0.75);
        let folds = tracer.folded();
        let as_map: BTreeMap<&str, u64> = folds.iter().map(|(p, w)| (p.as_str(), *w)).collect();
        assert_eq!(as_map["request"], 250_000_000, "1.0 − 0.25 − 0.5 self");
        assert_eq!(as_map["request;select"], 250_000_000);
        assert_eq!(as_map["request;eval"], 500_000_000);
    }

    #[test]
    fn evicted_parent_makes_orphan_a_root() {
        let tracer = Tracer::new(1);
        let parent = tracer.record("parent", None, SpanId::NONE, 0.0, 2.0);
        tracer.record("child", None, parent, 0.0, 1.0); // evicts parent
        let folds = tracer.folded();
        assert_eq!(folds.len(), 1);
        assert_eq!(folds[0].0, "child", "orphan folds as a root");
    }

    #[test]
    fn folded_text_is_sorted_lines() {
        let tracer = Tracer::new(8);
        tracer.record("zeta", None, SpanId::NONE, 0.0, 1e-9);
        tracer.record("alpha", None, SpanId::NONE, 0.0, 2e-9);
        assert_eq!(tracer.folded_text(), "alpha 2\nzeta 1\n");
    }
}
