//! Log-bucketed histograms with bounded relative error.
//!
//! The serving stack needs p50/p95/p99/p999 of virtual latencies
//! without keeping every sample: a histogram over geometrically-spaced
//! buckets (DDSketch-style) stores only counts, costs two relaxed
//! atomic operations per [`record`](Histogram::record), and answers
//! any quantile with a guaranteed relative error bound.
//!
//! # Accuracy contract
//!
//! Bucket `i` covers `[MIN·γ^i, MIN·γ^(i+1))` with `γ = 1.05`; a
//! quantile query returns the geometric midpoint `MIN·γ^(i+1/2)` of the
//! bucket the exact rank-`⌈q·n⌉` sample fell into. Because bucketing is
//! monotone, the ranked walk lands in **the same bucket as the exact
//! sorted-slice quantile**, so for any positive finite sample `v` in
//! `[MIN, MAX)` the estimate `e` satisfies `|e − v| / v ≤ √γ − 1`
//! (≈ 2.47%). The property suite in `tests/hist_properties.rs` checks
//! exactly this against exact quantiles over adversarial distributions.
//!
//! # Edge semantics
//!
//! * `NaN` samples are counted in [`Snapshot::nan`] and excluded from
//!   quantiles and the sum — a poisoned sensor must not poison the p99;
//! * samples below [`MIN_VALUE`] — including zero, negatives, and
//!   `-inf` — land in the underflow bucket and report as `0.0`;
//! * samples at or above [`MAX_VALUE`] — including `+inf` — land in the
//!   overflow bucket and report as `+inf`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Geometric bucket growth factor.
pub const GAMMA: f64 = 1.05;

/// Smallest value representable by a regular bucket (1 ns of virtual
/// time when the unit is seconds).
pub const MIN_VALUE: f64 = 1e-9;

/// Regular buckets between [`MIN_VALUE`] and [`MAX_VALUE`].
pub const BUCKETS: usize = 1136;

/// Upper edge of the last regular bucket: `MIN_VALUE · γ^BUCKETS`
/// (≈ 1.1e15). Values at or above it report as `+inf`.
pub const MAX_VALUE: f64 = 1.1e15;

/// The guaranteed relative error of quantile estimates over positive
/// finite samples in `[MIN_VALUE, MAX_VALUE)`: `√γ − 1`.
pub fn relative_error_bound() -> f64 {
    GAMMA.sqrt() - 1.0
}

/// The quantiles every exposition reports, in order.
pub const STANDARD_QUANTILES: [f64; 4] = [0.5, 0.95, 0.99, 0.999];

struct Core {
    buckets: Vec<AtomicU64>,
    underflow: AtomicU64,
    overflow: AtomicU64,
    nan: AtomicU64,
    /// Σ of non-NaN samples, stored as f64 bits behind a CAS loop.
    sum_bits: AtomicU64,
}

/// A shareable log-bucketed histogram handle. Cloning shares the
/// underlying buckets: the registry and the instrumented module read
/// and write the same counts — one source of truth.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<Core>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum", &snap.sum)
            .finish_non_exhaustive()
    }
}

/// Everything a histogram knows at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Non-NaN samples recorded (underflow + regular + overflow).
    pub count: u64,
    /// Sum of non-NaN samples.
    pub sum: f64,
    /// NaN samples (excluded from `count`, `sum`, and quantiles).
    pub nan: u64,
    /// Samples below [`MIN_VALUE`] (zero, negative, `-inf`).
    pub underflow: u64,
    /// Samples at or above [`MAX_VALUE`] (including `+inf`).
    pub overflow: u64,
    /// The [`STANDARD_QUANTILES`] estimates, aligned by index
    /// (`None` for every entry when no sample was recorded).
    pub quantiles: [Option<f64>; 4],
}

impl Snapshot {
    /// Mean of the recorded non-NaN samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count > 0 {
            Some(self.sum / self.count as f64)
        } else {
            None
        }
    }
}

fn bucket_index(value: f64) -> Option<usize> {
    // monotone in `value`; callers have excluded NaN
    if value < MIN_VALUE {
        return None; // underflow
    }
    let idx = ((value / MIN_VALUE).ln() / GAMMA.ln()).floor();
    if idx >= BUCKETS as f64 {
        Some(BUCKETS) // overflow sentinel
    } else {
        Some(idx.max(0.0) as usize)
    }
}

fn representative(index: usize) -> f64 {
    MIN_VALUE * GAMMA.powf(index as f64 + 0.5)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            core: Arc::new(Core {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                underflow: AtomicU64::new(0),
                overflow: AtomicU64::new(0),
                nan: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Records one sample — the hot-path operation: one bucket
    /// increment plus one CAS on the running sum, no locks, no
    /// allocation.
    pub fn record(&self, value: f64) {
        if value.is_nan() {
            self.core.nan.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match bucket_index(value) {
            None => self.core.underflow.fetch_add(1, Ordering::Relaxed),
            Some(BUCKETS) => self.core.overflow.fetch_add(1, Ordering::Relaxed),
            Some(i) => self.core.buckets[i].fetch_add(1, Ordering::Relaxed),
        };
        let mut bits = self.core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(bits) + value).to_bits();
            match self.core.sum_bits.compare_exchange_weak(
                bits,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => bits = observed,
            }
        }
    }

    /// Non-NaN samples recorded so far.
    pub fn count(&self) -> u64 {
        let c = &self.core;
        c.underflow.load(Ordering::Relaxed)
            + c.overflow.load(Ordering::Relaxed)
            + c.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .sum::<u64>()
    }

    /// The rank-`⌈q·n⌉` quantile estimate (see the module accuracy
    /// contract). `None` when nothing was recorded or `q` is NaN.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if q.is_nan() {
            return None;
        }
        let c = &self.core;
        let underflow = c.underflow.load(Ordering::Relaxed);
        let overflow = c.overflow.load(Ordering::Relaxed);
        let counts: Vec<u64> = c
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let n = underflow + overflow + counts.iter().sum::<u64>();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        if rank <= underflow {
            return Some(0.0);
        }
        let mut seen = underflow;
        for (i, &count) in counts.iter().enumerate() {
            seen += count;
            if rank <= seen {
                return Some(representative(i));
            }
        }
        Some(f64::INFINITY)
    }

    /// A consistent point-in-time summary.
    pub fn snapshot(&self) -> Snapshot {
        let c = &self.core;
        let mut quantiles = [None; 4];
        for (slot, &q) in quantiles.iter_mut().zip(STANDARD_QUANTILES.iter()) {
            *slot = self.quantile(q);
        }
        Snapshot {
            count: self.count(),
            sum: f64::from_bits(c.sum_bits.load(Ordering::Relaxed)),
            nan: c.nan.load(Ordering::Relaxed),
            underflow: c.underflow.load(Ordering::Relaxed),
            overflow: c.overflow.load(Ordering::Relaxed),
            quantiles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
        let snap = h.snapshot();
        assert_eq!(snap.quantiles, [None; 4]);
        assert_eq!(snap.mean(), None);
    }

    #[test]
    fn single_sample_is_recovered_within_the_bound() {
        let h = Histogram::new();
        h.record(0.125);
        let est = h.quantile(0.5).unwrap();
        assert!((est - 0.125).abs() / 0.125 <= relative_error_bound());
        assert_eq!(h.count(), 1);
        assert!((h.snapshot().sum - 0.125).abs() < 1e-15);
    }

    #[test]
    fn nan_is_counted_but_never_poisons_quantiles() {
        let h = Histogram::new();
        h.record(f64::NAN);
        h.record(1.0);
        let snap = h.snapshot();
        assert_eq!(snap.nan, 1);
        assert_eq!(snap.count, 1);
        assert!((snap.sum - 1.0).abs() < 1e-15);
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 1.0).abs() <= relative_error_bound());
    }

    #[test]
    fn underflow_and_overflow_report_their_sentinels() {
        let h = Histogram::new();
        h.record(-3.0);
        h.record(0.0);
        h.record(f64::NEG_INFINITY);
        h.record(f64::INFINITY);
        assert_eq!(h.quantile(0.01), Some(0.0), "underflow reports 0");
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY), "overflow reports inf");
        let snap = h.snapshot();
        assert_eq!(snap.underflow, 3);
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.count, 4);
    }

    #[test]
    fn quantile_walk_is_monotone() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3);
        }
        let mut last = 0.0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            assert!(est >= last, "quantiles must be monotone in q");
            last = est;
        }
    }

    #[test]
    fn clone_shares_the_buckets() {
        let h = Histogram::new();
        let view = h.clone();
        h.record(2.0);
        assert_eq!(view.count(), 1, "clones must read the same counts");
    }

    #[test]
    fn bucket_index_is_monotone_across_the_range() {
        let mut last = None;
        let mut v = MIN_VALUE / 4.0;
        while v < MAX_VALUE * 4.0 {
            let idx = bucket_index(v).map_or(-1i64, |i| i as i64);
            if let Some(prev) = last {
                assert!(idx >= prev, "bucketing must preserve order at {v}");
            }
            last = Some(idx);
            v *= 1.31;
        }
    }
}
