//! Deterministic cross-layer causal tracing.
//!
//! The ANTAREX stack is cross-layer by design: admission, the tuning
//! service, the eval pool's schedule, the metered VM, and the RTRM
//! power path each make decisions about the *same* request. This
//! module gives every request a compact causal identity — a
//! [`TraceCtx`] carrying a 128-bit [`TraceId`] — that is threaded
//! through all of those layers and collected into a bounded
//! [`TraceStore`].
//!
//! Two properties make the pipeline safe to leave on in production:
//!
//! * **Determinism.** A trace id is a pure function of
//!   `(tenant, probe_seed, batch ordinal, sequence-in-batch)` — no
//!   wall clock, no thread id, no allocation order. Ids (and therefore
//!   the sampling decision derived from them) are byte-identical at
//!   any physical worker count and under any steal policy.
//! * **Bounded cost.** Sampling is *head-based*: the decision is made
//!   once, from the id alone, when the context is derived; unsampled
//!   requests pay only the derivation (a few SplitMix64 rounds,
//!   gated ≤ 25 ns by `energy_obs_bench`). The store keeps the first
//!   `capacity` events and counts the rest in a drop counter exposed
//!   through the metrics registry — saturation is visible, never
//!   silent, and the retained prefix is deterministic because events
//!   are recorded in batch-replay order.
//!
//! Exporters: [`TraceStore::chrome_trace_json`] emits Chrome
//! `trace_event` JSON (load in `chrome://tracing` or Perfetto) with
//! one "process" per tenant and one "thread" per stack layer;
//! [`TraceStore::waterfall`] renders a single trace as an aligned
//! text waterfall for terminal use.

use crate::metrics::Counter;
use crate::span::SpanId;
use std::sync::Mutex;

/// 128-bit causal trace identifier. `TraceId(0)` means "untraced".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(pub u128);

impl TraceId {
    /// The "no trace" sentinel.
    pub const NONE: TraceId = TraceId(0);

    /// `true` for the sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Canonical 32-hex-digit rendering (W3C `trace-id` style).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

/// SplitMix64 finalizer: the avalanche stage used everywhere in the
/// repo where a cheap, well-distributed 64-bit mix is needed.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-request causal context, propagated by value through the stack.
///
/// `Copy` and 24 bytes: cheap enough to live inside every
/// `EvalJob`. `sampled` is the head-based sampling decision — layers
/// record trace events only when it is set, so the unsampled hot path
/// never touches the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// The causal identity shared by all events of this request.
    pub id: TraceId,
    /// Owning tenant.
    pub tenant: u64,
    /// Head-based sampling decision, derived from `id` alone.
    pub sampled: bool,
}

impl TraceCtx {
    /// The "untraced" context (id zero, never sampled).
    pub const NONE: TraceCtx = TraceCtx {
        id: TraceId::NONE,
        tenant: 0,
        sampled: false,
    };

    /// Derives the context for one request.
    ///
    /// The id mixes `(tenant, probe_seed, batch, seq)` through two
    /// independent SplitMix64 lanes (one per 64-bit half), then forces
    /// the result non-zero so it can never collide with the sentinel.
    /// `sample_every = n` keeps deterministically ~1/n of traces;
    /// `0` and `1` keep everything.
    #[inline]
    pub fn derive(tenant: u64, probe_seed: u64, batch: u64, seq: u32, sample_every: u64) -> Self {
        let lo = mix64(
            tenant
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(probe_seed)
                ^ batch.rotate_left(32)
                ^ u64::from(seq),
        );
        let hi = mix64(lo ^ probe_seed.rotate_left(17) ^ batch.wrapping_mul(0xff51_afd7_ed55_8ccd));
        let raw = (u128::from(hi) << 64) | u128::from(lo);
        let id = TraceId(if raw == 0 { 1 } else { raw });
        let sampled = sample_every <= 1 || mix64(lo ^ hi).is_multiple_of(sample_every);
        TraceCtx {
            id,
            tenant,
            sampled,
        }
    }
}

/// The stack layer that produced a trace event. Renders as the
/// "thread" lane in the Chrome export and as the left gutter of the
/// waterfall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// `serve::admission` tier decision.
    Admission,
    /// `TuningService` request handling.
    Serve,
    /// Eval-pool / `sim::sched` job placement.
    Sched,
    /// `antarex-vm` executor segments.
    Vm,
    /// `rtrm` power/cap decisions.
    Rtrm,
}

impl Layer {
    /// All layers in lane order.
    pub const ALL: [Layer; 5] = [
        Layer::Admission,
        Layer::Serve,
        Layer::Sched,
        Layer::Vm,
        Layer::Rtrm,
    ];

    /// Stable lane index (Chrome `tid`).
    pub fn index(self) -> usize {
        match self {
            Layer::Admission => 0,
            Layer::Serve => 1,
            Layer::Sched => 2,
            Layer::Vm => 3,
            Layer::Rtrm => 4,
        }
    }

    /// Human-readable lane label.
    pub fn label(self) -> &'static str {
        match self {
            Layer::Admission => "admission",
            Layer::Serve => "serve",
            Layer::Sched => "sched",
            Layer::Vm => "vm",
            Layer::Rtrm => "rtrm",
        }
    }
}

/// One recorded cross-layer event on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Causal identity this event belongs to.
    pub trace: TraceId,
    /// Owning tenant (Chrome `pid`).
    pub tenant: u64,
    /// Producing layer (Chrome `tid`).
    pub layer: Layer,
    /// Event name (static so recording never allocates).
    pub name: &'static str,
    /// Virtual start time (seconds).
    pub start_s: f64,
    /// Virtual end time (seconds), clamped `>= start_s` on record.
    pub end_s: f64,
    /// Layer-specific scalar: joules for `Vm`/energy events, seconds
    /// of probe cost for `Sched` placements, watts for `Rtrm` caps.
    pub value: f64,
    /// Linked span in the virtual-time span ring, or [`SpanId::NONE`].
    pub span: SpanId,
}

struct StoreInner {
    events: Vec<TraceEvent>,
}

/// Bounded collector of [`TraceEvent`]s (see module docs).
pub struct TraceStore {
    inner: Mutex<StoreInner>,
    dropped: Counter,
    capacity: usize,
    sample_every: u64,
}

impl TraceStore {
    /// A store retaining the first `capacity` events (min 1) of
    /// traces kept by head-based sampling at rate `1/sample_every`.
    pub fn new(capacity: usize, sample_every: u64) -> Self {
        let capacity = capacity.max(1);
        TraceStore {
            inner: Mutex::new(StoreInner {
                events: Vec::with_capacity(capacity.min(4096)),
            }),
            dropped: Counter::new(),
            capacity,
            sample_every,
        }
    }

    /// The configured head-based sampling period.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Derives a request context using this store's sampling period.
    #[inline]
    pub fn derive(&self, tenant: u64, probe_seed: u64, batch: u64, seq: u32) -> TraceCtx {
        TraceCtx::derive(tenant, probe_seed, batch, seq, self.sample_every)
    }

    /// Records one event. Returns `true` when retained; past capacity
    /// the event is counted in [`dropped`](TraceStore::dropped)
    /// instead — keep-first retention, so the retained prefix is a
    /// deterministic function of record order.
    pub fn record(&self, event: TraceEvent) -> bool {
        let event = TraceEvent {
            end_s: event.end_s.max(event.start_s),
            ..event
        };
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if inner.events.len() < self.capacity {
            inner.events.push(event);
            true
        } else {
            drop(inner);
            self.dropped.inc();
            false
        }
    }

    /// Events dropped because the store was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Handle to the drop counter, for adoption into a registry via
    /// `MetricsRegistry::attach_counter`.
    pub fn dropped_counter(&self) -> &Counter {
        &self.dropped
    }

    /// Retained events (record order).
    pub fn events(&self) -> Vec<TraceEvent> {
        match self.inner.lock() {
            Ok(guard) => guard.events.clone(),
            Err(poisoned) => poisoned.into_inner().events.clone(),
        }
    }

    /// Retained events of one trace (record order).
    pub fn events_for(&self, trace: TraceId) -> Vec<TraceEvent> {
        self.events()
            .into_iter()
            .filter(|event| event.trace == trace)
            .collect()
    }

    /// Retained event count (≤ capacity).
    pub fn len(&self) -> usize {
        match self.inner.lock() {
            Ok(guard) => guard.events.len(),
            Err(poisoned) => poisoned.into_inner().events.len(),
        }
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Chrome `trace_event` JSON of the retained events.
    ///
    /// Each event becomes a complete (`ph:"X"`) slice with virtual
    /// microsecond timestamps, `pid` = tenant, `tid` = layer lane, and
    /// the trace id plus layer scalar under `args`. Load the output in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 + events.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ts_us = event.start_s * 1e6;
            let dur_us = (event.end_s - event.start_s) * 1e6;
            out.push_str(&format!(
                "{{\"name\":{:?},\"cat\":{:?},\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"trace\":\"{}\",\"value\":{:e},\"span\":{}}}}}",
                event.name,
                event.layer.label(),
                ts_us,
                dur_us,
                event.tenant,
                event.layer.index(),
                event.trace.to_hex(),
                event.value,
                event.span.0,
            ));
        }
        out.push_str("]}");
        out
    }

    /// Text waterfall of one trace: every retained event on an aligned
    /// virtual-time axis, one row per event, lanes in the left gutter.
    pub fn waterfall(&self, trace: TraceId) -> String {
        let events = self.events_for(trace);
        if events.is_empty() {
            return format!("trace {} — no retained events\n", trace.to_hex());
        }
        let t0 = events
            .iter()
            .map(|e| e.start_s)
            .fold(f64::INFINITY, f64::min);
        let t1 = events
            .iter()
            .map(|e| e.end_s)
            .fold(f64::NEG_INFINITY, f64::max);
        let span_s = (t1 - t0).max(1e-12);
        const COLS: usize = 40;
        let mut out = format!(
            "trace {} (tenant {}) — {} events over {:.6} s\n",
            trace.to_hex(),
            events[0].tenant,
            events.len(),
            t1 - t0,
        );
        for event in &events {
            let lead = (((event.start_s - t0) / span_s) * COLS as f64).floor() as usize;
            let lead = lead.min(COLS - 1);
            let width = (((event.end_s - event.start_s) / span_s) * COLS as f64).ceil() as usize;
            let width = width.clamp(1, COLS - lead);
            let mut bar = String::with_capacity(COLS);
            bar.push_str(&" ".repeat(lead));
            bar.push_str(&"█".repeat(width));
            bar.push_str(&" ".repeat(COLS - lead - width));
            out.push_str(&format!(
                "  [{:<9}] |{}| {:>12.6}s +{:.6}s {} ({:e})\n",
                event.layer.label(),
                bar,
                event.start_s - t0,
                event.end_s - event.start_s,
                event.name,
                event.value,
            ));
        }
        out
    }
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("retained", &self.len())
            .field("dropped", &self.dropped())
            .field("capacity", &self.capacity)
            .field("sample_every", &self.sample_every)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(trace: TraceId, layer: Layer, start_s: f64, end_s: f64) -> TraceEvent {
        TraceEvent {
            trace,
            tenant: 7,
            layer,
            name: "ev",
            start_s,
            end_s,
            value: 1.0,
            span: SpanId::NONE,
        }
    }

    #[test]
    fn derive_is_pure_and_nonzero() {
        let a = TraceCtx::derive(3, 0xdead_beef, 11, 2, 1);
        let b = TraceCtx::derive(3, 0xdead_beef, 11, 2, 1);
        assert_eq!(a, b, "derivation is a pure function of its inputs");
        assert!(!a.id.is_none());
        assert!(a.sampled, "sample_every=1 keeps everything");
        assert_eq!(a.tenant, 3);
    }

    #[test]
    fn derive_distinguishes_every_component() {
        let base = TraceCtx::derive(3, 5, 7, 9, 1).id;
        assert_ne!(base, TraceCtx::derive(4, 5, 7, 9, 1).id);
        assert_ne!(base, TraceCtx::derive(3, 6, 7, 9, 1).id);
        assert_ne!(base, TraceCtx::derive(3, 5, 8, 9, 1).id);
        assert_ne!(base, TraceCtx::derive(3, 5, 7, 10, 1).id);
    }

    #[test]
    fn sampling_is_head_based_and_roughly_proportional() {
        let mut kept = 0;
        for seq in 0..4000u32 {
            if TraceCtx::derive(1, 42, 0, seq, 4).sampled {
                kept += 1;
            }
        }
        assert!(
            (800..1200).contains(&kept),
            "~1/4 of 4000 traces kept, got {kept}"
        );
    }

    #[test]
    fn store_keeps_first_and_counts_drops() {
        let store = TraceStore::new(2, 1);
        let id = TraceId(9);
        assert!(store.record(event(id, Layer::Serve, 0.0, 1.0)));
        assert!(store.record(event(id, Layer::Vm, 1.0, 2.0)));
        assert!(!store.record(event(id, Layer::Rtrm, 2.0, 3.0)));
        assert_eq!(store.len(), 2);
        assert_eq!(store.dropped(), 1);
        assert_eq!(store.events()[0].layer, Layer::Serve);
    }

    #[test]
    fn malformed_interval_is_clamped() {
        let store = TraceStore::new(4, 1);
        store.record(event(TraceId(1), Layer::Sched, 5.0, 1.0));
        let got = store.events()[0];
        assert_eq!(got.end_s, 5.0);
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        let store = TraceStore::new(4, 1);
        let ctx = TraceCtx::derive(2, 3, 4, 5, 1);
        store.record(event(ctx.id, Layer::Admission, 0.5, 0.5));
        store.record(event(ctx.id, Layer::Vm, 0.5, 0.75));
        let json = store.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"vm\""));
        assert!(json.contains(&ctx.id.to_hex()));
        assert_eq!(json.matches("{\"name\"").count(), 2);
    }

    #[test]
    fn waterfall_renders_each_event_row() {
        let store = TraceStore::new(8, 1);
        let id = TraceId(0xabc);
        store.record(event(id, Layer::Admission, 0.0, 0.0));
        store.record(event(id, Layer::Serve, 0.0, 2.0));
        store.record(event(id, Layer::Vm, 1.0, 2.0));
        let text = store.waterfall(id);
        assert_eq!(text.lines().count(), 4, "header + 3 rows");
        assert!(text.contains("[admission]"));
        assert!(text.contains("[vm       ]"));
        assert!(store.waterfall(TraceId(1)).contains("no retained events"));
    }
}
