//! The collect-analyse-decide-act control loop.
//!
//! Paper §II: "The application monitoring and autotuning will be supported
//! by a runtime layer implementing an application level
//! collect-analyse-decide-act loop." This module gives that loop a shape:
//! a [`CadaController`] implements the four stages; [`CadaLoop`] drives it
//! on a fixed decision period and records what happened. The autotuner's
//! runtime manager and the RTRM node controllers are both written against
//! this trait.

use std::fmt;

/// Outcome of one control-loop round.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Keep the current configuration.
    Stay,
    /// Switch to a new configuration, identified by an opaque label.
    Switch(String),
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Stay => write!(f, "stay"),
            Decision::Switch(to) => write!(f, "switch -> {to}"),
        }
    }
}

/// The four stages of the ANTAREX runtime adaptation loop.
///
/// `Obs` is whatever the collect stage produces (sensor snapshot), `Sum`
/// the analysed summary the decide stage consumes.
pub trait CadaController {
    /// Raw observation gathered each round.
    type Obs;
    /// Analysed summary.
    type Sum;

    /// Collect: sample the monitors at simulated time `time`.
    fn collect(&mut self, time: f64) -> Self::Obs;
    /// Analyse: reduce an observation to a summary (statistics, trends).
    fn analyse(&mut self, obs: Self::Obs) -> Self::Sum;
    /// Decide: choose to stay or switch configurations.
    fn decide(&mut self, summary: &Self::Sum) -> Decision;
    /// Act: enact a switch decision (reconfigure knobs, notify the RTRM).
    fn act(&mut self, decision: &Decision);
}

/// Record of one executed round.
#[derive(Debug, Clone, PartialEq)]
pub struct Round {
    /// Time the round ran.
    pub time: f64,
    /// The decision taken.
    pub decision: Decision,
}

/// Drives a [`CadaController`] on a fixed decision period.
#[derive(Debug)]
pub struct CadaLoop<C> {
    controller: C,
    period: f64,
    next_run: f64,
    rounds: Vec<Round>,
}

impl<C: CadaController> CadaLoop<C> {
    /// Creates a loop running the controller every `period` seconds,
    /// starting at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    pub fn new(controller: C, period: f64) -> Self {
        assert!(period > 0.0, "decision period must be positive");
        CadaLoop {
            controller,
            period,
            next_run: 0.0,
            rounds: Vec::new(),
        }
    }

    /// Decision period in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The wrapped controller.
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// Mutable access to the controller.
    pub fn controller_mut(&mut self) -> &mut C {
        &mut self.controller
    }

    /// Advances the loop to `now`, executing every due round in order.
    /// Returns the decisions taken during this advance.
    pub fn advance_to(&mut self, now: f64) -> Vec<Decision> {
        let mut taken = Vec::new();
        while self.next_run <= now {
            let time = self.next_run;
            let obs = self.controller.collect(time);
            let summary = self.controller.analyse(obs);
            let decision = self.controller.decide(&summary);
            self.controller.act(&decision);
            self.rounds.push(Round {
                time,
                decision: decision.clone(),
            });
            taken.push(decision);
            self.next_run += self.period;
        }
        taken
    }

    /// All rounds executed so far.
    pub fn rounds(&self) -> &[Round] {
        &self.rounds
    }

    /// Number of switch decisions taken so far.
    pub fn switch_count(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| matches!(r.decision, Decision::Switch(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy controller: switches to "low" whenever the reading exceeds 10.
    struct Thermostat {
        readings: Vec<f64>,
        cursor: usize,
        acted: Vec<Decision>,
    }

    impl CadaController for Thermostat {
        type Obs = f64;
        type Sum = f64;

        fn collect(&mut self, _time: f64) -> f64 {
            let v = self.readings[self.cursor.min(self.readings.len() - 1)];
            self.cursor += 1;
            v
        }

        fn analyse(&mut self, obs: f64) -> f64 {
            obs
        }

        fn decide(&mut self, summary: &f64) -> Decision {
            if *summary > 10.0 {
                Decision::Switch("low".into())
            } else {
                Decision::Stay
            }
        }

        fn act(&mut self, decision: &Decision) {
            self.acted.push(decision.clone());
        }
    }

    #[test]
    fn rounds_fire_on_schedule() {
        let controller = Thermostat {
            readings: vec![5.0, 12.0, 8.0, 20.0],
            cursor: 0,
            acted: vec![],
        };
        let mut cada = CadaLoop::new(controller, 1.0);
        let decisions = cada.advance_to(3.0);
        assert_eq!(decisions.len(), 4, "t = 0, 1, 2, 3");
        assert_eq!(cada.switch_count(), 2);
        assert_eq!(cada.controller().acted.len(), 4);
        assert_eq!(
            decisions[1],
            Decision::Switch("low".into()),
            "12.0 > 10.0 at t=1"
        );
    }

    #[test]
    fn advance_is_incremental() {
        let controller = Thermostat {
            readings: vec![0.0; 100],
            cursor: 0,
            acted: vec![],
        };
        let mut cada = CadaLoop::new(controller, 2.0);
        assert_eq!(cada.advance_to(1.9).len(), 1, "only t=0 fired");
        assert_eq!(cada.advance_to(6.0).len(), 3, "t = 2, 4, 6");
        assert_eq!(cada.rounds().len(), 4);
        assert_eq!(cada.advance_to(6.0).len(), 0, "no double fire");
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_rejected() {
        let controller = Thermostat {
            readings: vec![0.0],
            cursor: 0,
            acted: vec![],
        };
        let _ = CadaLoop::new(controller, 0.0);
    }

    #[test]
    fn decision_display() {
        assert_eq!(Decision::Stay.to_string(), "stay");
        assert_eq!(Decision::Switch("p2".into()).to_string(), "switch -> p2");
    }
}
