//! # antarex-monitor — runtime monitoring infrastructure
//!
//! The ANTAREX runtime (Silvano et al., DATE 2016, §II and §IV) keeps every
//! application under continuous observation: "the application is
//! continuously monitored to guarantee the required Service Level Agreement
//! (SLA)", with "an application level collect-analyse-decide-act loop"
//! feeding the autotuner and the resource manager. This crate is that
//! layer:
//!
//! * [`series`] — bounded time series with streaming statistics (mean,
//!   percentiles, EWMA) over sliding windows;
//! * [`sensor`] — named sensors and a registry, the introspection points
//!   the RTRM taps;
//! * [`sla`] — service-level objectives over monitored metrics, with
//!   violation accounting;
//! * [`cada`] — the collect→analyse→decide→act control-loop skeleton used
//!   by the application autotuner and the hierarchical power manager.
//!
//! Time is always supplied by the caller (simulated seconds), keeping every
//! component deterministic.
//!
//! # Examples
//!
//! ```
//! use antarex_monitor::series::TimeSeries;
//!
//! let mut latency = TimeSeries::with_capacity(128);
//! for (t, v) in [(0.0, 12.0), (1.0, 15.0), (2.0, 11.0)] {
//!     latency.push(t, v);
//! }
//! assert_eq!(latency.len(), 3);
//! assert!((latency.mean().unwrap() - 12.666).abs() < 0.01);
//! ```

pub mod cada;
pub mod drift;
pub mod resilient;
pub mod sensor;
pub mod series;
pub mod sla;

pub use resilient::{Estimate, Fill, ResilientSensor};
pub use sensor::{Sensor, SensorRegistry};
pub use series::TimeSeries;
pub use sla::{Sla, SlaKind, SlaReport};
