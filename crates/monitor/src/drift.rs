//! Regime-change (concept-drift) detection.
//!
//! Online learning "according to the most recent operating conditions"
//! (§IV) needs to know when conditions *changed*: a knowledge base tuned
//! for the winter cooling regime or the pre-rush traffic pattern is stale
//! afterwards. [`PageHinkley`] is the classical sequential change
//! detector: it accumulates deviations from the running mean and signals
//! when the cumulative drift exceeds a threshold.

/// Page–Hinkley test for upward or downward mean shifts.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    /// Minimum magnitude of change to care about (per-sample slack).
    delta: f64,
    /// Detection threshold on the cumulative statistic.
    lambda: f64,
    count: u64,
    mean: f64,
    cum_up: f64,
    min_up: f64,
    cum_down: f64,
    max_down: f64,
    detections: u64,
}

impl PageHinkley {
    /// Creates a detector: `delta` is the per-sample slack (changes
    /// smaller than this drift rate are ignored), `lambda` the cumulative
    /// threshold that triggers a detection.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive.
    pub fn new(delta: f64, lambda: f64) -> Self {
        assert!(delta > 0.0, "delta must be positive");
        assert!(lambda > 0.0, "lambda must be positive");
        PageHinkley {
            delta,
            lambda,
            count: 0,
            mean: 0.0,
            cum_up: 0.0,
            min_up: 0.0,
            cum_down: 0.0,
            max_down: 0.0,
            detections: 0,
        }
    }

    /// Number of drifts detected so far.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// The running mean of the monitored metric.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Feeds one observation; returns `true` when a regime change is
    /// detected (the detector then resets to track the new regime).
    pub fn observe(&mut self, value: f64) -> bool {
        self.count += 1;
        self.mean += (value - self.mean) / self.count as f64;
        // upward shift statistic
        self.cum_up += value - self.mean - self.delta;
        self.min_up = self.min_up.min(self.cum_up);
        // downward shift statistic
        self.cum_down += value - self.mean + self.delta;
        self.max_down = self.max_down.max(self.cum_down);

        let up = self.cum_up - self.min_up > self.lambda;
        let down = self.max_down - self.cum_down > self.lambda;
        if up || down {
            self.detections += 1;
            self.reset_state();
            true
        } else {
            false
        }
    }

    fn reset_state(&mut self) {
        self.count = 0;
        self.mean = 0.0;
        self.cum_up = 0.0;
        self.min_up = 0.0;
        self.cum_down = 0.0;
        self.max_down = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(detector: &mut PageHinkley, values: impl IntoIterator<Item = f64>) -> Option<usize> {
        for (i, v) in values.into_iter().enumerate() {
            if detector.observe(v) {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn stable_stream_triggers_nothing() {
        let mut detector = PageHinkley::new(0.05, 5.0);
        let stable = (0..500).map(|i| 10.0 + 0.01 * ((i % 7) as f64 - 3.0));
        assert_eq!(feed(&mut detector, stable), None);
        assert_eq!(detector.detections(), 0);
        assert!((detector.mean() - 10.0).abs() < 0.1);
    }

    #[test]
    fn upward_shift_detected_promptly() {
        let mut detector = PageHinkley::new(0.05, 5.0);
        let before = std::iter::repeat_n(10.0f64, 100);
        assert_eq!(feed(&mut detector, before), None);
        let after = std::iter::repeat_n(13.0f64, 100);
        let hit = feed(&mut detector, after).expect("shift detected");
        assert!(hit < 20, "detected after {hit} samples");
        assert_eq!(detector.detections(), 1);
    }

    #[test]
    fn downward_shift_detected_too() {
        let mut detector = PageHinkley::new(0.05, 5.0);
        feed(&mut detector, std::iter::repeat_n(20.0f64, 100));
        let hit = feed(&mut detector, std::iter::repeat_n(16.0f64, 100));
        assert!(hit.is_some());
    }

    #[test]
    fn detector_rearms_after_detection() {
        let mut detector = PageHinkley::new(0.05, 5.0);
        feed(&mut detector, std::iter::repeat_n(10.0f64, 50));
        assert!(feed(&mut detector, std::iter::repeat_n(14.0f64, 50)).is_some());
        // settles in the new regime, then detects the next change
        assert_eq!(feed(&mut detector, std::iter::repeat_n(14.0f64, 100)), None);
        assert!(feed(&mut detector, std::iter::repeat_n(10.0f64, 50)).is_some());
        assert_eq!(detector.detections(), 2);
    }

    #[test]
    fn slack_suppresses_small_changes() {
        // delta larger than the shift: no detection
        let mut tolerant = PageHinkley::new(2.0, 5.0);
        feed(&mut tolerant, std::iter::repeat_n(10.0f64, 100));
        assert_eq!(feed(&mut tolerant, std::iter::repeat_n(10.5f64, 200)), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_params_rejected() {
        let _ = PageHinkley::new(0.0, 1.0);
    }
}
