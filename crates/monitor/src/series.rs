//! Bounded time series with streaming statistics.

use std::collections::VecDeque;

/// A timestamped sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulated time, in seconds.
    pub time: f64,
    /// Measured value.
    pub value: f64,
}

/// A bounded, append-only series of timestamped measurements.
///
/// When full, the oldest sample is evicted (sliding window by count). Use
/// [`TimeSeries::window_since`] for time-based windows.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    samples: VecDeque<Sample>,
    capacity: usize,
    total_pushed: u64,
    ewma: Option<f64>,
    ewma_alpha: f64,
}

impl TimeSeries {
    /// Creates a series retaining at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        TimeSeries {
            samples: VecDeque::with_capacity(capacity),
            capacity,
            total_pushed: 0,
            ewma: None,
            ewma_alpha: 0.2,
        }
    }

    /// Sets the EWMA smoothing factor (default 0.2).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn with_ewma_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        self.ewma_alpha = alpha;
        self
    }

    /// Appends a sample, evicting the oldest if at capacity.
    pub fn push(&mut self, time: f64, value: f64) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(Sample { time, value });
        self.total_pushed += 1;
        self.ewma = Some(match self.ewma {
            Some(prev) => prev + self.ewma_alpha * (value - prev),
            None => value,
        });
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total samples ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<Sample> {
        self.samples.back().copied()
    }

    /// Iterates over retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Mean of retained values.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|s| s.value).sum::<f64>() / self.samples.len() as f64)
    }

    /// Population standard deviation of retained values.
    pub fn stddev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .samples
            .iter()
            .map(|s| (s.value - mean).powi(2))
            .sum::<f64>()
            / self.samples.len() as f64;
        Some(var.sqrt())
    }

    /// Minimum retained value.
    pub fn min(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Maximum retained value.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Exponentially-weighted moving average of all pushed values.
    pub fn ewma(&self) -> Option<f64> {
        self.ewma
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of retained values, by the
    /// nearest-rank method. `q = 0.5` is the median, `q = 0.95` the p95.
    ///
    /// Non-finite samples (NaN from a dead sensor, ±∞ from a division
    /// gone wrong upstream) are excluded from the ranking rather than
    /// poisoning it; the result is `None` when no finite sample
    /// remains.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let mut values: Vec<f64> = self
            .samples
            .iter()
            .map(|s| s.value)
            .filter(|v| v.is_finite())
            .collect();
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let rank = ((values.len() as f64) * q).ceil() as usize;
        Some(values[rank.saturating_sub(1).min(values.len() - 1)])
    }

    /// Values of samples with `time >= since`, oldest first.
    pub fn window_since(&self, since: f64) -> Vec<Sample> {
        self.samples
            .iter()
            .filter(|s| s.time >= since)
            .copied()
            .collect()
    }

    /// Mean over the time window `[since, ..]`.
    pub fn mean_since(&self, since: f64) -> Option<f64> {
        let window = self.window_since(since);
        if window.is_empty() {
            return None;
        }
        Some(window.iter().map(|s| s.value).sum::<f64>() / window.len() as f64)
    }

    /// Slope of a least-squares linear fit over the retained samples
    /// (value units per second); `None` with fewer than two samples or a
    /// degenerate time span. The autotuner uses this to detect drift.
    pub fn trend(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let n = self.samples.len() as f64;
        let mean_t = self.samples.iter().map(|s| s.time).sum::<f64>() / n;
        let mean_v = self.samples.iter().map(|s| s.value).sum::<f64>() / n;
        let mut num = 0.0;
        let mut den = 0.0;
        for s in &self.samples {
            num += (s.time - mean_t) * (s.value - mean_v);
            den += (s.time - mean_t).powi(2);
        }
        if den == 0.0 {
            None
        } else {
            Some(num / den)
        }
    }

    /// Clears all retained samples and the EWMA state.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.ewma = None;
    }
}

impl Default for TimeSeries {
    fn default() -> Self {
        Self::with_capacity(256)
    }
}

impl Extend<(f64, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        for (time, value) in iter {
            self.push(time, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::with_capacity(1024);
        for (i, v) in values.iter().enumerate() {
            s.push(i as f64, *v);
        }
        s
    }

    #[test]
    fn basic_stats() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert!((s.stddev().unwrap() - 1.118).abs() < 1e-3);
        assert_eq!(s.last().unwrap().value, 4.0);
    }

    #[test]
    fn empty_stats_are_none() {
        let s = TimeSeries::with_capacity(4);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.trend(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut s = TimeSeries::with_capacity(3);
        s.extend((0..10).map(|i| (i as f64, i as f64)));
        assert_eq!(s.len(), 3);
        assert_eq!(s.min(), Some(7.0));
        assert_eq!(s.total_pushed(), 10);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let s = series(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.quantile(0.5), Some(3.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(5.0));
        assert_eq!(s.quantile(0.95), Some(5.0));
    }

    #[test]
    fn quantile_ignores_non_finite_samples() {
        let s = series(&[5.0, f64::NAN, 1.0, f64::INFINITY, 3.0]);
        assert_eq!(s.quantile(0.5), Some(3.0));
        assert_eq!(s.quantile(1.0), Some(5.0));
        let all_bad = series(&[f64::NAN, f64::NEG_INFINITY]);
        assert_eq!(all_bad.quantile(0.5), None);
    }

    #[test]
    fn ewma_tracks_recent_values() {
        let mut s = TimeSeries::with_capacity(8).with_ewma_alpha(0.5);
        s.push(0.0, 10.0);
        assert_eq!(s.ewma(), Some(10.0));
        s.push(1.0, 20.0);
        assert_eq!(s.ewma(), Some(15.0));
        s.push(2.0, 20.0);
        assert_eq!(s.ewma(), Some(17.5));
    }

    #[test]
    fn time_windows() {
        let s = series(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.window_since(3.0).len(), 2);
        assert_eq!(s.mean_since(3.0), Some(4.5));
        assert_eq!(s.mean_since(99.0), None);
    }

    #[test]
    fn trend_detects_slope() {
        let s = series(&[0.0, 2.0, 4.0, 6.0]);
        assert!((s.trend().unwrap() - 2.0).abs() < 1e-12);
        let flat = series(&[3.0, 3.0, 3.0]);
        assert!(flat.trend().unwrap().abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let mut s = series(&[1.0, 2.0]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.ewma(), None);
        assert_eq!(s.total_pushed(), 2, "lifetime counter preserved");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = TimeSeries::with_capacity(0);
    }
}
