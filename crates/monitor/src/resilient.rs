//! Sensor-loss tolerance: hold-last-value with an EWMA fallback.
//!
//! Thermal and power telemetry on a real machine is lossy: sensors
//! drop readings, I²C buses time out, and firmware occasionally
//! freezes a register so the same stale value repeats forever. A
//! control loop that feeds `NaN` (or a frozen 45 °C) straight into a
//! power capper either poisons every downstream mean or happily burns
//! past the thermal limit. [`ResilientSensor`] sits between a raw
//! reading and the controller and always produces a usable estimate,
//! tagged with how trustworthy it is:
//!
//! 1. **Fresh** — the reading arrived and is finite; it also updates a
//!    long-running EWMA of the signal.
//! 2. **Held** — the reading is missing (or non-finite, which is
//!    treated as missing); the last fresh value is repeated, for at
//!    most [`ResilientSensor::max_hold_s`] seconds.
//! 3. **Ewma** — the outage outlived the hold window; the estimate
//!    decays toward the long-term EWMA, which is robust to whatever
//!    transient the signal was riding when it vanished.
//! 4. **Unavailable** — nothing was ever observed; the caller must use
//!    its own safe default (e.g. assume the thermal limit).
//!
//! The struct is deliberately monitor-side and value-only: the fault
//! injector (`antarex_sim::faults`) reports *that* a sensor is stuck
//! and since when, while this type owns the last-read value — keeping
//! the injector pure and the policy in one place.

/// How the estimate returned by [`ResilientSensor::observe`] was
/// obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// A finite reading arrived; the estimate is the reading.
    Fresh,
    /// Reading missing; the last fresh value is being held.
    Held,
    /// Outage exceeded the hold window; estimate fell back to the EWMA.
    Ewma,
    /// No fresh reading has ever been seen.
    Unavailable,
}

/// The estimate and its provenance for one observation instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Best available value, if any reading was ever seen.
    pub value: Option<f64>,
    /// How the value was produced.
    pub fill: Fill,
}

/// A single sensor channel hardened against dropouts.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientSensor {
    /// Maximum age of a held value before falling back to the EWMA,
    /// seconds.
    pub max_hold_s: f64,
    /// EWMA smoothing factor in `(0, 1]`; the long-term average tracks
    /// `avg += alpha * (reading - avg)` on every fresh reading.
    pub alpha: f64,
    last_value: Option<f64>,
    last_fresh_at: f64,
    ewma: Option<f64>,
    fresh: u64,
    missing: u64,
}

impl ResilientSensor {
    /// Creates a channel holding values up to `max_hold_s` and
    /// smoothing with `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `max_hold_s` is negative or `alpha` is outside
    /// `(0, 1]`.
    pub fn new(max_hold_s: f64, alpha: f64) -> Self {
        assert!(max_hold_s >= 0.0, "hold window must be non-negative");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        ResilientSensor {
            max_hold_s,
            alpha,
            last_value: None,
            last_fresh_at: f64::NEG_INFINITY,
            ewma: None,
            fresh: 0,
            missing: 0,
        }
    }

    /// A sensible default for thermal telemetry sampled every few
    /// seconds: hold for 30 s, EWMA with α = 0.05.
    pub fn thermal() -> Self {
        ResilientSensor::new(30.0, 0.05)
    }

    /// Feeds one observation instant. `reading` is `None` when the
    /// sensor dropped out; non-finite readings are treated as missing
    /// (a NaN must never escape into the control loop).
    pub fn observe(&mut self, time_s: f64, reading: Option<f64>) -> Estimate {
        match reading {
            Some(v) if v.is_finite() => {
                self.fresh += 1;
                self.last_value = Some(v);
                self.last_fresh_at = time_s;
                self.ewma = Some(match self.ewma {
                    Some(avg) => avg + self.alpha * (v - avg),
                    None => v,
                });
                Estimate {
                    value: Some(v),
                    fill: Fill::Fresh,
                }
            }
            _ => {
                self.missing += 1;
                match self.last_value {
                    None => Estimate {
                        value: None,
                        fill: Fill::Unavailable,
                    },
                    Some(held) => {
                        if time_s - self.last_fresh_at <= self.max_hold_s {
                            Estimate {
                                value: Some(held),
                                fill: Fill::Held,
                            }
                        } else {
                            Estimate {
                                value: self.ewma,
                                fill: Fill::Ewma,
                            }
                        }
                    }
                }
            }
        }
    }

    /// The long-term EWMA, if any fresh reading was ever seen.
    pub fn ewma(&self) -> Option<f64> {
        self.ewma
    }

    /// Count of fresh readings observed.
    pub fn fresh_count(&self) -> u64 {
        self.fresh
    }

    /// Count of missing (or non-finite) readings observed.
    pub fn missing_count(&self) -> u64 {
        self.missing
    }

    /// Fraction of observations that were missing, in `[0, 1]`.
    pub fn loss_rate(&self) -> f64 {
        let total = self.fresh + self.missing;
        if total == 0 {
            0.0
        } else {
            self.missing as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_readings_pass_through() {
        let mut s = ResilientSensor::new(10.0, 0.5);
        let e = s.observe(0.0, Some(40.0));
        assert_eq!(e.value, Some(40.0));
        assert_eq!(e.fill, Fill::Fresh);
        assert_eq!(s.ewma(), Some(40.0));
    }

    #[test]
    fn short_outage_holds_last_value() {
        let mut s = ResilientSensor::new(10.0, 0.5);
        s.observe(0.0, Some(42.0));
        let e = s.observe(5.0, None);
        assert_eq!(
            e,
            Estimate {
                value: Some(42.0),
                fill: Fill::Held
            }
        );
        // boundary: exactly max_hold_s still holds
        let e = s.observe(10.0, None);
        assert_eq!(e.fill, Fill::Held);
    }

    #[test]
    fn long_outage_falls_back_to_ewma() {
        let mut s = ResilientSensor::new(10.0, 0.5);
        s.observe(0.0, Some(40.0));
        s.observe(1.0, Some(60.0)); // ewma = 50
        let e = s.observe(20.0, None);
        assert_eq!(
            e,
            Estimate {
                value: Some(50.0),
                fill: Fill::Ewma
            }
        );
    }

    #[test]
    fn nan_and_infinite_are_missing() {
        let mut s = ResilientSensor::new(10.0, 0.5);
        s.observe(0.0, Some(45.0));
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let e = s.observe(1.0, Some(bad));
            assert_eq!(e.fill, Fill::Held);
            assert_eq!(e.value, Some(45.0), "no NaN may escape");
        }
        assert_eq!(s.missing_count(), 3);
    }

    #[test]
    fn never_observed_is_unavailable() {
        let mut s = ResilientSensor::thermal();
        let e = s.observe(0.0, None);
        assert_eq!(
            e,
            Estimate {
                value: None,
                fill: Fill::Unavailable
            }
        );
    }

    #[test]
    fn recovery_resets_hold_clock() {
        let mut s = ResilientSensor::new(10.0, 0.5);
        s.observe(0.0, Some(40.0));
        s.observe(50.0, Some(44.0)); // fresh again, late
        let e = s.observe(55.0, None);
        assert_eq!(
            e,
            Estimate {
                value: Some(44.0),
                fill: Fill::Held
            }
        );
    }

    #[test]
    fn loss_rate_counts() {
        let mut s = ResilientSensor::thermal();
        s.observe(0.0, Some(40.0));
        s.observe(1.0, None);
        s.observe(2.0, None);
        s.observe(3.0, Some(41.0));
        assert_eq!(s.fresh_count(), 2);
        assert_eq!(s.missing_count(), 2);
        assert!((s.loss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let _ = ResilientSensor::new(10.0, 0.0);
    }
}
