//! Named sensors and the monitoring registry.
//!
//! Sensors are the "novel introspection points" of the paper's §V: every
//! component (node power model, application progress counter, thermal
//! model) publishes measurements under a name; controllers read them
//! through a shared [`SensorRegistry`].

use crate::series::TimeSeries;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;

/// A single named measurement stream.
#[derive(Debug)]
pub struct Sensor {
    name: String,
    unit: &'static str,
    series: TimeSeries,
}

impl Sensor {
    /// Creates a sensor with a default 256-sample window.
    pub fn new(name: impl Into<String>, unit: &'static str) -> Self {
        Sensor {
            name: name.into(),
            unit,
            series: TimeSeries::default(),
        }
    }

    /// Sensor name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unit label (e.g. `"W"`, `"s"`, `"°C"`).
    pub fn unit(&self) -> &'static str {
        self.unit
    }

    /// Records a measurement.
    pub fn record(&mut self, time: f64, value: f64) {
        self.series.push(time, value);
    }

    /// The underlying series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

/// A thread-safe registry of sensors, shared between the simulated
/// platform, the autotuner and the resource manager.
///
/// # Examples
///
/// ```
/// use antarex_monitor::SensorRegistry;
///
/// let registry = SensorRegistry::new();
/// registry.record("node0.power", "W", 0.0, 212.0);
/// registry.record("node0.power", "W", 1.0, 218.0);
/// assert_eq!(registry.last("node0.power"), Some(218.0));
/// assert_eq!(registry.mean("node0.power"), Some(215.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SensorRegistry {
    inner: Arc<Mutex<BTreeMap<String, Sensor>>>,
}

impl SensorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a measurement, creating the sensor on first use.
    pub fn record(&self, name: &str, unit: &'static str, time: f64, value: f64) {
        let mut sensors = self.inner.lock().expect("sensor registry lock poisoned");
        sensors
            .entry(name.to_string())
            .or_insert_with(|| Sensor::new(name, unit))
            .record(time, value);
    }

    /// Latest value of a sensor.
    pub fn last(&self, name: &str) -> Option<f64> {
        self.inner
            .lock()
            .expect("sensor registry lock poisoned")
            .get(name)?
            .series()
            .last()
            .map(|s| s.value)
    }

    /// Mean over the sensor's retained window.
    pub fn mean(&self, name: &str) -> Option<f64> {
        self.inner
            .lock()
            .expect("sensor registry lock poisoned")
            .get(name)?
            .series()
            .mean()
    }

    /// Quantile over the sensor's retained window.
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        self.inner
            .lock()
            .expect("sensor registry lock poisoned")
            .get(name)?
            .series()
            .quantile(q)
    }

    /// EWMA of the sensor.
    pub fn ewma(&self, name: &str) -> Option<f64> {
        self.inner
            .lock()
            .expect("sensor registry lock poisoned")
            .get(name)?
            .series()
            .ewma()
    }

    /// Applies `f` to the sensor's series, returning its result.
    pub fn with_series<R>(&self, name: &str, f: impl FnOnce(&TimeSeries) -> R) -> Option<R> {
        let sensors = self.inner.lock().expect("sensor registry lock poisoned");
        sensors.get(name).map(|s| f(s.series()))
    }

    /// Names of all registered sensors, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("sensor registry lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered sensors.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("sensor registry lock poisoned")
            .len()
    }

    /// Returns `true` if no sensors are registered.
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .expect("sensor registry lock poisoned")
            .is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let registry = SensorRegistry::new();
        registry.record("app.latency", "s", 0.0, 0.1);
        registry.record("app.latency", "s", 1.0, 0.3);
        assert_eq!(registry.last("app.latency"), Some(0.3));
        assert!((registry.mean("app.latency").unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(registry.last("missing"), None);
    }

    #[test]
    fn registry_is_cloneable_and_shared() {
        let a = SensorRegistry::new();
        let b = a.clone();
        a.record("x", "", 0.0, 1.0);
        assert_eq!(b.last("x"), Some(1.0), "clones share state");
    }

    #[test]
    fn names_sorted() {
        let registry = SensorRegistry::new();
        registry.record("zeta", "", 0.0, 0.0);
        registry.record("alpha", "", 0.0, 0.0);
        assert_eq!(
            registry.names(),
            vec!["alpha".to_string(), "zeta".to_string()]
        );
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn with_series_exposes_full_stats() {
        let registry = SensorRegistry::new();
        for i in 0..10 {
            registry.record("p", "W", i as f64, i as f64);
        }
        let trend = registry.with_series("p", |s| s.trend()).flatten().unwrap();
        assert!((trend - 1.0).abs() < 1e-9);
    }

    #[test]
    fn registry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SensorRegistry>();
    }
}
