//! Service-level agreements over monitored metrics.
//!
//! The paper requires "guaranteeing SLA both at the server- and at the
//! application-side ... related to the performance of the application, but
//! also to the maximum power budget" (§IV). An [`Sla`] expresses one such
//! objective over a sensor; [`Sla::check`] classifies measurements and
//! accumulates a violation record used by the adaptive experiments (U2).

use crate::series::TimeSeries;
use std::fmt;

/// Direction of a service-level objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlaKind {
    /// The metric must stay at or below the threshold (latency, power).
    UpperBound,
    /// The metric must stay at or above the threshold (throughput, quality).
    LowerBound,
}

/// A service-level objective over one metric.
#[derive(Debug, Clone)]
pub struct Sla {
    name: String,
    kind: SlaKind,
    threshold: f64,
    checked: u64,
    violations: u64,
    history: TimeSeries,
}

impl Sla {
    /// Creates an upper-bound SLA (`metric <= threshold`).
    pub fn upper_bound(name: impl Into<String>, threshold: f64) -> Self {
        Sla::new(name, SlaKind::UpperBound, threshold)
    }

    /// Creates a lower-bound SLA (`metric >= threshold`).
    pub fn lower_bound(name: impl Into<String>, threshold: f64) -> Self {
        Sla::new(name, SlaKind::LowerBound, threshold)
    }

    fn new(name: impl Into<String>, kind: SlaKind, threshold: f64) -> Self {
        Sla {
            name: name.into(),
            kind,
            threshold,
            checked: 0,
            violations: 0,
            history: TimeSeries::with_capacity(512),
        }
    }

    /// Objective name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Objective direction.
    pub fn kind(&self) -> SlaKind {
        self.kind
    }

    /// Current threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Renegotiates the threshold (SLAs may be renegotiated at runtime).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// Returns `true` if `value` satisfies the objective.
    pub fn satisfied_by(&self, value: f64) -> bool {
        match self.kind {
            SlaKind::UpperBound => value <= self.threshold,
            SlaKind::LowerBound => value >= self.threshold,
        }
    }

    /// Checks a measurement, recording it and counting violations.
    /// Returns `true` when the objective is met.
    pub fn check(&mut self, time: f64, value: f64) -> bool {
        self.checked += 1;
        self.history.push(time, value);
        let ok = self.satisfied_by(value);
        if !ok {
            self.violations += 1;
        }
        ok
    }

    /// Headroom of a measurement: positive when satisfied, negative when
    /// violating, normalized by the threshold magnitude when non-zero.
    /// Controllers use this as their error signal.
    pub fn headroom(&self, value: f64) -> f64 {
        let raw = match self.kind {
            SlaKind::UpperBound => self.threshold - value,
            SlaKind::LowerBound => value - self.threshold,
        };
        if self.threshold.abs() > f64::EPSILON {
            raw / self.threshold.abs()
        } else {
            raw
        }
    }

    /// Summary of all checks so far.
    pub fn report(&self) -> SlaReport {
        SlaReport {
            checked: self.checked,
            violations: self.violations,
        }
    }

    /// The recorded measurement history.
    pub fn history(&self) -> &TimeSeries {
        &self.history
    }
}

/// Violation summary of an [`Sla`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlaReport {
    /// Measurements checked.
    pub checked: u64,
    /// Measurements that violated the objective.
    pub violations: u64,
}

impl SlaReport {
    /// Fraction of checks that violated the objective (0 when unchecked).
    pub fn violation_rate(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.violations as f64 / self.checked as f64
        }
    }

    /// Error-budget burn rate against a target good fraction:
    /// `violation_rate / (1 − target)`. A burn of 1 consumes the budget
    /// exactly at the sustainable pace; above 1 exhausts it early. The
    /// target is clamped into `[0, 1 − 1e-9]` so the budget is never
    /// zero.
    pub fn burn_rate(&self, target: f64) -> f64 {
        let budget = 1.0 - target.clamp(0.0, 1.0 - 1e-9);
        self.violation_rate() / budget
    }
}

impl fmt::Display for SlaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} violations ({:.1}%)",
            self.violations,
            self.checked,
            100.0 * self.violation_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bound_checks() {
        let mut sla = Sla::upper_bound("latency", 0.5);
        assert!(sla.check(0.0, 0.3));
        assert!(!sla.check(1.0, 0.7));
        assert!(sla.check(2.0, 0.5), "boundary satisfies");
        let report = sla.report();
        assert_eq!(report.checked, 3);
        assert_eq!(report.violations, 1);
        assert!((report.violation_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_checks() {
        let mut sla = Sla::lower_bound("throughput", 100.0);
        assert!(!sla.check(0.0, 80.0));
        assert!(sla.check(1.0, 120.0));
        assert_eq!(sla.report().violations, 1);
    }

    #[test]
    fn headroom_signs() {
        let sla = Sla::upper_bound("power", 200.0);
        assert!(sla.headroom(150.0) > 0.0);
        assert!(sla.headroom(250.0) < 0.0);
        assert!((sla.headroom(150.0) - 0.25).abs() < 1e-12, "normalized");
        let sla = Sla::lower_bound("quality", 0.9);
        assert!(sla.headroom(0.95) > 0.0);
        assert!(sla.headroom(0.5) < 0.0);
    }

    #[test]
    fn renegotiation() {
        let mut sla = Sla::upper_bound("latency", 0.5);
        assert!(!sla.satisfied_by(0.8));
        sla.set_threshold(1.0);
        assert!(sla.satisfied_by(0.8));
    }

    #[test]
    fn burn_rate_scales_violation_rate_by_budget() {
        let report = SlaReport {
            checked: 1000,
            violations: 1,
        };
        // 0.1% violations against a 99.9% target: burning at exactly 1×
        assert!((report.burn_rate(0.999) - 1.0).abs() < 1e-9);
        // same violations against a 99.99% target: 10× over budget
        assert!((report.burn_rate(0.9999) - 10.0).abs() < 1e-6);
        // a perfect record burns nothing at any target
        let clean = SlaReport {
            checked: 50,
            violations: 0,
        };
        assert_eq!(clean.burn_rate(0.999), 0.0);
        // target 1.0 is clamped, not a division by zero
        assert!(report.burn_rate(1.0).is_finite());
    }

    #[test]
    fn report_display() {
        let mut sla = Sla::upper_bound("x", 1.0);
        sla.check(0.0, 2.0);
        assert_eq!(sla.report().to_string(), "1/1 violations (100.0%)");
    }

    #[test]
    fn history_recorded() {
        let mut sla = Sla::upper_bound("x", 1.0);
        for i in 0..5 {
            sla.check(i as f64, i as f64);
        }
        assert_eq!(sla.history().len(), 5);
    }
}
