//! Service-level agreements over monitored metrics.
//!
//! The paper requires "guaranteeing SLA both at the server- and at the
//! application-side ... related to the performance of the application, but
//! also to the maximum power budget" (§IV). An [`Sla`] expresses one such
//! objective over a sensor; [`Sla::check`] classifies measurements and
//! accumulates a violation record used by the adaptive experiments (U2).

use crate::series::TimeSeries;
use std::fmt;

/// Direction of a service-level objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlaKind {
    /// The metric must stay at or below the threshold (latency, power).
    UpperBound,
    /// The metric must stay at or above the threshold (throughput, quality).
    LowerBound,
}

/// A service-level objective over one metric.
#[derive(Debug, Clone)]
pub struct Sla {
    name: String,
    kind: SlaKind,
    threshold: f64,
    checked: u64,
    violations: u64,
    history: TimeSeries,
}

impl Sla {
    /// Creates an upper-bound SLA (`metric <= threshold`).
    pub fn upper_bound(name: impl Into<String>, threshold: f64) -> Self {
        Sla::new(name, SlaKind::UpperBound, threshold)
    }

    /// Creates a lower-bound SLA (`metric >= threshold`).
    pub fn lower_bound(name: impl Into<String>, threshold: f64) -> Self {
        Sla::new(name, SlaKind::LowerBound, threshold)
    }

    fn new(name: impl Into<String>, kind: SlaKind, threshold: f64) -> Self {
        Sla {
            name: name.into(),
            kind,
            threshold,
            checked: 0,
            violations: 0,
            history: TimeSeries::with_capacity(512),
        }
    }

    /// Objective name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Objective direction.
    pub fn kind(&self) -> SlaKind {
        self.kind
    }

    /// Current threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Renegotiates the threshold (SLAs may be renegotiated at runtime).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// Returns `true` if `value` satisfies the objective.
    pub fn satisfied_by(&self, value: f64) -> bool {
        match self.kind {
            SlaKind::UpperBound => value <= self.threshold,
            SlaKind::LowerBound => value >= self.threshold,
        }
    }

    /// Checks a measurement, recording it and counting violations.
    /// Returns `true` when the objective is met.
    pub fn check(&mut self, time: f64, value: f64) -> bool {
        self.checked += 1;
        self.history.push(time, value);
        let ok = self.satisfied_by(value);
        if !ok {
            self.violations += 1;
        }
        ok
    }

    /// Headroom of a measurement: positive when satisfied, negative when
    /// violating, normalized by the threshold magnitude when non-zero.
    /// Controllers use this as their error signal.
    pub fn headroom(&self, value: f64) -> f64 {
        let raw = match self.kind {
            SlaKind::UpperBound => self.threshold - value,
            SlaKind::LowerBound => value - self.threshold,
        };
        if self.threshold.abs() > f64::EPSILON {
            raw / self.threshold.abs()
        } else {
            raw
        }
    }

    /// Summary of all checks so far.
    pub fn report(&self) -> SlaReport {
        SlaReport {
            checked: self.checked,
            violations: self.violations,
        }
    }

    /// The recorded measurement history.
    pub fn history(&self) -> &TimeSeries {
        &self.history
    }
}

/// Violation summary of an [`Sla`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlaReport {
    /// Measurements checked.
    pub checked: u64,
    /// Measurements that violated the objective.
    pub violations: u64,
}

impl SlaReport {
    /// Fraction of checks that violated the objective (0 when unchecked).
    pub fn violation_rate(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.violations as f64 / self.checked as f64
        }
    }

    /// Error-budget burn rate against a target good fraction:
    /// `violation_rate / (1 − target)`. A burn of 1 consumes the budget
    /// exactly at the sustainable pace; above 1 exhausts it early.
    ///
    /// Edge behavior is explicit rather than clamped away:
    ///
    /// * **zero-sample window** (`checked == 0`): returns `0.0` — no
    ///   evidence is no burn, so an idle tenant decays instead of
    ///   holding its last rate;
    /// * **zero error budget** (`target >= 1.0`): a perfect record
    ///   returns `0.0`, any violation returns [`f64::INFINITY`] — a
    ///   "never fail" target is either met or blown, never partially
    ///   burned;
    /// * negative targets are treated as `0.0` (budget of one).
    pub fn burn_rate(&self, target: f64) -> f64 {
        if self.checked == 0 {
            return 0.0;
        }
        if target >= 1.0 {
            return if self.violations == 0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        self.violation_rate() / (1.0 - target.max(0.0))
    }
}

impl fmt::Display for SlaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} violations ({:.1}%)",
            self.violations,
            self.checked,
            100.0 * self.violation_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bound_checks() {
        let mut sla = Sla::upper_bound("latency", 0.5);
        assert!(sla.check(0.0, 0.3));
        assert!(!sla.check(1.0, 0.7));
        assert!(sla.check(2.0, 0.5), "boundary satisfies");
        let report = sla.report();
        assert_eq!(report.checked, 3);
        assert_eq!(report.violations, 1);
        assert!((report.violation_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_checks() {
        let mut sla = Sla::lower_bound("throughput", 100.0);
        assert!(!sla.check(0.0, 80.0));
        assert!(sla.check(1.0, 120.0));
        assert_eq!(sla.report().violations, 1);
    }

    #[test]
    fn headroom_signs() {
        let sla = Sla::upper_bound("power", 200.0);
        assert!(sla.headroom(150.0) > 0.0);
        assert!(sla.headroom(250.0) < 0.0);
        assert!((sla.headroom(150.0) - 0.25).abs() < 1e-12, "normalized");
        let sla = Sla::lower_bound("quality", 0.9);
        assert!(sla.headroom(0.95) > 0.0);
        assert!(sla.headroom(0.5) < 0.0);
    }

    #[test]
    fn renegotiation() {
        let mut sla = Sla::upper_bound("latency", 0.5);
        assert!(!sla.satisfied_by(0.8));
        sla.set_threshold(1.0);
        assert!(sla.satisfied_by(0.8));
    }

    #[test]
    fn burn_rate_scales_violation_rate_by_budget() {
        let report = SlaReport {
            checked: 1000,
            violations: 1,
        };
        // 0.1% violations against a 99.9% target: burning at exactly 1×
        assert!((report.burn_rate(0.999) - 1.0).abs() < 1e-9);
        // same violations against a 99.99% target: 10× over budget
        assert!((report.burn_rate(0.9999) - 10.0).abs() < 1e-6);
        // a perfect record burns nothing at any target
        let clean = SlaReport {
            checked: 50,
            violations: 0,
        };
        assert_eq!(clean.burn_rate(0.999), 0.0);
    }

    #[test]
    fn burn_rate_edge_sentinels() {
        // zero-sample window: no evidence is no burn, at any target
        let empty = SlaReport::default();
        for target in [-1.0, 0.0, 0.5, 0.999, 1.0, 2.0] {
            assert_eq!(empty.burn_rate(target), 0.0, "target {target}");
        }
        // zero error budget: met or blown, never in between
        let clean = SlaReport {
            checked: 50,
            violations: 0,
        };
        let dirty = SlaReport {
            checked: 1000,
            violations: 1,
        };
        assert_eq!(clean.burn_rate(1.0), 0.0);
        assert_eq!(dirty.burn_rate(1.0), f64::INFINITY);
        assert_eq!(dirty.burn_rate(1.5), f64::INFINITY);
        // negative targets degrade to a budget of one
        assert_eq!(dirty.burn_rate(-3.0), dirty.violation_rate());
    }

    /// Hand-rolled xorshift so the property sweep needs no rand dep.
    fn next(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn burn_rate_properties_hold_over_random_reports() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..2000 {
            let checked = next(&mut state) % 10_000;
            let violations = if checked == 0 {
                0
            } else {
                next(&mut state) % (checked + 1)
            };
            let report = SlaReport {
                checked,
                violations,
            };
            let target = (next(&mut state) % 1_000_000) as f64 / 1_000_000.0;
            let burn = report.burn_rate(target);
            // non-negative, finite for any sub-unit target
            assert!(burn >= 0.0);
            assert!(burn.is_finite(), "target {target} must have a budget");
            // monotone in violations: one more violation never lowers it
            if violations < checked {
                let worse = SlaReport {
                    checked,
                    violations: violations + 1,
                };
                assert!(worse.burn_rate(target) >= burn);
            }
            // monotone in target: a stricter target never lowers it
            let stricter = (target + 0.5).min(0.999_999);
            assert!(report.burn_rate(stricter) >= burn - 1e-12);
            // burn × budget recovers the violation rate
            let budget = 1.0 - target;
            assert!((burn * budget - report.violation_rate()).abs() < 1e-9);
        }
    }

    #[test]
    fn report_display() {
        let mut sla = Sla::upper_bound("x", 1.0);
        sla.check(0.0, 2.0);
        assert_eq!(sla.report().to_string(), "1/1 violations (100.0%)");
    }

    #[test]
    fn history_recorded() {
        let mut sla = Sla::upper_bound("x", 1.0);
        for i in 0..5 {
            sla.check(i as f64, i as f64);
        }
        assert_eq!(sla.history().len(), 5);
    }
}
