//! Differential suite: the bytecode VM must be bit-identical to the
//! tree-walking interpreter on randomly generated *and randomly woven*
//! programs — values, every `ExecStats` counter (`flop_energy` compared
//! bit-for-bit), host-call traces and errors.
//!
//! On a mismatch the failure message embeds the pretty-printed program,
//! so the offending case round-trips into a reproducible unit test.

use antarex_ir::cost::ExecStats;
use antarex_ir::interp::{ExecEnv, Interp};
use antarex_ir::printer::print_program;
use antarex_ir::value::Value;
use antarex_ir::{analysis, parse_program, Executor, IrError, Program};
use antarex_vm::{CodeKey, Vm};
use antarex_weaver::transform::dce::dce_fixpoint;
use antarex_weaver::transform::fold::fold_block;
use antarex_weaver::transform::inline::inline_calls;
use antarex_weaver::transform::tile::tile;
use antarex_weaver::transform::unroll::{unroll_by_factor, unroll_full};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

const ARRAY_LEN: usize = 8;

/// Environment the generator threads through statement generation.
struct GenCtx {
    rng: StdRng,
    scalars: Vec<String>,
    int_vars: Vec<String>,
    arrays: Vec<String>,
    next_id: usize,
}

impl GenCtx {
    fn fresh(&mut self, prefix: &str) -> String {
        let name = format!("{prefix}{}", self.next_id);
        self.next_id += 1;
        name
    }

    fn pick<'a>(&mut self, items: &'a [String]) -> &'a str {
        &items[self.rng.gen_range(0..items.len())]
    }
}

fn gen_index(ctx: &mut GenCtx) -> String {
    // mostly-safe indices; ~2% deliberately out of bounds so the error
    // paths get differential coverage too
    if ctx.rng.gen_bool(0.02) {
        return ARRAY_LEN.to_string();
    }
    if !ctx.int_vars.is_empty() && ctx.rng.gen_bool(0.7) {
        let v = ctx.pick(&ctx.int_vars.clone()).to_string();
        return format!("({v} % {ARRAY_LEN})");
    }
    ctx.rng.gen_range(0..ARRAY_LEN as i64).to_string()
}

fn gen_expr(ctx: &mut GenCtx, depth: u32) -> String {
    if depth == 0 || ctx.rng.gen_bool(0.3) {
        return match ctx.rng.gen_range(0..5) {
            0 => ctx.rng.gen_range(0..9i64).to_string(),
            1 => ["0.5", "1.25", "2.0", "0.0625", "3.5", "0.2"][ctx.rng.gen_range(0..6usize)]
                .to_string(),
            2 if !ctx.scalars.is_empty() => ctx.pick(&ctx.scalars.clone()).to_string(),
            3 if !ctx.arrays.is_empty() => {
                let arr = ctx.pick(&ctx.arrays.clone()).to_string();
                let idx = gen_index(ctx);
                format!("{arr}[{idx}]")
            }
            _ => ctx.rng.gen_range(0..9i64).to_string(),
        };
    }
    match ctx.rng.gen_range(0..10) {
        0..=4 => {
            let op = ["+", "-", "*", "<", "<=", ">", "==", "!=", "&&", "||"]
                [ctx.rng.gen_range(0..10usize)];
            let l = gen_expr(ctx, depth - 1);
            let r = gen_expr(ctx, depth - 1);
            format!("({l} {op} {r})")
        }
        5 => {
            // division by a nonzero literal keeps most runs alive
            let l = gen_expr(ctx, depth - 1);
            let d = ["2", "4", "1.25", "0.5", "3"][ctx.rng.gen_range(0..5usize)];
            format!("({l} / {d})")
        }
        6 => {
            // modulo needs integer operands: use an int var or literal
            let l = if !ctx.int_vars.is_empty() && ctx.rng.gen_bool(0.8) {
                ctx.pick(&ctx.int_vars.clone()).to_string()
            } else {
                ctx.rng.gen_range(0..9i64).to_string()
            };
            let d = ctx.rng.gen_range(1..7i64);
            format!("({l} % {d})")
        }
        7 => {
            let inner = gen_expr(ctx, depth - 1);
            if ctx.rng.gen_bool(0.5) {
                format!("(-{inner})")
            } else {
                format!("(!{inner})")
            }
        }
        8 => {
            let inner = gen_expr(ctx, depth - 1);
            match ctx.rng.gen_range(0..4) {
                0 => format!("sqrt(fabs({inner}))"),
                1 => format!("fmin({inner}, 2.5)"),
                2 => format!("fmax({inner}, 0.25)"),
                _ => format!("h({inner})"),
            }
        }
        _ => {
            let inner = gen_expr(ctx, depth - 1);
            format!("pow(fabs({inner}), 2.0)")
        }
    }
}

fn gen_stmt(ctx: &mut GenCtx, out: &mut String, indent: usize, depth: u32) {
    let pad = "    ".repeat(indent);
    match ctx.rng.gen_range(0..10) {
        0 | 1 => {
            let ty = ["int", "double", "float", "float4", "float9", "float19"]
                [ctx.rng.gen_range(0..6usize)];
            let name = ctx.fresh("v");
            let init = gen_expr(ctx, 2);
            out.push_str(&format!("{pad}{ty} {name} = {init};\n"));
            if ty == "int" {
                ctx.int_vars.push(name.clone());
            }
            ctx.scalars.push(name);
        }
        2 | 3 if !ctx.scalars.is_empty() => {
            let name = ctx.pick(&ctx.scalars.clone()).to_string();
            let value = gen_expr(ctx, 2);
            out.push_str(&format!("{pad}{name} = {value};\n"));
        }
        4 if !ctx.arrays.is_empty() => {
            let arr = ctx.pick(&ctx.arrays.clone()).to_string();
            let idx = gen_index(ctx);
            let value = gen_expr(ctx, 2);
            out.push_str(&format!("{pad}{arr}[{idx}] = {value};\n"));
        }
        5 if depth > 0 => {
            let cond = gen_expr(ctx, 2);
            out.push_str(&format!("{pad}if ({cond}) {{\n"));
            gen_stmt(ctx, out, indent + 1, depth - 1);
            if ctx.rng.gen_bool(0.5) {
                out.push_str(&format!("{pad}}} else {{\n"));
                gen_stmt(ctx, out, indent + 1, depth - 1);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        6 if depth > 0 => {
            let var = ctx.fresh("i");
            let bound = ctx.rng.gen_range(2..7i64);
            out.push_str(&format!(
                "{pad}for (int {var} = 0; {var} < {bound}; {var}++) {{\n"
            ));
            ctx.int_vars.push(var.clone());
            ctx.scalars.push(var.clone());
            let n = ctx.rng.gen_range(1..3u32);
            for _ in 0..n {
                gen_stmt(ctx, out, indent + 1, depth - 1);
            }
            out.push_str(&format!("{pad}}}\n"));
            // the induction variable stays in scope after the loop
        }
        7 if depth > 0 => {
            let var = ctx.fresh("w");
            let start = ctx.rng.gen_range(1..5i64);
            out.push_str(&format!("{pad}int {var} = {start};\n"));
            out.push_str(&format!("{pad}while ({var} > 0) {{\n"));
            gen_stmt(ctx, out, indent + 1, depth - 1);
            out.push_str(&format!("{pad}    {var} = {var} - 1;\n"));
            out.push_str(&format!("{pad}}}\n"));
            ctx.int_vars.push(var.clone());
            ctx.scalars.push(var);
        }
        8 => {
            let value = gen_expr(ctx, 2);
            out.push_str(&format!("{pad}probe(\"p\", {value});\n"));
        }
        _ => {
            let value = gen_expr(ctx, 1);
            out.push_str(&format!("{pad}probe(\"q\", {value});\n"));
        }
    }
}

/// Generates a random-but-valid mini-C program around a `kernel`
/// function with two array parameters, a helper `h`, and host probes.
fn gen_program(seed: u64) -> String {
    let mut ctx = GenCtx {
        rng: StdRng::seed_from_u64(seed),
        scalars: vec!["n".into()],
        int_vars: vec!["n".into()],
        arrays: vec!["a".into(), "b".into()],
        next_id: 0,
    };
    let helper_body = gen_expr(&mut ctx, 2);
    let mut body = String::new();
    let local = ctx.fresh("c");
    body.push_str(&format!("    double {local}[{ARRAY_LEN}];\n"));
    ctx.arrays.push(local);
    let stmts = ctx.rng.gen_range(3..9u32);
    for _ in 0..stmts {
        gen_stmt(&mut ctx, &mut body, 1, 2);
    }
    let ret = gen_expr(&mut ctx, 2);
    format!(
        "double h(double x) {{ return {helper_body}; }}\n\
         double kernel(double a[], double b[], int n) {{\n{body}    return {ret};\n}}\n"
    )
}

/// Applies up to `count` random weaver transforms to `kernel`.
fn weave(program: &mut Program, seed: u64, count: u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..count {
        let choice = rng.gen_range(0..6);
        let factor = rng.gen_range(2..4u64);
        let pick = rng.gen_range(0..4usize);
        program
            .edit_function("kernel", |f| {
                match choice {
                    0 => {
                        let paths: Vec<_> = analysis::loops(&f.body)
                            .into_iter()
                            .map(|(p, _)| p)
                            .collect();
                        if let Some(path) = paths.get(pick % paths.len().max(1)) {
                            let _ = unroll_full(&mut f.body, path);
                        }
                    }
                    1 => {
                        let paths: Vec<_> = analysis::loops(&f.body)
                            .into_iter()
                            .map(|(p, _)| p)
                            .collect();
                        if let Some(path) = paths.get(pick % paths.len().max(1)) {
                            let _ = unroll_by_factor(&mut f.body, path, factor);
                        }
                    }
                    2 => {
                        let paths: Vec<_> = analysis::loops(&f.body)
                            .into_iter()
                            .map(|(p, _)| p)
                            .collect();
                        if let Some(path) = paths.get(pick % paths.len().max(1)) {
                            let _ = tile(&mut f.body, path, factor);
                        }
                    }
                    3 => f.body = fold_block(&f.body),
                    4 => {
                        dce_fixpoint(&mut f.body);
                    }
                    _ => {}
                };
            })
            .expect("kernel exists");
        if choice == 5 {
            // inlining needs the program (callee lookup), so it runs
            // outside edit_function on a cloned body
            let snapshot = program.clone();
            program
                .edit_function("kernel", |f| {
                    let _ = inline_calls(&mut f.body, &snapshot, "h");
                })
                .expect("kernel exists");
        }
    }
}

type Trace = Rc<RefCell<Vec<Vec<Value>>>>;

fn run_engine(
    engine: &mut dyn Executor,
    args: &[Value],
) -> (Result<Value, IrError>, ExecStats, Vec<Vec<Value>>) {
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&trace);
    engine.register_host(
        "probe".into(),
        Box::new(move |args: &[Value]| {
            sink.borrow_mut().push(args.to_vec());
            Ok(Value::Unit)
        }),
    );
    // a tight budget keeps generated-runaway cases fast; budget errors
    // are themselves compared between the engines
    engine.set_budget(Some(300_000));
    let mut env = ExecEnv::new();
    let result = engine.call("kernel", args, &mut env);
    let observed = trace.borrow().clone();
    (result, env.stats, observed)
}

fn assert_engines_agree(program: &Program, args: &[Value], context: &str) {
    let mut interp = Interp::new(program.clone());
    let (ires, istats, itrace) = run_engine(&mut interp, args);
    let mut vm = Vm::new(program.clone());
    let (vres, vstats, vtrace) = run_engine(&mut vm, args);

    let source = print_program(program);
    match (&ires, &vres) {
        (Ok(iv), Ok(vv)) => {
            assert_eq!(
                iv, vv,
                "[{context}] values diverge\n--- program ---\n{source}"
            );
            assert_eq!(
                (istats.cost, istats.flops, istats.mem_ops),
                (vstats.cost, vstats.flops, vstats.mem_ops),
                "[{context}] cost/flops/mem_ops diverge\n--- program ---\n{source}"
            );
            assert_eq!(
                istats.flop_energy.to_bits(),
                vstats.flop_energy.to_bits(),
                "[{context}] flop_energy diverges ({} vs {})\n--- program ---\n{source}",
                istats.flop_energy,
                vstats.flop_energy
            );
            assert_eq!(
                (istats.loop_iters, istats.calls, istats.host_calls),
                (vstats.loop_iters, vstats.calls, vstats.host_calls),
                "[{context}] loop/call counters diverge\n--- program ---\n{source}"
            );
        }
        (Err(ie), Err(ve)) => {
            assert_eq!(
                ie, ve,
                "[{context}] errors diverge\n--- program ---\n{source}"
            );
        }
        _ => panic!(
            "[{context}] one engine errored, the other did not:\n\
             interp: {ires:?}\nvm: {vres:?}\n--- program ---\n{source}"
        ),
    }
    assert_eq!(
        itrace, vtrace,
        "[{context}] host-call traces diverge\n--- program ---\n{source}"
    );
}

fn kernel_args(seed: u64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5_5a5a);
    let mk = |rng: &mut StdRng| {
        Value::Array(
            (0..ARRAY_LEN)
                .map(|_| Value::Float(f64::from(rng.gen_range(-16..17i32)) / 8.0))
                .collect(),
        )
    };
    vec![mk(&mut rng), mk(&mut rng), Value::Int(ARRAY_LEN as i64)]
}

#[test]
fn random_programs_are_bit_identical() {
    for seed in 0..150u64 {
        let source = gen_program(seed);
        let program = parse_program(&source)
            .unwrap_or_else(|e| panic!("generator produced invalid source ({e}):\n{source}"));
        assert_engines_agree(&program, &kernel_args(seed), &format!("seed {seed}"));
    }
}

#[test]
fn randomly_woven_programs_are_bit_identical() {
    for seed in 0..100u64 {
        let source = gen_program(seed);
        let base = parse_program(&source).expect("generator produces valid source");
        for round in 1..3u64 {
            let mut woven = base.clone();
            weave(&mut woven, seed.wrapping_mul(31).wrapping_add(round), 3);
            assert_engines_agree(
                &woven,
                &kernel_args(seed),
                &format!("seed {seed} weave-round {round}"),
            );
        }
    }
}

#[test]
fn precision_sweep_is_bit_identical() {
    // the same kernel re-typed across the precision ladder: emulated
    // reduced precision (quantized stores, scaled flop energy) must
    // match the interpreter exactly at every width
    for ty in [
        "double", "float", "float19", "float11", "float7", "float4", "float2",
    ] {
        let source = format!(
            "double kernel(double a[], double b[], int n) {{
                 {ty} s = 0.0;
                 for (int i = 0; i < n; i++) {{
                     {ty} t = a[i] * b[i];
                     s += t;
                     probe(\"acc\", s);
                 }}
                 return s;
             }}"
        );
        let program = parse_program(&source).unwrap();
        assert_engines_agree(&program, &kernel_args(7), &format!("precision {ty}"));
    }
}

#[test]
fn generated_programs_have_distinct_cache_keys() {
    let model = antarex_ir::cost::CostModel::new();
    let mut keys = std::collections::HashSet::new();
    let mut sources = Vec::new();
    for seed in 0..150u64 {
        let source = gen_program(seed);
        let program = parse_program(&source).unwrap();
        let key = CodeKey::of(&program, &model);
        if !keys.insert(key) {
            // identical sources legitimately share a key; only a
            // *different* program colliding is a failure
            assert!(
                sources.contains(&source),
                "distinct programs collided on {key:?}:\n{source}"
            );
        }
        sources.push(source);
    }
    assert!(
        keys.len() > 100,
        "generator should produce diverse programs"
    );
}

/// Loop-trace scenarios: the canonical idioms the native trace tier
/// compiles, plus the inputs that force it to validate-and-fall-back
/// (non-float elements, out-of-bounds trips, zero iterations, budget
/// exhaustion mid-loop, in-place aliasing). Every case must be
/// bit-identical whichever tier actually ran.
#[test]
fn traced_loops_and_their_fallbacks_are_bit_identical() {
    let floats = |vals: &[f64]| Value::Array(vals.iter().map(|v| Value::Float(*v)).collect());
    let ramp = |n: usize| {
        Value::Array(
            (0..n)
                .map(|i| Value::Float(i as f64 * 0.25 - 3.0))
                .collect(),
        )
    };
    let dot = "double kernel(double a[], double b[], int n) {
                   double s = 0.0;
                   for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
                   return s;
               }";
    let narrow_dot = "double kernel(double a[], double b[], int n) {
                          float11 s = 0.0;
                          for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
                          return s;
                      }";
    let matvec = "double kernel(double a[], double b[], int n) {
                      double s = 0.0;
                      for (int i = 0; i < 4; i++) {
                          double acc = 0.0;
                          for (int j = 0; j < 4; j++) { acc += a[i * 4 + j] * b[j]; }
                          s += acc;
                      }
                      return s;
                  }";
    let stencil = "double kernel(double a[], double b[], int n) {
                       int m = n - 1;
                       for (int i = 1; i < m; i++) {
                           b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
                       }
                       return b[1];
                   }";
    // in-place: the taps alias the written array, so iteration i reads
    // the value iteration i-1 stored
    let stencil_inplace = "double kernel(double a[], double b[], int n) {
                               int m = n - 1;
                               for (int i = 1; i < m; i++) {
                                   a[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
                               }
                               return a[2];
                           }";
    let a8 = ramp(8);
    let b8 = floats(&[0.5, -1.25, 2.0, 0.125, -0.5, 1.5, -2.25, 0.75]);
    let mixed = Value::Array(vec![
        Value::Float(1.0),
        Value::Float(2.0),
        Value::Int(3),
        Value::Float(4.0),
        Value::Float(5.0),
        Value::Float(6.0),
        Value::Float(7.0),
        Value::Float(8.0),
    ]);
    let big = ramp(16384);
    let cases: Vec<(&str, &str, Vec<Value>)> = vec![
        (
            "dot traced",
            dot,
            vec![a8.clone(), b8.clone(), Value::Int(8)],
        ),
        (
            "dot reduced precision",
            narrow_dot,
            vec![a8.clone(), b8.clone(), Value::Int(8)],
        ),
        (
            "matvec traced",
            matvec,
            vec![ramp(16), b8.clone(), Value::Int(0)],
        ),
        (
            "stencil traced",
            stencil,
            vec![a8.clone(), ramp(8), Value::Int(8)],
        ),
        (
            "stencil in-place aliasing",
            stencil_inplace,
            vec![a8.clone(), b8.clone(), Value::Int(8)],
        ),
        (
            "fallback: non-float element",
            dot,
            vec![mixed.clone(), b8.clone(), Value::Int(8)],
        ),
        (
            "fallback: out-of-bounds trip",
            dot,
            vec![a8.clone(), b8.clone(), Value::Int(12)],
        ),
        (
            "zero iterations",
            dot,
            vec![a8.clone(), b8.clone(), Value::Int(0)],
        ),
        (
            "zero iterations, negative bound",
            dot,
            vec![a8.clone(), b8.clone(), Value::Int(-3)],
        ),
        (
            "budget exhaustion mid-loop",
            dot,
            vec![big.clone(), big.clone(), Value::Int(16384)],
        ),
    ];
    for (context, source, args) in cases {
        let program = parse_program(source).unwrap();
        assert_engines_agree(&program, &args, context);
    }
}
