//! The metered bytecode VM.
//!
//! [`Vm`] executes [`Chunk`]s produced by [`crate::lower`], with the same
//! observable behaviour as the tree-walking interpreter in `antarex-ir`:
//! identical values, identical [`ExecStats`]
//! (including `flop_energy` bit-for-bit), identical host-call traces and
//! identical errors. The differential suite in `tests/` enforces this.
//!
//! The engine-specific caveat: when execution *aborts with an error*, the
//! two engines may disagree on the partial statistics accrued after the
//! point of error (the VM's fused meters pend statically-known costs until
//! a segment boundary, so a mid-segment abort discards charges the
//! interpreter had already made). Error values themselves, and everything
//! observable on successful paths — budget-check outcomes included — are
//! identical.

use crate::bytecode::{Chunk, CompiledProgram};
use crate::cache::InstrumentedCodeCache;
use crate::lower::lower_function;
use crate::reg::{RInstr, IDX_MASK, TAG_MASK, TAG_SLOT};
use crate::trace::{Bound, Trace, TraceKind};
use antarex_ir::ast::{BinOp, Program};
use antarex_ir::cost::{CostModel, ExecStats};
use antarex_ir::error::IrError;
use antarex_ir::exec::Executor;
use antarex_ir::interp::{Dispatcher, ExecEnv, HostFn, MAX_CALL_DEPTH};
use antarex_ir::ops::{self, coerce_scalar, coerce_scalar_or_array, zero_of};
use antarex_ir::types::Type;
use antarex_ir::value::Value;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// The bytecode execution engine.
///
/// Functions lower lazily on first call and the lowered chunk is memoized
/// per function (invalidated when the program's `Rc<Function>` identity
/// changes, e.g. after `edit_function` or a dispatcher insertion).
/// [`Vm::with_cache`] additionally seeds the memo from a shared
/// [`InstrumentedCodeCache`], so a `(program digest, metering params)`
/// pair lowers once process-wide.
///
/// # Examples
///
/// ```
/// use antarex_ir::{parse_program, interp::ExecEnv, value::Value, Executor};
/// use antarex_vm::Vm;
///
/// # fn main() -> Result<(), antarex_ir::IrError> {
/// let program = parse_program("int square(int x) { return x * x; }")?;
/// let mut vm = Vm::new(program);
/// let out = vm.call("square", &[Value::Int(7)], &mut ExecEnv::default())?;
/// assert_eq!(out, Value::Int(49));
/// # Ok(())
/// # }
/// ```
pub struct Vm {
    program: Program,
    /// Pre-lowered chunks backing [`Vm::from_compiled`]: consulted only
    /// when the (possibly empty) program has no function of the name, so
    /// a stale chunk can never shadow a live program edit.
    compiled: Option<Arc<CompiledProgram>>,
    /// Per-function lowering memo, validated by `Rc` pointer identity.
    memo: HashMap<String, (Rc<antarex_ir::ast::Function>, Arc<Chunk>)>,
    cost_model: CostModel,
    budget: Option<u64>,
    hosts: HashMap<String, HostFn>,
    dispatcher: Option<Box<dyn Dispatcher>>,
    /// Mantissa width of the destination currently being computed (the
    /// reduced-precision emulation context, mirroring the interpreter).
    prec_ctx: u8,
    /// Saved contexts for nested `PushPrec`/`PopPrec` pairs.
    prec_stack: Vec<u8>,
    /// Cached `ops::flop_unit(prec_ctx)` — recomputed only when the
    /// precision context changes, read on every float operation.
    prec_unit: f64,
    /// Current mini-C call depth.
    depth: u32,
    /// Recycled frames (values + type bindings), one per active depth.
    pool: Vec<(Vec<Value>, Vec<Option<Type>>)>,
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("functions", &self.program.function_names())
            .field("hosts", &self.hosts.keys().collect::<Vec<_>>())
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl Vm {
    /// Creates a VM for `program` with the default cost model.
    pub fn new(program: Program) -> Self {
        Vm {
            program,
            compiled: None,
            memo: HashMap::new(),
            cost_model: CostModel::new(),
            budget: Some(200_000_000),
            hosts: HashMap::new(),
            dispatcher: None,
            prec_ctx: 52,
            prec_stack: Vec::new(),
            prec_unit: ops::flop_unit(52),
            depth: 0,
            pool: Vec::new(),
        }
    }

    /// Replaces the cost model (clears the lowering memo — metering is
    /// woven into the bytecode, so chunks are model-specific).
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self.memo.clear();
        self
    }

    /// Creates a VM whose lowering memo is seeded from (and populates)
    /// the shared `cache`: the `(program digest, cost-model digest)` pair
    /// lowers once and the instrumented chunks are shared across tenants,
    /// DSE rounds and precision sweeps.
    pub fn with_cache(
        program: Program,
        cost_model: CostModel,
        cache: &InstrumentedCodeCache,
    ) -> Self {
        let compiled = cache.instrument(&program, &cost_model);
        let mut memo = HashMap::new();
        for function in program.iter() {
            if let Some(chunk) = compiled.get(&function.name) {
                if let Some(rc) = program.function(&function.name) {
                    memo.insert(function.name.clone(), (Rc::clone(rc), Arc::clone(chunk)));
                }
            }
        }
        let mut vm = Vm::new(program).with_cost_model(cost_model);
        vm.memo = memo;
        vm
    }

    /// Creates a VM that executes pre-lowered chunks directly, with an
    /// empty program. This is the cheap per-request constructor for the
    /// serving tier: the `Arc<CompiledProgram>` is shared, the VM itself
    /// is a handful of words.
    pub fn from_compiled(compiled: Arc<CompiledProgram>) -> Self {
        let mut vm = Vm::new(Program::new());
        vm.compiled = Some(compiled);
        vm
    }

    /// Sets (or clears) the execution budget in cost units. The default
    /// is 2·10⁸ units, matching the interpreter.
    pub fn set_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    /// Registers a host (intrinsic) function callable from mini-C code.
    /// Returns the previously registered function for the name, if any.
    pub fn register_host(&mut self, name: impl Into<String>, f: HostFn) -> Option<HostFn> {
        self.hosts.insert(name.into(), f)
    }

    /// Installs the dynamic-weaving dispatcher.
    pub fn set_dispatcher(&mut self, dispatcher: Box<dyn Dispatcher>) {
        self.dispatcher = Some(dispatcher);
    }

    /// Removes the dispatcher, returning it.
    pub fn take_dispatcher(&mut self) -> Option<Box<dyn Dispatcher>> {
        self.dispatcher.take()
    }

    /// The program being executed (it may grow under dynamic weaving).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Mutable access to the program (design-time edits between runs;
    /// edited functions re-lower on next call via `Rc` identity).
    pub fn program_mut(&mut self) -> &mut Program {
        &mut self.program
    }

    /// Consumes the VM, returning the (possibly grown) program.
    pub fn into_program(self) -> Program {
        self.program
    }

    /// The lowered chunk for a function, if it exists (lowering it now if
    /// needed) — exposes meter-fusion and bytecode-size statistics.
    pub fn chunk(&mut self, name: &str) -> Option<Arc<Chunk>> {
        if self.program.contains(name) {
            return Some(self.chunk_for(name));
        }
        self.compiled.as_ref().and_then(|c| c.get(name)).cloned()
    }

    /// Calls a function by name with the given arguments.
    ///
    /// Statistics accrue into `env.stats` (across multiple calls, if the
    /// same environment is reused).
    ///
    /// # Errors
    ///
    /// * [`IrError::Unresolved`] — unknown function.
    /// * [`IrError::Type`] / [`IrError::Eval`] — dynamic errors.
    /// * [`IrError::BudgetExceeded`] — the work budget was exhausted.
    /// * [`IrError::CostOverflow`] — cost accounting overflowed.
    pub fn call(
        &mut self,
        name: &str,
        args: &[Value],
        env: &mut ExecEnv,
    ) -> Result<Value, IrError> {
        // The interpreter's precision context is provably 52 at every
        // top-level entry (it restores on unwind even through errors);
        // the VM skips per-frame unwinding and re-establishes the
        // invariant here instead.
        self.set_prec(52);
        self.prec_stack.clear();
        let (value, _) = self.call_with_writeback(name, args.to_vec(), env)?;
        Ok(value)
    }

    /// Runs `name` as one *instrumented segment*: a fresh [`ExecEnv`]
    /// is created for the call and its final [`ExecStats`] — `cost`,
    /// `flops`, `flop_energy`, memory traffic — are returned alongside
    /// the value. This is the unit of metering the cross-layer tracing
    /// pipeline attributes energy to: one segment, one stats record,
    /// no bleed-through from other calls on the same VM.
    ///
    /// # Errors
    ///
    /// Same contract as [`Vm::call`].
    pub fn run_segment(
        &mut self,
        name: &str,
        args: &[Value],
    ) -> Result<(Value, ExecStats), IrError> {
        let mut env = ExecEnv::new();
        let value = self.call(name, args, &mut env)?;
        Ok((value, env.stats))
    }

    #[inline]
    fn set_prec(&mut self, bits: u8) {
        self.prec_ctx = bits;
        self.prec_unit = ops::flop_unit(bits);
    }

    fn check_budget(&self, env: &ExecEnv) -> Result<(), IrError> {
        if let Some(limit) = self.budget {
            if env.stats.cost > limit {
                return Err(IrError::BudgetExceeded { limit });
            }
        }
        Ok(())
    }

    fn chunk_for(&mut self, name: &str) -> Arc<Chunk> {
        let function = Rc::clone(
            self.program
                .function(name)
                .expect("caller checked contains"),
        );
        if let Some((cached_fn, chunk)) = self.memo.get(name) {
            if Rc::ptr_eq(cached_fn, &function) {
                return Arc::clone(chunk);
            }
        }
        let chunk = Arc::new(lower_function(&function, &self.cost_model));
        self.memo
            .insert(name.to_string(), (function, Arc::clone(&chunk)));
        chunk
    }

    fn call_with_writeback(
        &mut self,
        name: &str,
        args: Vec<Value>,
        env: &mut ExecEnv,
    ) -> Result<(Value, Vec<(usize, Value)>), IrError> {
        // Dynamic-weaving hook: the dispatcher may redirect and/or extend
        // the program with specialized versions (which then lower lazily).
        let resolved = if let Some(dispatcher) = self.dispatcher.as_mut() {
            dispatcher
                .resolve(name, &args, &mut self.program)?
                .unwrap_or_else(|| name.to_string())
        } else {
            name.to_string()
        };

        if self.program.contains(&resolved) {
            let chunk = self.chunk_for(&resolved);
            return self.exec_chunk(&chunk, args, env);
        }
        if let Some(chunk) = self
            .compiled
            .as_ref()
            .and_then(|c| c.get(&resolved))
            .cloned()
        {
            return self.exec_chunk(&chunk, args, env);
        }
        if let Some(value) = ops::try_builtin(
            &resolved,
            &args,
            &self.cost_model,
            self.prec_ctx,
            &mut env.stats,
        )? {
            return Ok((value, vec![]));
        }
        if self.hosts.contains_key(&resolved) {
            env.stats.charge(self.cost_model.host_call)?;
            env.stats.host_calls = env.stats.host_calls.saturating_add(1);
            let host = self.hosts.get_mut(&resolved).expect("checked above");
            let value = host(&args)?;
            return Ok((value, vec![]));
        }
        Err(IrError::Unresolved(resolved))
    }

    fn exec_chunk(
        &mut self,
        chunk: &Arc<Chunk>,
        args: Vec<Value>,
        env: &mut ExecEnv,
    ) -> Result<(Value, Vec<(usize, Value)>), IrError> {
        if args.len() != chunk.params.len() {
            return Err(IrError::Type(format!(
                "function `{}` expects {} arguments, got {}",
                chunk.name,
                chunk.params.len(),
                args.len()
            )));
        }
        env.stats.charge(self.cost_model.call_overhead)?;
        env.stats.calls = env.stats.calls.saturating_add(1);
        self.check_budget(env)?;
        self.depth += 1;
        if self.depth > MAX_CALL_DEPTH {
            self.depth -= 1;
            return Err(IrError::Eval(format!(
                "call depth exceeded {MAX_CALL_DEPTH} (runaway recursion in `{}`)",
                chunk.name
            )));
        }

        let frame_size = chunk.reg().frame_size;
        let (mut frame, mut types) = self.pool.pop().unwrap_or_default();
        frame.clear();
        frame.resize(frame_size, Value::Unit);
        types.clear();
        types.resize(chunk.num_slots(), None);

        let result = self.exec_frame(chunk, args, &mut frame, &mut types, env);

        frame.clear();
        types.clear();
        self.pool.push((frame, types));
        result
    }

    fn exec_frame(
        &mut self,
        chunk: &Arc<Chunk>,
        args: Vec<Value>,
        frame: &mut [Value],
        types: &mut [Option<Type>],
        env: &mut ExecEnv,
    ) -> Result<(Value, Vec<(usize, Value)>), IrError> {
        // NOTE: binding errors below deliberately do NOT restore `depth`
        // — the interpreter leaks one depth level on parameter-binding
        // failure and bit-identity includes replicating that.
        for (slot, (param, arg)) in chunk.params.iter().zip(args).enumerate() {
            types[slot] = Some(param.ty);
            if param.is_array {
                match arg {
                    Value::Array(mut items) => {
                        // copy-in quantization: a narrow parameter type
                        // means the data arrives in that format
                        if param.ty.mantissa_bits().is_some_and(|b| b < 52) {
                            for item in &mut items {
                                if let Value::Float(v) = item {
                                    *item = Value::Float(param.ty.quantize(*v));
                                }
                            }
                        }
                        frame[slot] = Value::Array(items);
                    }
                    other => {
                        return Err(IrError::Type(format!(
                            "parameter `{}` of `{}` expects an array, got {other}",
                            param.name, chunk.name
                        )))
                    }
                }
            } else {
                let value = coerce_scalar(arg, param.ty)?;
                store_slot(frame, types, slot, value);
            }
        }

        let result = self.run(chunk, frame, types, env);
        self.depth -= 1;
        let mut result = result?;
        if let (Some(ty), Value::Float(v)) = (chunk.ret, &result) {
            result = Value::Float(ty.quantize(*v));
        }
        // copy-out array parameters
        let mut writeback = Vec::new();
        for (i, param) in chunk.params.iter().enumerate() {
            if param.is_array {
                match std::mem::replace(&mut frame[i], Value::Unit) {
                    Value::Unit => {}
                    value => writeback.push((i, value)),
                }
            }
        }
        Ok((result, writeback))
    }

    fn run(
        &mut self,
        chunk: &Arc<Chunk>,
        frame: &mut [Value],
        types: &mut [Option<Type>],
        env: &mut ExecEnv,
    ) -> Result<Value, IrError> {
        // `ExecStats` is `Copy`: the dispatch loop accrues into a stack
        // local the optimizer can keep in registers, written back to the
        // environment on every exit and around nested calls. Observable
        // behaviour (budget-check outcomes, overflow points, merge order)
        // is unchanged — it is the same field-by-field arithmetic.
        let mut stats = env.stats;
        let result = self.run_inner(chunk, frame, types, env, &mut stats);
        env.stats = stats;
        result
    }

    fn run_inner(
        &mut self,
        chunk: &Arc<Chunk>,
        frame: &mut [Value],
        types: &mut [Option<Type>],
        env: &mut ExecEnv,
        stats: &mut antarex_ir::cost::ExecStats,
    ) -> Result<Value, IrError> {
        let reg = chunk.reg();
        let code = &reg.code;
        let budget = self.budget.unwrap_or(u64::MAX);
        let mut pc = 0usize;
        while pc < code.len() {
            let instr = code[pc];
            pc += 1;
            match instr {
                RInstr::Const { idx, dst } => {
                    frame[dst as usize] = chunk.consts[idx as usize].clone();
                }
                RInstr::Read { slot, dst } => {
                    let slot = slot as usize;
                    let value = match &frame[slot] {
                        Value::Unit => {
                            return Err(IrError::Unresolved(chunk.slot_names[slot].clone()))
                        }
                        value => value.clone(),
                    };
                    frame[dst as usize] = value;
                }
                RInstr::LoadIndex { arr, idx, dst } => {
                    let idx = read_opnd(frame, chunk, idx)?
                        .as_i64()
                        .ok_or_else(|| IrError::Type("array index must be numeric".into()))?;
                    frame[dst as usize] = load_index(frame, chunk, arr, idx)?;
                }
                RInstr::ReadLoadIndex {
                    pre,
                    pre_dst,
                    arr,
                    idx,
                    dst,
                } => {
                    // the checked read runs first: the load's index operand
                    // is usually the temp it produces
                    let slot = pre as usize;
                    let value = match &frame[slot] {
                        Value::Unit => {
                            return Err(IrError::Unresolved(chunk.slot_names[slot].clone()))
                        }
                        value => value.clone(),
                    };
                    frame[pre_dst as usize] = value;
                    let idx = read_opnd(frame, chunk, idx)?
                        .as_i64()
                        .ok_or_else(|| IrError::Type("array index must be numeric".into()))?;
                    frame[dst as usize] = load_index(frame, chunk, arr, idx)?;
                }
                RInstr::StoreDecl { src, slot, ty } => {
                    let value = coerce_scalar(take_opnd(frame, chunk, src)?, ty)?;
                    let slot = slot as usize;
                    types[slot] = Some(ty);
                    store_slot(frame, types, slot, value);
                }
                RInstr::DeclDefault { slot, ty } => {
                    let slot = slot as usize;
                    types[slot] = Some(ty);
                    store_slot(frame, types, slot, zero_of(ty));
                }
                RInstr::NewArray { slot, ty, size } => {
                    let slot = slot as usize;
                    types[slot] = Some(ty);
                    frame[slot] = Value::Array(vec![zero_of(ty); size as usize]);
                }
                RInstr::StoreVar { src, slot } => {
                    store_var(frame, types, chunk, src, slot)?;
                }
                RInstr::StoreIndex { val, idx, slot } => {
                    let value = take_opnd(frame, chunk, val)?;
                    let idx = read_opnd(frame, chunk, idx)?
                        .as_i64()
                        .ok_or_else(|| IrError::Type("array index must be numeric".into()))?;
                    store_index(frame, types, chunk, slot, idx, value)?;
                }
                RInstr::BinStoreIndex {
                    op,
                    l,
                    r,
                    idx,
                    slot,
                } => {
                    let unit = self.prec_unit;
                    let lv = read_opnd(frame, chunk, l)?;
                    let rv = read_opnd(frame, chunk, r)?;
                    let out = ops::apply_binary_with(op, lv, rv, &self.cost_model, || unit, stats)?;
                    let idx = read_opnd(frame, chunk, idx)?
                        .as_i64()
                        .ok_or_else(|| IrError::Type("array index must be numeric".into()))?;
                    store_index(frame, types, chunk, slot, idx, out)?;
                }
                RInstr::StoreForInit { src, slot } => {
                    let value = coerce_scalar(take_opnd(frame, chunk, src)?, Type::Int)?;
                    let slot = slot as usize;
                    types[slot] = Some(Type::Int);
                    store_slot(frame, types, slot, value);
                }
                RInstr::StoreForStep { src, slot } => {
                    // no type re-bind: the loop body may have re-declared
                    // the induction variable with a different type
                    let value = coerce_scalar(take_opnd(frame, chunk, src)?, Type::Int)?;
                    store_slot(frame, types, slot as usize, value);
                }
                RInstr::StoreForStepJump { src, slot, target } => {
                    let value = coerce_scalar(take_opnd(frame, chunk, src)?, Type::Int)?;
                    store_slot(frame, types, slot as usize, value);
                    pc = target as usize;
                }
                RInstr::Unary { op, src, dst } => {
                    let unit = self.prec_unit;
                    let value = read_opnd(frame, chunk, src)?;
                    let out = ops::apply_unary_with(op, value, &self.cost_model, || unit, stats)?;
                    frame[dst as usize] = out;
                }
                RInstr::Binary { op, l, r, dst } => {
                    let unit = self.prec_unit;
                    let lv = read_opnd(frame, chunk, l)?;
                    let rv = read_opnd(frame, chunk, r)?;
                    let out = ops::apply_binary_with(op, lv, rv, &self.cost_model, || unit, stats)?;
                    frame[dst as usize] = out;
                }
                RInstr::BinLoad {
                    op,
                    l,
                    arr,
                    idx,
                    dst,
                } => {
                    // the swallowed load supplied the right operand, so its
                    // errors (and the index resolution) come first
                    let idxv = read_opnd(frame, chunk, idx)?
                        .as_i64()
                        .ok_or_else(|| IrError::Type("array index must be numeric".into()))?;
                    let rv = load_index(frame, chunk, arr, idxv)?;
                    let unit = self.prec_unit;
                    let lv = read_opnd(frame, chunk, l)?;
                    let out =
                        ops::apply_binary_with(op, lv, &rv, &self.cost_model, || unit, stats)?;
                    frame[dst as usize] = out;
                }
                RInstr::BinLoadIndex { op, l, r, arr, dst } => {
                    // the binary result is the load's index: apply (and
                    // charge) first, then resolve the indexed read
                    let unit = self.prec_unit;
                    let lv = read_opnd(frame, chunk, l)?;
                    let rv = read_opnd(frame, chunk, r)?;
                    let out = ops::apply_binary_with(op, lv, rv, &self.cost_model, || unit, stats)?;
                    let idxv = out
                        .as_i64()
                        .ok_or_else(|| IrError::Type("array index must be numeric".into()))?;
                    frame[dst as usize] = load_index(frame, chunk, arr, idxv)?;
                }
                RInstr::BinJumpIfFalsy { op, l, r, target } => {
                    let unit = self.prec_unit;
                    let lv = read_opnd(frame, chunk, l)?;
                    let rv = read_opnd(frame, chunk, r)?;
                    let out = ops::apply_binary_with(op, lv, rv, &self.cost_model, || unit, stats)?;
                    if !out.truthy() {
                        pc = target as usize;
                    }
                }
                RInstr::BinStoreForStepJump {
                    op,
                    l,
                    r,
                    slot,
                    target,
                } => {
                    let unit = self.prec_unit;
                    let lv = read_opnd(frame, chunk, l)?;
                    let rv = read_opnd(frame, chunk, r)?;
                    let out = ops::apply_binary_with(op, lv, rv, &self.cost_model, || unit, stats)?;
                    let value = coerce_scalar(out, Type::Int)?;
                    store_slot(frame, types, slot as usize, value);
                    pc = target as usize;
                }
                RInstr::MeterBinStoreForStepJump {
                    cost,
                    mem_ops,
                    op,
                    l,
                    r,
                    slot,
                    target,
                } => {
                    stats.charge(cost)?;
                    stats.mem_ops = stats.mem_ops.saturating_add(u64::from(mem_ops));
                    let unit = self.prec_unit;
                    let lv = read_opnd(frame, chunk, l)?;
                    let rv = read_opnd(frame, chunk, r)?;
                    let out = ops::apply_binary_with(op, lv, rv, &self.cost_model, || unit, stats)?;
                    let value = coerce_scalar(out, Type::Int)?;
                    store_slot(frame, types, slot as usize, value);
                    pc = target as usize;
                }
                RInstr::BinPopPrecStoreVar { op, l, r, slot } => {
                    let unit = self.prec_unit;
                    let lv = read_opnd(frame, chunk, l)?;
                    let rv = read_opnd(frame, chunk, r)?;
                    let out = ops::apply_binary_with(op, lv, rv, &self.cost_model, || unit, stats)?;
                    if let Some(saved) = self.prec_stack.pop() {
                        self.set_prec(saved);
                    }
                    store_var_value(frame, types, chunk, slot, out)?;
                }
                RInstr::BinPopPrecStoreDecl { op, l, r, slot, ty } => {
                    let unit = self.prec_unit;
                    let lv = read_opnd(frame, chunk, l)?;
                    let rv = read_opnd(frame, chunk, r)?;
                    let out = ops::apply_binary_with(op, lv, rv, &self.cost_model, || unit, stats)?;
                    if let Some(saved) = self.prec_stack.pop() {
                        self.set_prec(saved);
                    }
                    let value = coerce_scalar(out, ty)?;
                    let slot = slot as usize;
                    types[slot] = Some(ty);
                    store_slot(frame, types, slot, value);
                }
                RInstr::CheckPushPrec(bits) => {
                    if stats.cost > budget {
                        return Err(IrError::BudgetExceeded { limit: budget });
                    }
                    self.prec_stack.push(self.prec_ctx);
                    if let Some(bits) = bits {
                        self.set_prec(bits);
                    }
                }
                RInstr::CheckPushPrecOf(slot) => {
                    if stats.cost > budget {
                        return Err(IrError::BudgetExceeded { limit: budget });
                    }
                    self.prec_stack.push(self.prec_ctx);
                    if let Some(bits) = types[slot as usize].and_then(Type::mantissa_bits) {
                        self.set_prec(bits);
                    }
                }
                RInstr::CastBool { src, dst } => {
                    let truthy = read_opnd(frame, chunk, src)?.truthy();
                    frame[dst as usize] = Value::Int(i64::from(truthy));
                }
                RInstr::Jump(target) => pc = target as usize,
                RInstr::JumpIfFalsy { cond, target } => {
                    if !read_opnd(frame, chunk, cond)?.truthy() {
                        pc = target as usize;
                    }
                }
                RInstr::MeterJumpIfFalsy {
                    cost,
                    mem_ops,
                    cond,
                    target,
                } => {
                    stats.charge(cost)?;
                    stats.mem_ops = stats.mem_ops.saturating_add(u64::from(mem_ops));
                    if !read_opnd(frame, chunk, cond)?.truthy() {
                        pc = target as usize;
                    }
                }
                RInstr::AndProbe { cond, dst, target } => {
                    if !read_opnd(frame, chunk, cond)?.truthy() {
                        frame[dst as usize] = Value::Int(0);
                        pc = target as usize;
                    }
                }
                RInstr::OrProbe { cond, dst, target } => {
                    if read_opnd(frame, chunk, cond)?.truthy() {
                        frame[dst as usize] = Value::Int(1);
                        pc = target as usize;
                    }
                }
                RInstr::Call {
                    callee,
                    argc,
                    copyout,
                    base,
                } => {
                    let base = base as usize;
                    let mut args = Vec::with_capacity(argc as usize);
                    for k in 0..argc as usize {
                        args.push(std::mem::replace(&mut frame[base + k], Value::Unit));
                    }
                    // nested calls (and host calls / builtins inside them)
                    // accrue into the environment: flush the local copy
                    // across the boundary in both directions
                    env.stats = *stats;
                    let nested =
                        self.call_with_writeback(&chunk.callees[callee as usize], args, env);
                    *stats = env.stats;
                    let (value, writeback) = nested?;
                    // copy-out: array arguments passed as plain variables
                    // get the callee's final contents back
                    let map = &chunk.copyouts[copyout as usize];
                    for (param_idx, array) in writeback {
                        if let Some(&(_, slot)) =
                            map.iter().find(|(arg_i, _)| *arg_i as usize == param_idx)
                        {
                            let slot = slot as usize;
                            if !matches!(frame[slot], Value::Unit) {
                                frame[slot] = array;
                            }
                        }
                    }
                    frame[base] = value;
                }
                RInstr::Ret { src } => return take_opnd(frame, chunk, src),
                RInstr::RetUnit => return Ok(Value::Unit),
                RInstr::Meter { cost, mem_ops } => {
                    stats.charge(cost)?;
                    stats.mem_ops = stats.mem_ops.saturating_add(u64::from(mem_ops));
                }
                RInstr::MeterCheck { cost, mem_ops } => {
                    stats.charge(cost)?;
                    stats.mem_ops = stats.mem_ops.saturating_add(u64::from(mem_ops));
                    if stats.cost > budget {
                        return Err(IrError::BudgetExceeded { limit: budget });
                    }
                }
                RInstr::LoopTick { cost, mem_ops } => {
                    stats.charge(cost)?;
                    stats.mem_ops = stats.mem_ops.saturating_add(u64::from(mem_ops));
                    stats.loop_iters = stats.loop_iters.saturating_add(1);
                    if stats.cost > budget {
                        return Err(IrError::BudgetExceeded { limit: budget });
                    }
                }
                RInstr::LoopTickPushPrec {
                    cost,
                    mem_ops,
                    bits,
                } => {
                    stats.charge(cost)?;
                    stats.mem_ops = stats.mem_ops.saturating_add(u64::from(mem_ops));
                    stats.loop_iters = stats.loop_iters.saturating_add(1);
                    if stats.cost > budget {
                        return Err(IrError::BudgetExceeded { limit: budget });
                    }
                    self.prec_stack.push(self.prec_ctx);
                    if let Some(bits) = bits {
                        self.set_prec(bits);
                    }
                }
                RInstr::LoopTickPushPrecOf {
                    cost,
                    mem_ops,
                    slot,
                } => {
                    stats.charge(cost)?;
                    stats.mem_ops = stats.mem_ops.saturating_add(u64::from(mem_ops));
                    stats.loop_iters = stats.loop_iters.saturating_add(1);
                    if stats.cost > budget {
                        return Err(IrError::BudgetExceeded { limit: budget });
                    }
                    self.prec_stack.push(self.prec_ctx);
                    if let Some(bits) = types[slot as usize].and_then(Type::mantissa_bits) {
                        self.set_prec(bits);
                    }
                }
                RInstr::TickLoop => {
                    stats.loop_iters = stats.loop_iters.saturating_add(1);
                }
                RInstr::Check => {
                    if stats.cost > budget {
                        return Err(IrError::BudgetExceeded { limit: budget });
                    }
                }
                RInstr::PushPrec(bits) => {
                    self.prec_stack.push(self.prec_ctx);
                    if let Some(bits) = bits {
                        self.set_prec(bits);
                    }
                }
                RInstr::PushPrecOf(slot) => {
                    self.prec_stack.push(self.prec_ctx);
                    if let Some(bits) = types[slot as usize].and_then(Type::mantissa_bits) {
                        self.set_prec(bits);
                    }
                }
                RInstr::PopPrec => {
                    if let Some(saved) = self.prec_stack.pop() {
                        self.set_prec(saved);
                    }
                }
                RInstr::PopPrecStoreVar { src, slot } => {
                    if let Some(saved) = self.prec_stack.pop() {
                        self.set_prec(saved);
                    }
                    store_var(frame, types, chunk, src, slot)?;
                }
                RInstr::PopPrecStoreDecl { src, slot, ty } => {
                    if let Some(saved) = self.prec_stack.pop() {
                        self.set_prec(saved);
                    }
                    let value = coerce_scalar(take_opnd(frame, chunk, src)?, ty)?;
                    let slot = slot as usize;
                    types[slot] = Some(ty);
                    store_slot(frame, types, slot, value);
                }
                RInstr::TraceHead { trace } => {
                    let t = reg.traces[trace as usize];
                    match self.run_trace(&t, frame, types, stats, budget)? {
                        Some(exit) => pc = exit as usize,
                        None => {
                            // validation declined the trace: execute the
                            // head condition the trace replaced and fall
                            // through to the generic body
                            let unit = self.prec_unit;
                            let lv = read_opnd(frame, chunk, t.cond_l)?;
                            let rv = read_opnd(frame, chunk, t.cond_r)?;
                            let out = ops::apply_binary_with(
                                BinOp::Lt,
                                lv,
                                rv,
                                &self.cost_model,
                                || unit,
                                stats,
                            )?;
                            if !out.truthy() {
                                pc = t.exit as usize;
                            }
                        }
                    }
                }
            }
        }
        Ok(Value::Unit)
    }

    /// Executes a recognized loop trace natively, or returns `Ok(None)`
    /// (with **no** side effects) when entry validation cannot prove the
    /// native loop equivalent to the generic body.
    ///
    /// Validation establishes that the only errors the loop can raise are
    /// accounting failures (`CostOverflow` / `BudgetExceeded`): counter,
    /// bound and base are bound `Int`s, the accumulator a `Float` with a
    /// float (or absent) type binding, every index the loop will touch is
    /// in bounds, every element it will read a `Float`, and the counter
    /// never overflows. The loop then replays the *exact* charge sequence
    /// of the generic instructions — one checked charge per original
    /// charge, in original order, with the budget checkpoint at the loop
    /// tick and one `count_flops` call per float op so `flop_energy`
    /// accumulates bit-identically. On an accounting failure mid-loop the
    /// frame is left exactly as the generic engine would leave it
    /// (counter and accumulator at their last stored values) and, if the
    /// failure falls inside the loop's pushed precision window, that push
    /// is reconstructed before the error propagates.
    fn run_trace(
        &mut self,
        t: &Trace,
        frame: &mut [Value],
        types: &mut [Option<Type>],
        stats: &mut ExecStats,
        budget: u64,
    ) -> Result<Option<u32>, IrError> {
        let Value::Int(i0) = frame[t.ctr as usize] else {
            return Ok(None);
        };
        let bound = match t.bound {
            Bound::Const(b) => b,
            Bound::Slot(s) => match frame[s as usize] {
                Value::Int(b) => b,
                _ => return Ok(None),
            },
        };
        // the counter values the loop will visit: i0, i0+step, .., last;
        // the loop leaves the counter at last+step, which must not wrap
        // (a wrapping counter re-enters the loop with unvalidated indices)
        let range = if i0 < bound {
            let Some(last) = (bound - 1)
                .checked_sub(i0)
                .map(|span| span / t.step)
                .and_then(|k| k.checked_mul(t.step))
                .and_then(|d| i0.checked_add(d))
            else {
                return Ok(None);
            };
            if last.checked_add(t.step).is_none() {
                return Ok(None);
            }
            Some((i0, last))
        } else {
            None
        };
        let outer_prec = self.prec_ctx;
        let eff_bits = types[t.prec_slot as usize]
            .and_then(Type::mantissa_bits)
            .unwrap_or(outer_prec);
        let unit = ops::flop_unit(eff_bits);
        let cm = &self.cost_model;
        let (c_int, c_intmul, c_fmul, c_fop) = (cm.int_op, cm.int_mul, cm.float_mul, cm.float_op);
        match t.kind {
            TraceKind::Reduce {
                acc,
                arr_a,
                arr_b,
                base,
            } => {
                let acc_slot = acc as usize;
                let Value::Float(acc0) = frame[acc_slot] else {
                    return Ok(None);
                };
                let acc_ty = types[acc_slot];
                if acc_ty.is_some_and(|ty| !ty.is_float()) {
                    return Ok(None);
                }
                // the base product is loop-invariant only if its slot is
                // not the counter; checked here, wrapping in the generic
                // tier, so any overflow falls back
                let base_val = match base {
                    None => 0i64,
                    Some((slot, factor)) => {
                        if slot == t.ctr {
                            return Ok(None);
                        }
                        let Value::Int(v) = frame[slot as usize] else {
                            return Ok(None);
                        };
                        match v.checked_mul(factor) {
                            Some(b) => b,
                            None => return Ok(None),
                        }
                    }
                };
                let Some((lo, hi)) = range else {
                    // zero iterations: only the failing head condition runs
                    stats.charge(c_int)?;
                    return Ok(Some(t.exit));
                };
                let (mut i, mut acc) = (i0, acc0);
                let fail = {
                    let (Value::Array(a_items), Value::Array(b_items)) =
                        (&frame[arr_a as usize], &frame[arr_b as usize])
                    else {
                        return Ok(None);
                    };
                    let (Some(alo), Some(ahi)) =
                        (lo.checked_add(base_val), hi.checked_add(base_val))
                    else {
                        return Ok(None);
                    };
                    if !all_floats(a_items, alo, ahi) || !all_floats(b_items, lo, hi) {
                        return Ok(None);
                    }
                    let mut fail: Option<(IrError, bool)> = None;
                    loop {
                        // head condition (always Int < Int here)
                        if let Err(e) = stats.charge(c_int) {
                            fail = Some((e, false));
                            break;
                        }
                        if i >= bound {
                            break;
                        }
                        // loop tick: charge, traffic, iteration, budget
                        if let Err(e) = stats.charge(t.tick_cost) {
                            fail = Some((e, false));
                            break;
                        }
                        stats.mem_ops = stats.mem_ops.saturating_add(u64::from(t.tick_mem));
                        stats.loop_iters = stats.loop_iters.saturating_add(1);
                        if stats.cost > budget {
                            fail = Some((IrError::BudgetExceeded { limit: budget }, false));
                            break;
                        }
                        // precision context pushed from here to the store
                        if base.is_some() {
                            // base product and index addition (int charges)
                            if let Err(e) = stats.charge(c_intmul) {
                                fail = Some((e, true));
                                break;
                            }
                            if let Err(e) = stats.charge(c_int) {
                                fail = Some((e, true));
                                break;
                            }
                        }
                        let av = felem(a_items, base_val + i);
                        let bv = felem(b_items, i);
                        if let Err(e) = stats.charge(c_fmul) {
                            fail = Some((e, true));
                            break;
                        }
                        stats.count_flops(1, unit);
                        let m = av * bv;
                        if let Err(e) = stats.charge(c_fop) {
                            fail = Some((e, true));
                            break;
                        }
                        stats.count_flops(1, unit);
                        acc = quantize_opt(acc_ty, acc + m);
                        // precision popped (balanced); bottom-of-loop meter
                        if let Err(e) = stats.charge(t.meter_cost) {
                            fail = Some((e, false));
                            break;
                        }
                        stats.mem_ops = stats.mem_ops.saturating_add(u64::from(t.meter_mem));
                        if let Err(e) = stats.charge(c_int) {
                            fail = Some((e, false));
                            break;
                        }
                        i = i.wrapping_add(t.step);
                    }
                    fail
                };
                frame[t.ctr as usize] = Value::Int(i);
                frame[acc_slot] = Value::Float(acc);
                if let Some((e, prec_pushed)) = fail {
                    if prec_pushed {
                        self.prec_stack.push(outer_prec);
                        self.set_prec(eff_bits);
                    }
                    return Err(e);
                }
                Ok(Some(t.exit))
            }
            TraceKind::Stencil3 {
                taps,
                arr_out,
                w,
                offs,
            } => {
                let out_slot = arr_out as usize;
                let out_ty = types[out_slot];
                let Some((lo, hi)) = range else {
                    stats.charge(c_int)?;
                    return Ok(Some(t.exit));
                };
                let tap_offs = [offs[0], 0, offs[1]];
                {
                    let Value::Array(out_items) = &frame[out_slot] else {
                        return Ok(None);
                    };
                    if lo < 0 || hi >= out_items.len() as i64 {
                        return Ok(None);
                    }
                    for (k, &off) in tap_offs.iter().enumerate() {
                        let (Some(tlo), Some(thi)) = (lo.checked_add(off), hi.checked_add(off))
                        else {
                            return Ok(None);
                        };
                        let Value::Array(items) = &frame[taps[k] as usize] else {
                            return Ok(None);
                        };
                        if !all_floats(items, tlo, thi) {
                            return Ok(None);
                        }
                    }
                }
                // the output array is taken out of the frame so loads from
                // a tap that aliases it observe stores in program order;
                // it is restored on every exit path below
                let mut out_vec = match std::mem::replace(&mut frame[out_slot], Value::Unit) {
                    Value::Array(v) => v,
                    _ => unreachable!("validated as an array above"),
                };
                let mut i = i0;
                let mut fail: Option<(IrError, bool)> = None;
                loop {
                    if let Err(e) = stats.charge(c_int) {
                        fail = Some((e, false));
                        break;
                    }
                    if i >= bound {
                        break;
                    }
                    if let Err(e) = stats.charge(t.tick_cost) {
                        fail = Some((e, false));
                        break;
                    }
                    stats.mem_ops = stats.mem_ops.saturating_add(u64::from(t.tick_mem));
                    stats.loop_iters = stats.loop_iters.saturating_add(1);
                    if stats.cost > budget {
                        fail = Some((IrError::BudgetExceeded { limit: budget }, false));
                        break;
                    }
                    // precision window: first tap index (int), then the
                    // three weighted taps with their float charges
                    if let Err(e) = stats.charge(c_int) {
                        fail = Some((e, true));
                        break;
                    }
                    let v0 = tap_read(frame, out_slot, &out_vec, taps[0], i + tap_offs[0]);
                    if let Err(e) = stats.charge(c_fmul) {
                        fail = Some((e, true));
                        break;
                    }
                    stats.count_flops(1, unit);
                    let mut sum = w[0] * v0;
                    let v1 = tap_read(frame, out_slot, &out_vec, taps[1], i);
                    if let Err(e) = stats.charge(c_fmul) {
                        fail = Some((e, true));
                        break;
                    }
                    stats.count_flops(1, unit);
                    let p1 = w[1] * v1;
                    if let Err(e) = stats.charge(c_fop) {
                        fail = Some((e, true));
                        break;
                    }
                    stats.count_flops(1, unit);
                    sum += p1;
                    if let Err(e) = stats.charge(c_int) {
                        fail = Some((e, true));
                        break;
                    }
                    let v2 = tap_read(frame, out_slot, &out_vec, taps[2], i + tap_offs[2]);
                    if let Err(e) = stats.charge(c_fmul) {
                        fail = Some((e, true));
                        break;
                    }
                    stats.count_flops(1, unit);
                    let p2 = w[2] * v2;
                    if let Err(e) = stats.charge(c_fop) {
                        fail = Some((e, true));
                        break;
                    }
                    stats.count_flops(1, unit);
                    sum += p2;
                    // precision popped before the store; the store
                    // quantizes per the output's element type
                    out_vec[i as usize] = Value::Float(quantize_opt(out_ty, sum));
                    if let Err(e) = stats.charge(t.meter_cost) {
                        fail = Some((e, false));
                        break;
                    }
                    stats.mem_ops = stats.mem_ops.saturating_add(u64::from(t.meter_mem));
                    if let Err(e) = stats.charge(c_int) {
                        fail = Some((e, false));
                        break;
                    }
                    i = i.wrapping_add(t.step);
                }
                frame[out_slot] = Value::Array(out_vec);
                frame[t.ctr as usize] = Value::Int(i);
                if let Some((e, prec_pushed)) = fail {
                    if prec_pushed {
                        self.prec_stack.push(outer_prec);
                        self.set_prec(eff_bits);
                    }
                    return Err(e);
                }
                Ok(Some(t.exit))
            }
        }
    }
}

/// Resolves an operand to a borrowed value: a temporary directly, a named
/// slot with the unresolved-variable check, or a pool constant.
#[inline]
fn read_opnd<'a>(frame: &'a [Value], chunk: &'a Chunk, o: u16) -> Result<&'a Value, IrError> {
    let idx = (o & IDX_MASK) as usize;
    match o & TAG_MASK {
        0 => Ok(&frame[idx]),
        TAG_SLOT => match &frame[idx] {
            Value::Unit => Err(IrError::Unresolved(chunk.slot_names[idx].clone())),
            value => Ok(value),
        },
        _ => Ok(&chunk.consts[idx]),
    }
}

/// Resolves an operand to an owned value; temporaries are moved out (each
/// is consumed exactly once), slots and constants are cloned.
#[inline]
fn take_opnd(frame: &mut [Value], chunk: &Chunk, o: u16) -> Result<Value, IrError> {
    let idx = (o & IDX_MASK) as usize;
    match o & TAG_MASK {
        0 => Ok(std::mem::replace(&mut frame[idx], Value::Unit)),
        TAG_SLOT => match &frame[idx] {
            Value::Unit => Err(IrError::Unresolved(chunk.slot_names[idx].clone())),
            value => Ok(value.clone()),
        },
        _ => Ok(chunk.consts[idx].clone()),
    }
}

/// `StoreVar`: resolve the source, require the destination bound, coerce
/// per its dynamic type binding, store.
#[inline]
fn store_var(
    frame: &mut [Value],
    types: &[Option<Type>],
    chunk: &Chunk,
    src: u16,
    slot: u16,
) -> Result<(), IrError> {
    let value = take_opnd(frame, chunk, src)?;
    store_var_value(frame, types, chunk, slot, value)
}

/// `StoreVar` with an already-resolved source value.
#[inline]
fn store_var_value(
    frame: &mut [Value],
    types: &[Option<Type>],
    chunk: &Chunk,
    slot: u16,
    value: Value,
) -> Result<(), IrError> {
    let slot = slot as usize;
    if matches!(frame[slot], Value::Unit) {
        return Err(IrError::Unresolved(chunk.slot_names[slot].clone()));
    }
    let coerced = match types[slot] {
        Some(ty) => coerce_scalar_or_array(value, ty)?,
        None => value,
    };
    store_slot(frame, types, slot, coerced);
    Ok(())
}

/// Indexed read out of a named array slot, with the interpreter's exact
/// error vocabulary (unresolved → not-an-array → negative → out-of-bounds).
#[inline]
fn load_index(frame: &[Value], chunk: &Chunk, arr: u16, idx: i64) -> Result<Value, IrError> {
    let slot = arr as usize;
    let name = &chunk.slot_names[slot];
    let array = match &frame[slot] {
        Value::Unit => return Err(IrError::Unresolved(name.clone())),
        value => value,
    };
    let Value::Array(items) = array else {
        return Err(IrError::Type(format!("`{name}` is not an array")));
    };
    let len = items.len();
    items
        .get(
            usize::try_from(idx)
                .map_err(|_| IrError::Eval(format!("negative index {idx} into `{name}`")))?,
        )
        .cloned()
        .ok_or_else(|| {
            IrError::Eval(format!(
                "index {idx} out of bounds for `{name}` (len {len})"
            ))
        })
}

/// Indexed write into a named array slot, quantizing float elements per
/// the slot's declared element type.
#[inline]
fn store_index(
    frame: &mut [Value],
    types: &[Option<Type>],
    chunk: &Chunk,
    slot: u16,
    idx: i64,
    mut value: Value,
) -> Result<(), IrError> {
    let slot = slot as usize;
    let elem_ty = types[slot];
    let name = &chunk.slot_names[slot];
    let array = match &mut frame[slot] {
        Value::Unit => return Err(IrError::Unresolved(name.clone())),
        value => value,
    };
    let Value::Array(items) = array else {
        return Err(IrError::Type(format!("`{name}` is not an array")));
    };
    let len = items.len();
    let cell = items
        .get_mut(
            usize::try_from(idx)
                .map_err(|_| IrError::Eval(format!("negative index {idx} into `{name}`")))?,
        )
        .ok_or_else(|| {
            IrError::Eval(format!(
                "index {idx} out of bounds for `{name}` (len {len})"
            ))
        })?;
    if let (Some(ty), Value::Float(v)) = (elem_ty, &value) {
        value = Value::Float(ty.quantize(*v));
    }
    *cell = value;
    Ok(())
}

/// Trace validation: every element of `items[lo..=hi]` exists and is a
/// `Float`. A strided trace reads a subset of this range, so the check is
/// conservative (a non-float in a skipped element only costs the trace).
fn all_floats(items: &[Value], lo: i64, hi: i64) -> bool {
    if lo < 0 || hi >= items.len() as i64 {
        return false;
    }
    items[lo as usize..=hi as usize]
        .iter()
        .all(|v| matches!(v, Value::Float(_)))
}

/// Trace body: an element access whose bounds and kind were proven by
/// entry validation.
#[inline]
fn felem(items: &[Value], idx: i64) -> f64 {
    match items[idx as usize] {
        Value::Float(v) => v,
        _ => unreachable!("trace entry validation proved a float element"),
    }
}

/// Trace body: a stencil tap read, observing in-flight stores when the
/// tap aliases the (taken-out) output array.
#[inline]
fn tap_read(frame: &[Value], out_slot: usize, out_vec: &[Value], slot: u16, idx: i64) -> f64 {
    let items = if slot as usize == out_slot {
        out_vec
    } else {
        match &frame[slot as usize] {
            Value::Array(items) => items,
            _ => unreachable!("trace entry validation proved an array"),
        }
    };
    felem(items, idx)
}

/// The store-side quantization of [`store_slot`]/[`store_index`] on a raw
/// `f64` (identity when the binding is absent or full-width).
#[inline]
fn quantize_opt(ty: Option<Type>, v: f64) -> f64 {
    match ty {
        Some(ty) => ty.quantize(v),
        None => v,
    }
}

/// Stores into a slot, quantizing floats per the slot's dynamic type
/// binding (mirrors the interpreter's `Frame::store`).
fn store_slot(frame: &mut [Value], types: &[Option<Type>], slot: usize, mut value: Value) {
    if let (Some(ty), Value::Float(v)) = (types[slot], &value) {
        value = Value::Float(ty.quantize(*v));
    }
    frame[slot] = value;
}

impl Executor for Vm {
    fn call(&mut self, name: &str, args: &[Value], env: &mut ExecEnv) -> Result<Value, IrError> {
        Vm::call(self, name, args, env)
    }

    fn register_host(&mut self, name: String, f: HostFn) -> Option<HostFn> {
        Vm::register_host(self, name, f)
    }

    fn set_budget(&mut self, budget: Option<u64>) {
        Vm::set_budget(self, budget)
    }

    fn set_dispatcher(&mut self, dispatcher: Box<dyn Dispatcher>) {
        Vm::set_dispatcher(self, dispatcher)
    }

    fn program(&self) -> &Program {
        Vm::program(self)
    }

    fn program_mut(&mut self) -> &mut Program {
        Vm::program_mut(self)
    }

    fn engine_name(&self) -> &'static str {
        "vm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::cost::ExecStats;
    use antarex_ir::interp::Interp;
    use antarex_ir::parse_program;
    use std::cell::RefCell;

    fn run_both(src: &str, f: &str, args: &[Value]) -> ((Value, ExecStats), (Value, ExecStats)) {
        let program = parse_program(src).unwrap();
        let mut interp = Interp::new(program.clone());
        let mut ienv = ExecEnv::new();
        let iout = interp.call(f, args, &mut ienv).unwrap();
        let mut vm = Vm::new(program);
        let mut venv = ExecEnv::new();
        let vout = vm.call(f, args, &mut venv).unwrap();
        ((iout, ienv.stats), (vout, venv.stats))
    }

    fn assert_identical(src: &str, f: &str, args: &[Value]) {
        let ((iout, istats), (vout, vstats)) = run_both(src, f, args);
        assert_eq!(iout, vout, "values differ for {f}");
        assert_eq!(istats.cost, vstats.cost, "cost differs for {f}");
        assert_eq!(istats.flops, vstats.flops, "flops differ for {f}");
        assert_eq!(
            istats.flop_energy.to_bits(),
            vstats.flop_energy.to_bits(),
            "flop_energy differs for {f}"
        );
        assert_eq!(istats.mem_ops, vstats.mem_ops, "mem_ops differ for {f}");
        assert_eq!(
            istats.loop_iters, vstats.loop_iters,
            "loop_iters differ for {f}"
        );
        assert_eq!(istats.calls, vstats.calls, "calls differ for {f}");
        assert_eq!(
            istats.host_calls, vstats.host_calls,
            "host_calls differ for {f}"
        );
    }

    #[test]
    fn recursion_matches_interp() {
        assert_identical(
            "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }",
            "fib",
            &[Value::Int(12)],
        );
    }

    #[test]
    fn dot_product_matches_interp() {
        assert_identical(
            "double dot(double a[], double b[], int n) {
                 double s = 0.0;
                 for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
                 return s;
             }",
            "dot",
            &[
                Value::from(vec![1.5, 2.0, -3.25, 4.0]),
                Value::from(vec![0.5, 1.0, 2.0, -1.0]),
                Value::Int(4),
            ],
        );
    }

    #[test]
    fn short_circuit_and_builtins_match_interp() {
        assert_identical(
            "double f(double x, int n) {
                 double acc = 0.0;
                 for (int i = 0; i < n; i++) {
                     if (i % 2 == 0 && x > 0.0 || i == 3) { acc += sqrt(x) + pow(x, 2.0); }
                     else { acc -= fmin(x, 1.0); }
                 }
                 return fabs(acc);
             }",
            "f",
            &[Value::Float(2.25), Value::Int(7)],
        );
    }

    #[test]
    fn reduced_precision_matches_interp() {
        assert_identical(
            "double f(double a[], int n) {
                 float4 s = 0.0;
                 for (int i = 0; i < n; i++) { s += a[i] * 1.0625; }
                 return s;
             }",
            "f",
            &[Value::from(vec![1.03125, 2.0, 4.125]), Value::Int(3)],
        );
    }

    #[test]
    fn array_copy_out_matches_interp() {
        assert_identical(
            "void fill(double a[], int n) { for (int i = 0; i < n; i++) { a[i] = i * 2.0; } }
             double use() { double buf[4]; fill(buf, 4); return buf[3] + buf[0]; }",
            "use",
            &[],
        );
    }

    #[test]
    fn while_and_modulo_match_interp() {
        assert_identical(
            "int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }",
            "gcd",
            &[Value::Int(1071), Value::Int(462)],
        );
    }

    #[test]
    fn budget_stops_infinite_loop() {
        let program = parse_program("void f() { while (1) { } }").unwrap();
        let mut vm = Vm::new(program);
        vm.set_budget(Some(10_000));
        let err = vm.call("f", &[], &mut ExecEnv::new()).unwrap_err();
        assert!(matches!(err, IrError::BudgetExceeded { .. }));
    }

    #[test]
    fn budget_error_is_identical_to_interp() {
        let src =
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i * i; } return s; }";
        let program = parse_program(src).unwrap();
        let mut interp = Interp::new(program.clone());
        interp.set_budget(Some(500));
        let ierr = interp
            .call("f", &[Value::Int(1000)], &mut ExecEnv::new())
            .unwrap_err();
        let mut vm = Vm::new(program);
        vm.set_budget(Some(500));
        let verr = vm
            .call("f", &[Value::Int(1000)], &mut ExecEnv::new())
            .unwrap_err();
        assert_eq!(ierr, verr);
    }

    #[test]
    fn host_call_trace_is_identical() {
        let src =
            "void probe(int n) { for (int i = 0; i < n; i++) { record(\"iter\", i, i * i); } }";
        let program = parse_program(src).unwrap();
        let run_traced = |engine: &mut dyn Executor| {
            let collected = std::rc::Rc::new(RefCell::new(Vec::new()));
            let sink = std::rc::Rc::clone(&collected);
            engine.register_host(
                "record".into(),
                Box::new(move |args: &[Value]| {
                    sink.borrow_mut().push(args.to_vec());
                    Ok(Value::Unit)
                }),
            );
            engine
                .call("probe", &[Value::Int(4)], &mut ExecEnv::new())
                .unwrap();
            let trace = collected.borrow().clone();
            trace
        };
        let interp_trace = {
            let mut interp = Interp::new(program.clone());
            run_traced(&mut interp)
        };
        let vm_trace = {
            let mut vm = Vm::new(program);
            run_traced(&mut vm)
        };
        assert_eq!(interp_trace, vm_trace);
        assert_eq!(interp_trace.len(), 4);
    }

    #[test]
    fn dispatcher_redirects_and_invalidates_memo() {
        struct Redirect;
        impl Dispatcher for Redirect {
            fn resolve(
                &mut self,
                callee: &str,
                args: &[Value],
                program: &mut Program,
            ) -> Result<Option<String>, IrError> {
                if callee == "kernel" && args == [Value::Int(2)] {
                    if !program.contains("kernel_2") {
                        let specialized =
                            parse_program("int kernel_2(int x) { return 222; }").unwrap();
                        program.insert((**specialized.function("kernel_2").unwrap()).clone());
                    }
                    return Ok(Some("kernel_2".into()));
                }
                Ok(None)
            }
        }
        let program =
            parse_program("int kernel(int x) { return x; } int f(int x) { return kernel(x); }")
                .unwrap();
        let mut vm = Vm::new(program);
        vm.set_dispatcher(Box::new(Redirect));
        let mut env = ExecEnv::new();
        assert_eq!(
            vm.call("f", &[Value::Int(1)], &mut env).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            vm.call("f", &[Value::Int(2)], &mut env).unwrap(),
            Value::Int(222)
        );
        assert!(vm.program().contains("kernel_2"));
    }

    #[test]
    fn runaway_recursion_is_caught() {
        let program = parse_program("int f(int x) { return f(x + 1); }").unwrap();
        let mut vm = Vm::new(program);
        vm.set_budget(None);
        let err = vm
            .call("f", &[Value::Int(0)], &mut ExecEnv::new())
            .unwrap_err();
        assert!(err.to_string().contains("call depth"), "{err}");
        // the VM remains usable afterwards
        *vm.program_mut() = parse_program("int g() { return 7; }").unwrap();
        assert_eq!(
            vm.call("g", &[], &mut ExecEnv::new()).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn from_compiled_runs_without_a_program() {
        let program = parse_program("int inc(int x) { return x + 1; }").unwrap();
        let compiled = Arc::new(crate::lower::lower_program(&program, &CostModel::new()));
        let mut vm = Vm::from_compiled(compiled);
        assert_eq!(
            vm.call("inc", &[Value::Int(41)], &mut ExecEnv::new())
                .unwrap(),
            Value::Int(42)
        );
        assert!(vm.program().is_empty());
    }

    #[test]
    fn program_edit_invalidates_the_memo() {
        let program = parse_program("int f() { return 1; }").unwrap();
        let mut vm = Vm::new(program);
        assert_eq!(
            vm.call("f", &[], &mut ExecEnv::new()).unwrap(),
            Value::Int(1)
        );
        *vm.program_mut() = parse_program("int f() { return 2; }").unwrap();
        assert_eq!(
            vm.call("f", &[], &mut ExecEnv::new()).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn unknown_function_is_unresolved() {
        let program = parse_program("void f() { ghost(); }").unwrap();
        let mut vm = Vm::new(program);
        let err = vm.call("f", &[], &mut ExecEnv::new()).unwrap_err();
        assert_eq!(err, IrError::Unresolved("ghost".into()));
    }

    #[test]
    fn executor_trait_object_works() {
        let program = parse_program("int inc(int x) { return x + 1; }").unwrap();
        let mut engine: Box<dyn Executor> = Box::new(Vm::new(program));
        assert_eq!(engine.engine_name(), "vm");
        let out = engine
            .call("inc", &[Value::Int(41)], &mut ExecEnv::new())
            .unwrap();
        assert_eq!(out, Value::Int(42));
    }
}
