//! The weave-time instrumented-code cache.
//!
//! Lowering a program injects metering instructions — it *instruments*
//! the code. [`InstrumentedCodeCache`] memoizes that work under a
//! [`CodeKey`] (structural program digest × metering-parameter digest),
//! so a given `(program, cost model)` pair lowers exactly once per
//! process and the resulting [`CompiledProgram`] is shared — across
//! serving tenants, DSE rounds and precision sweeps alike.
//!
//! The cache is `Sync`: chunks are `Arc`-shared and the map sits behind a
//! mutex (lowering is fast enough that holding the lock during a miss is
//! cheaper than the stampede it prevents).

use crate::bytecode::CompiledProgram;
use crate::digest::CodeKey;
use crate::lower::lower_program;
use antarex_ir::ast::Program;
use antarex_ir::cost::CostModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Process-wide cache of instrumented (metered) bytecode.
///
/// # Examples
///
/// ```
/// use antarex_ir::{cost::CostModel, parse_program};
/// use antarex_vm::InstrumentedCodeCache;
///
/// # fn main() -> Result<(), antarex_ir::IrError> {
/// let cache = InstrumentedCodeCache::new();
/// let program = parse_program("int f(int x) { return x * x; }")?;
/// let model = CostModel::new();
/// let a = cache.instrument(&program, &model);
/// let b = cache.instrument(&program, &model);
/// assert!(std::sync::Arc::ptr_eq(&a, &b), "second lookup is a hit");
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct InstrumentedCodeCache {
    map: Mutex<HashMap<CodeKey, Arc<CompiledProgram>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl InstrumentedCodeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the instrumented bytecode for `(program, model)`, lowering
    /// (and caching) it on first sight of the pair.
    pub fn instrument(&self, program: &Program, model: &CostModel) -> Arc<CompiledProgram> {
        let key = CodeKey::of(program, model);
        let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(entry.get())
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Arc::clone(entry.insert(Arc::new(lower_program(program, model))))
            }
        }
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to lower.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct `(program, model)` pairs cached.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Returns `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit fraction over all lookups so far (0.0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::parse_program;

    #[test]
    fn cache_is_send_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<InstrumentedCodeCache>();
    }

    #[test]
    fn distinct_programs_get_distinct_entries() {
        let cache = InstrumentedCodeCache::new();
        let model = CostModel::new();
        let a = parse_program("int f() { return 1; }").unwrap();
        let b = parse_program("int f() { return 2; }").unwrap();
        let ca = cache.instrument(&a, &model);
        let cb = cache.instrument(&b, &model);
        assert!(!Arc::ptr_eq(&ca, &cb));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cost_model_is_part_of_the_key() {
        let cache = InstrumentedCodeCache::new();
        let program = parse_program("int f(int x) { return x + 1; }").unwrap();
        let base = CostModel::new();
        let mut tweaked = CostModel::new();
        tweaked.reg_op += 1;
        let a = cache.instrument(&program, &base);
        let b = cache.instrument(&program, &tweaked);
        assert!(!Arc::ptr_eq(&a, &b), "different metering, different entry");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn hit_rate_reflects_replay() {
        let cache = InstrumentedCodeCache::new();
        let model = CostModel::new();
        let program = parse_program("int f() { return 0; }").unwrap();
        for _ in 0..20 {
            cache.instrument(&program, &model);
        }
        assert_eq!(cache.hits(), 19);
        assert_eq!(cache.misses(), 1);
        assert!(cache.hit_rate() > 0.94);
    }

    #[test]
    fn concurrent_instrumentation_shares_one_lowering() {
        let cache = Arc::new(InstrumentedCodeCache::new());
        // Program is not Send (Rc inside), so each thread parses its own
        // copy — structural digesting still maps them to one cache entry.
        let src = "int f(int x) { return x * x; }";
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let program = parse_program(src).unwrap();
                    cache.instrument(&program, &CostModel::new())
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for pair in results.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }
}
