//! Native loop traces: the third execution tier.
//!
//! The register form ([`crate::reg`]) already fuses the dispatch-heavy
//! sequences of a metered loop into superinstructions, but every
//! iteration still pays a handful of dispatches plus `Value` traffic for
//! work whose *shape* is fixed for the whole loop. This module
//! recognizes the two canonical float-kernel idioms of the mini-C
//! substrate — the reduce loop (`acc += A[base + i] * B[i]`, covering
//! dot products, sums of squares and matvec inner loops) and the
//! three-tap affine stencil (`Out[i] = w0*In[i+o0] + w1*In[i] +
//! w2*In[i+o2]`) — and compiles each into a [`Trace`] descriptor that
//! the VM executes as a single native loop.
//!
//! Bit-identity is preserved by construction, not by luck:
//!
//! * the native loop performs the **exact charge sequence** of the
//!   generic superinstructions, one `checked_add` per original charge in
//!   original order, with the budget checkpoint in its original place
//!   (after the loop tick), so `BudgetExceeded` and `CostOverflow`
//!   surface at the same iteration with the same partial statistics;
//! * flop counting uses the same [`ExecStats::count_flops`] call per
//!   floating-point op, so `flop_energy` accumulates in the same order
//!   with the same per-op unit (one f64 add per flop — batching would
//!   change the rounding);
//! * stores quantize through the same `Type::quantize` per iteration;
//! * entry **validation** proves that no per-iteration error other than
//!   a charge failure is possible (slots bound and correctly typed,
//!   every index in bounds, every loaded element a float); anything the
//!   validator cannot prove falls back to the generic register tier,
//!   which produces the exact error at the exact point.
//!
//! A trace replaces the loop's head condition with
//! [`RInstr::TraceHead`]; the generic body stays in place after it, so
//! fallback costs one extra validation attempt per loop entry and
//! nothing else.

use crate::bytecode::Chunk;
use crate::reg::{RInstr, IDX_MASK, TAG_CONST, TAG_MASK, TAG_SLOT};
use antarex_ir::ast::BinOp;
use antarex_ir::value::Value;

/// Where the loop bound comes from.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Bound {
    /// Constant bound, resolved at build time.
    Const(i64),
    /// An `int` slot, read (and type-checked) at every trace entry.
    Slot(u16),
}

/// The recognized loop body shape.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TraceKind {
    /// `acc += A[base + i] * B[i]`, where `base` is zero or an
    /// invariant `slot * factor` product whose integer charges are
    /// replayed every iteration (the matvec inner loop recomputes it).
    Reduce {
        acc: u16,
        arr_a: u16,
        arr_b: u16,
        base: Option<(u16, i64)>,
    },
    /// `Out[i] = w[0]*T0[i + offs[0]] + w[1]*T1[i] + w[2]*T2[i + offs[1]]`.
    Stencil3 {
        taps: [u16; 3],
        arr_out: u16,
        w: [f64; 3],
        offs: [i64; 2],
    },
}

/// A compiled native loop: the loop-control scaffolding shared by both
/// kinds plus the body shape. All constants are resolved at build time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Trace {
    /// Loop counter slot (must hold an `Int` at entry).
    pub ctr: u16,
    /// Loop bound (`ctr < bound`, strict less-than only).
    pub bound: Bound,
    /// Step constant (`ctr += step`), `>= 1`.
    pub step: i64,
    /// `LoopTickPushPrecOf` charge.
    pub tick_cost: u64,
    /// `LoopTickPushPrecOf` memory traffic.
    pub tick_mem: u32,
    /// Slot whose type binding sets the in-loop precision context.
    pub prec_slot: u16,
    /// Bottom-of-loop meter charge.
    pub meter_cost: u64,
    /// Bottom-of-loop meter memory traffic.
    pub meter_mem: u32,
    /// Program counter just past the loop.
    pub exit: u32,
    /// Original head condition (for the generic fallback path).
    pub cond_l: u16,
    /// Original head condition, right operand.
    pub cond_r: u16,
    /// The body shape.
    pub kind: TraceKind,
}

#[inline]
fn as_slot(o: u16) -> Option<u16> {
    (o & TAG_MASK == TAG_SLOT).then_some(o & IDX_MASK)
}

#[inline]
fn as_plain(o: u16) -> Option<u16> {
    (o & TAG_MASK == 0).then_some(o)
}

fn const_int(chunk: &Chunk, o: u16) -> Option<i64> {
    if o & TAG_MASK != TAG_CONST {
        return None;
    }
    match chunk.consts.get((o & IDX_MASK) as usize) {
        Some(Value::Int(v)) => Some(*v),
        _ => None,
    }
}

fn const_float(chunk: &Chunk, o: u16) -> Option<f64> {
    if o & TAG_MASK != TAG_CONST {
        return None;
    }
    match chunk.consts.get((o & IDX_MASK) as usize) {
        Some(Value::Float(v)) => Some(*v),
        _ => None,
    }
}

/// The loop-control scaffolding every trace shares: head condition at
/// `h`, tick at `h + 1`, meter + step + back-edge at `h + len - 1`.
struct Scaffold {
    ctr: u16,
    bound: Bound,
    cond_l: u16,
    cond_r: u16,
    exit: u32,
    tick_cost: u64,
    tick_mem: u32,
    prec_slot: u16,
}

fn scaffold(code: &[RInstr], chunk: &Chunk, h: usize, body_len: usize) -> Option<Scaffold> {
    let RInstr::BinJumpIfFalsy {
        op: BinOp::Lt,
        l,
        r,
        target,
    } = code[h]
    else {
        return None;
    };
    let ctr = as_slot(l)?;
    let bound = match as_slot(r) {
        Some(slot) => Bound::Slot(slot),
        None => Bound::Const(const_int(chunk, r)?),
    };
    let exit = h.checked_add(body_len)? as u32;
    if target != exit || code.len() < exit as usize {
        return None;
    }
    let RInstr::LoopTickPushPrecOf {
        cost: tick_cost,
        mem_ops: tick_mem,
        slot: prec_slot,
    } = code[h + 1]
    else {
        return None;
    };
    Some(Scaffold {
        ctr,
        bound,
        cond_l: l,
        cond_r: r,
        exit,
        tick_cost,
        tick_mem,
        prec_slot,
    })
}

/// The trailing meter + step + back-edge, shared by both shapes.
fn back_edge(
    code: &[RInstr],
    chunk: &Chunk,
    at: usize,
    ctr: u16,
    head: usize,
) -> Option<(u64, u32, i64)> {
    let RInstr::MeterBinStoreForStepJump {
        cost,
        mem_ops,
        op: BinOp::Add,
        l,
        r,
        slot,
        target,
    } = code[at]
    else {
        return None;
    };
    if as_slot(l)? != ctr || slot != ctr || target as usize != head {
        return None;
    }
    let step = const_int(chunk, r)?;
    (step >= 1).then_some((cost, mem_ops, step))
}

/// Recognizes a reduce loop at `h`:
/// ```text
/// h    BinJumpIfFalsy { Lt, ctr, bound, -> exit }
/// h+1  LoopTickPushPrecOf { acc }
///      -- direct form --               -- based form (matvec inner) --
/// h+2  ReadLoadIndex { acc, ta, A[ctr], tb }   Read { acc, ta }
/// h+3  BinLoad { Mul, tb, B[ctr], tb }         Binary { Mul, s, factor, t }
/// h+4  BinPopPrecStoreVar { Add, ta, tb, acc } BinLoadIndex { Add, t, ctr, A, t }
/// h+5  MeterBinStoreForStepJump { -> h }       BinLoad { Mul, t, B[ctr], t }
///                                              BinPopPrecStoreVar { Add, ta, t, acc }
///                                              MeterBinStoreForStepJump { -> h }
/// ```
fn match_reduce(code: &[RInstr], chunk: &Chunk, h: usize) -> Option<Trace> {
    // try the direct form first, then the based form
    for (body_len, based) in [(6usize, false), (8, true)] {
        if h + body_len > code.len() {
            continue;
        }
        let Some(s) = scaffold(code, chunk, h, body_len) else {
            continue;
        };
        let ctr_opnd = TAG_SLOT | s.ctr;
        let (acc, ta, arr_a, arr_b, base, vb) = if based {
            let RInstr::Read { slot: acc, dst: ta } = code[h + 2] else {
                continue;
            };
            let RInstr::Binary {
                op: BinOp::Mul,
                l: bl,
                r: br,
                dst: t1,
            } = code[h + 3]
            else {
                continue;
            };
            let (bslot, bfac) = (as_slot(bl), const_int(chunk, br));
            let RInstr::BinLoadIndex {
                op: BinOp::Add,
                l: il,
                r: ir,
                arr: arr_a,
                dst: t2,
            } = code[h + 4]
            else {
                continue;
            };
            let RInstr::BinLoad {
                op: BinOp::Mul,
                l: ml,
                arr: arr_b,
                idx,
                dst: vb,
            } = code[h + 5]
            else {
                continue;
            };
            if as_plain(il) != Some(t1)
                || ir != ctr_opnd
                || as_plain(ml) != Some(t2)
                || idx != ctr_opnd
            {
                continue;
            }
            let (Some(bslot), Some(bfac)) = (bslot, bfac) else {
                continue;
            };
            (acc, ta, arr_a, arr_b, Some((bslot, bfac)), vb)
        } else {
            let RInstr::ReadLoadIndex {
                pre: acc,
                pre_dst: ta,
                arr: arr_a,
                idx,
                dst: va,
            } = code[h + 2]
            else {
                continue;
            };
            let RInstr::BinLoad {
                op: BinOp::Mul,
                l: ml,
                arr: arr_b,
                idx: idx2,
                dst: vb,
            } = code[h + 3]
            else {
                continue;
            };
            if idx != ctr_opnd || idx2 != ctr_opnd || as_plain(ml) != Some(va) {
                continue;
            }
            (acc, ta, arr_a, arr_b, None, vb)
        };
        let store_at = h + body_len - 2;
        let RInstr::BinPopPrecStoreVar {
            op: BinOp::Add,
            l: sl,
            r: sr,
            slot,
        } = code[store_at]
        else {
            continue;
        };
        if as_plain(sl) != Some(ta) || as_plain(sr) != Some(vb) || slot != acc || acc != s.prec_slot
        {
            continue;
        }
        let (meter_cost, meter_mem, step) = back_edge(code, chunk, h + body_len - 1, s.ctr, h)?;
        return Some(Trace {
            ctr: s.ctr,
            bound: s.bound,
            step,
            tick_cost: s.tick_cost,
            tick_mem: s.tick_mem,
            prec_slot: s.prec_slot,
            meter_cost,
            meter_mem,
            exit: s.exit,
            cond_l: s.cond_l,
            cond_r: s.cond_r,
            kind: TraceKind::Reduce {
                acc,
                arr_a,
                arr_b,
                base,
            },
        });
    }
    None
}

/// Recognizes a three-tap stencil loop at `h`:
/// ```text
/// h    BinJumpIfFalsy { Lt, ctr, bound, -> exit }
/// h+1  LoopTickPushPrecOf
/// h+2  BinLoadIndex { Sub, ctr, o0, T0, v0 }
/// h+3  Binary  { Mul, w0, v0, t }
/// h+4  BinLoad { Mul, w1, T1[ctr], v1 }
/// h+5  Binary  { Add, t, v1, t }
/// h+6  BinLoadIndex { Add, ctr, o2, T2, v2 }
/// h+7  Binary  { Mul, w2, v2, u }
/// h+8  Binary  { Add, t, u, t }
/// h+9  PopPrec
/// h+10 StoreIndex { t, ctr, Out }
/// h+11 MeterBinStoreForStepJump { -> h }
/// ```
fn match_stencil(code: &[RInstr], chunk: &Chunk, h: usize) -> Option<Trace> {
    const BODY: usize = 12;
    if h + BODY > code.len() {
        return None;
    }
    let s = scaffold(code, chunk, h, BODY)?;
    let ctr_opnd = TAG_SLOT | s.ctr;
    let RInstr::BinLoadIndex {
        op: BinOp::Sub,
        l: l0,
        r: r0,
        arr: t0,
        dst: v0,
    } = code[h + 2]
    else {
        return None;
    };
    let RInstr::Binary {
        op: BinOp::Mul,
        l: w0,
        r: m0r,
        dst: acc0,
    } = code[h + 3]
    else {
        return None;
    };
    let RInstr::BinLoad {
        op: BinOp::Mul,
        l: w1,
        arr: t1,
        idx: i1,
        dst: v1,
    } = code[h + 4]
    else {
        return None;
    };
    let RInstr::Binary {
        op: BinOp::Add,
        l: a1l,
        r: a1r,
        dst: acc1,
    } = code[h + 5]
    else {
        return None;
    };
    let RInstr::BinLoadIndex {
        op: BinOp::Add,
        l: l2,
        r: r2,
        arr: t2,
        dst: v2,
    } = code[h + 6]
    else {
        return None;
    };
    let RInstr::Binary {
        op: BinOp::Mul,
        l: w2,
        r: m2r,
        dst: u2,
    } = code[h + 7]
    else {
        return None;
    };
    let RInstr::Binary {
        op: BinOp::Add,
        l: a2l,
        r: a2r,
        dst: acc2,
    } = code[h + 8]
    else {
        return None;
    };
    if code[h + 9] != RInstr::PopPrec {
        return None;
    }
    let RInstr::StoreIndex {
        val,
        idx: si,
        slot: arr_out,
    } = code[h + 10]
    else {
        return None;
    };
    // operand wiring: every tap indexes the counter, every temp chains
    if l0 != ctr_opnd || i1 != ctr_opnd || l2 != ctr_opnd || si != ctr_opnd {
        return None;
    }
    if as_plain(m0r) != Some(v0)
        || as_plain(a1l) != Some(acc0)
        || as_plain(a1r) != Some(v1)
        || as_plain(a2l) != Some(acc1)
        || as_plain(m2r) != Some(v2)
        || as_plain(a2r) != Some(u2)
        || as_plain(val) != Some(acc2)
    {
        return None;
    }
    let o0 = const_int(chunk, r0)?;
    let o2 = const_int(chunk, r2)?;
    let w = [
        const_float(chunk, w0)?,
        const_float(chunk, w1)?,
        const_float(chunk, w2)?,
    ];
    let (meter_cost, meter_mem, step) = back_edge(code, chunk, h + 11, s.ctr, h)?;
    Some(Trace {
        ctr: s.ctr,
        bound: s.bound,
        step,
        tick_cost: s.tick_cost,
        tick_mem: s.tick_mem,
        prec_slot: s.prec_slot,
        meter_cost,
        meter_mem,
        exit: s.exit,
        cond_l: s.cond_l,
        cond_r: s.cond_r,
        kind: TraceKind::Stencil3 {
            taps: [t0, t1, t2],
            arr_out,
            // the first tap's index is `ctr - o0`, the third's `ctr + o2`
            offs: [o0.checked_neg()?, o2],
            w,
        },
    })
}

/// Scans finished register code for traceable loops. Returns the traces
/// and rewrites each recognized head into [`RInstr::TraceHead`].
pub(crate) fn detect(code: &mut [RInstr], chunk: &Chunk) -> Vec<Trace> {
    let mut traces = Vec::new();
    for h in 0..code.len() {
        if traces.len() >= u16::MAX as usize {
            break;
        }
        if let Some(trace) = match_reduce(code, chunk, h).or_else(|| match_stencil(code, chunk, h))
        {
            code[h] = RInstr::TraceHead {
                trace: traces.len() as u16,
            };
            traces.push(trace);
        }
    }
    traces
}
