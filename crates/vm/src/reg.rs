//! Stack bytecode → register form: the dispatch tier the VM executes.
//!
//! The stack [`Chunk`](crate::bytecode::Chunk) is the *instrumentation
//! format* — it is what lowering produces, what the code cache shares
//! and what the metering reports inspect. Executing it directly,
//! however, pays for a push/pop of a 32-byte `Value` around every
//! operand. This module converts a chunk once (lazily, memoized on the
//! chunk) into an equivalent **register form** where every operand is a
//! direct frame index: locals keep their slots, and each stack depth `d`
//! becomes the fixed temporary `num_slots + d` (stack depths are static
//! in structured code, so the conversion is a compile-time simulation).
//!
//! Three rules keep the conversion bit-identical to stack execution —
//! the differential suite drives random programs through both the
//! interpreter and this tier:
//!
//! 1. **Adjacent loads become operands.** A `LoadVar`/`Const` whose
//!    value is consumed with no *observable* instruction in between
//!    (nothing that can error, charge, or call) is folded into the
//!    consumer as a tagged operand; its unresolved-variable check runs
//!    at resolution, in original left-to-right order.
//! 2. **Observable instructions materialize first.** Before anything
//!    that can error or touch the statistics, every pending variable
//!    alias deeper in the stack is read into its canonical temporary
//!    ([`RInstr::Read`]), preserving the original read-and-error order.
//! 3. **Jumps see canonical frames.** At every jump, and therefore at
//!    every jump target, live entries sit in their depth-indexed
//!    temporaries, so both edges of a merge agree on where values live.
//!
//! The conversion also fuses the dispatch-heavy sequences that dominate
//! loop execution (`Meter`+`Check`, `Meter`+`TickLoop`+`Check`,
//! `Meter`+`JumpIfFalsy`, `PopPrec`+store, step+back-edge) into single
//! instructions, guarded so a fused interior is never a jump target.
//! Fused execution preserves the exact charge/check order of the
//! unfused sequence.

use crate::bytecode::{Chunk, Instr};
use antarex_ir::ast::{BinOp, UnOp};
use antarex_ir::types::Type;

/// Operand tag bits (high two bits of a `u16` operand).
pub(crate) const TAG_MASK: u16 = 0xC000;
/// Operand names a local slot: resolve with an unresolved-variable check.
pub(crate) const TAG_SLOT: u16 = 0x4000;
/// Operand indexes the constant pool.
pub(crate) const TAG_CONST: u16 = 0x8000;
/// Low bits: the frame/pool index an operand refers to.
pub(crate) const IDX_MASK: u16 = 0x3FFF;

/// One register-form instruction. Operand fields (`src`, `l`, `r`,
/// `cond`, `val`, `idx`) are tagged per [`TAG_MASK`]; destination and
/// slot fields are plain frame indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum RInstr {
    /// `frame[dst] = consts[idx]`.
    Const { idx: u32, dst: u16 },
    /// `frame[dst] = frame[slot]` with the unresolved-variable check.
    Read { slot: u16, dst: u16 },
    /// `frame[dst] = frame[arr][idx]` (bounds-checked).
    LoadIndex { arr: u16, idx: u16, dst: u16 },
    /// Fused variable read + indexed load (the `acc … a[i]` prologue):
    /// `frame[pre_dst] = frame[pre]` (checked), then the indexed load.
    ReadLoadIndex {
        pre: u16,
        pre_dst: u16,
        arr: u16,
        idx: u16,
        dst: u16,
    },
    /// Fused binary whose right operand is an indexed load:
    /// `frame[dst] = op(l, frame[arr][idx])` — the load runs first,
    /// exactly as the unfused pair did.
    BinLoad {
        op: BinOp,
        l: u16,
        arr: u16,
        idx: u16,
        dst: u16,
    },
    /// Fused binary feeding an indexed load's index:
    /// `frame[dst] = frame[arr][op(l, r)]` — the binary (and its
    /// charges) runs first, exactly as the unfused pair did.
    BinLoadIndex {
        op: BinOp,
        l: u16,
        r: u16,
        arr: u16,
        dst: u16,
    },
    /// Declaration with initializer: coerce to `ty`, bind, store.
    StoreDecl { src: u16, slot: u16, ty: Type },
    /// Declaration without initializer: bind `ty`, store its zero.
    DeclDefault { slot: u16, ty: Type },
    /// Array declaration: bind `ty`, allocate `size` zeros.
    NewArray { slot: u16, ty: Type, size: u32 },
    /// Assignment to an existing variable.
    StoreVar { src: u16, slot: u16 },
    /// Array element assignment.
    StoreIndex { val: u16, idx: u16, slot: u16 },
    /// Fused binary + array element assignment of its result.
    BinStoreIndex {
        op: BinOp,
        l: u16,
        r: u16,
        idx: u16,
        slot: u16,
    },
    /// `for` init: bind `int`, coerce, store.
    StoreForInit { src: u16, slot: u16 },
    /// `for` step: coerce to `int`, store without re-binding.
    StoreForStep { src: u16, slot: u16 },
    /// Fused `for` step + back-edge jump.
    StoreForStepJump { src: u16, slot: u16, target: u32 },
    /// Unary operator via `ops::apply_unary_with`.
    Unary { op: UnOp, src: u16, dst: u16 },
    /// Binary operator via `ops::apply_binary_with`.
    Binary { op: BinOp, l: u16, r: u16, dst: u16 },
    /// Fused binary + conditional jump on its (consumed) result.
    BinJumpIfFalsy {
        op: BinOp,
        l: u16,
        r: u16,
        target: u32,
    },
    /// Fused binary + `for` step store + back-edge jump.
    BinStoreForStepJump {
        op: BinOp,
        l: u16,
        r: u16,
        slot: u16,
        target: u32,
    },
    /// Fused static meter + binary + `for` step store + back-edge jump
    /// (the full bottom-of-loop sequence).
    MeterBinStoreForStepJump {
        cost: u64,
        mem_ops: u32,
        op: BinOp,
        l: u16,
        r: u16,
        slot: u16,
        target: u32,
    },
    /// Fused binary + `PopPrec` + `StoreVar` (the `x = a ⊕ b` shape).
    BinPopPrecStoreVar {
        op: BinOp,
        l: u16,
        r: u16,
        slot: u16,
    },
    /// Fused binary + `PopPrec` + `StoreDecl` (the `T x = a ⊕ b` shape).
    BinPopPrecStoreDecl {
        op: BinOp,
        l: u16,
        r: u16,
        slot: u16,
        ty: Type,
    },
    /// Fused budget check + `PushPrec` (statement prologue of a store).
    CheckPushPrec(Option<u8>),
    /// Fused budget check + `PushPrecOf`.
    CheckPushPrecOf(u16),
    /// `frame[dst] = Int(truthy(src))`.
    CastBool { src: u16, dst: u16 },
    /// Unconditional jump.
    Jump(u32),
    /// Jump when `cond` is falsy.
    JumpIfFalsy { cond: u16, target: u32 },
    /// Fused static meter + conditional jump (charge, then test).
    MeterJumpIfFalsy {
        cost: u64,
        mem_ops: u32,
        cond: u16,
        target: u32,
    },
    /// `&&` probe: when `cond` is falsy, `frame[dst] = Int(0)` and jump.
    AndProbe { cond: u16, dst: u16, target: u32 },
    /// `||` probe: when `cond` is truthy, `frame[dst] = Int(1)` and jump.
    OrProbe { cond: u16, dst: u16, target: u32 },
    /// Call with `argc` arguments in `frame[base..base + argc]`; the
    /// result lands in `frame[base]`.
    Call {
        callee: u16,
        argc: u16,
        copyout: u16,
        base: u16,
    },
    /// Return `src`.
    Ret { src: u16 },
    /// Return `Unit`.
    RetUnit,
    /// Fused static meter.
    Meter { cost: u64, mem_ops: u32 },
    /// Fused static meter + budget check.
    MeterCheck { cost: u64, mem_ops: u32 },
    /// Fused static meter + loop-iteration tick + budget check.
    LoopTick { cost: u64, mem_ops: u32 },
    /// Fused [`RInstr::LoopTick`] + `PushPrec` (loop head whose body
    /// starts with a precision-scoped store).
    LoopTickPushPrec {
        cost: u64,
        mem_ops: u32,
        bits: Option<u8>,
    },
    /// Fused [`RInstr::LoopTick`] + `PushPrecOf`.
    LoopTickPushPrecOf { cost: u64, mem_ops: u32, slot: u16 },
    /// Count one loop iteration.
    TickLoop,
    /// Budget check.
    Check,
    /// Save the precision context, optionally narrowing it.
    PushPrec(Option<u8>),
    /// Save the precision context, narrowing per the slot's type binding.
    PushPrecOf(u16),
    /// Restore the saved precision context.
    PopPrec,
    /// Fused `PopPrec` + `StoreVar`.
    PopPrecStoreVar { src: u16, slot: u16 },
    /// Fused `PopPrec` + `StoreDecl`.
    PopPrecStoreDecl { src: u16, slot: u16, ty: Type },
    /// Entry point of a native loop trace (see [`crate::trace`]): the VM
    /// validates [`RegChunk::traces`]`[trace]` and either runs the whole
    /// loop natively or falls back to the generic body that follows.
    TraceHead { trace: u16 },
}

/// A register-form function body (tables live on the owning [`Chunk`]).
#[derive(Debug, Clone)]
pub(crate) struct RegChunk {
    /// The instruction stream.
    pub code: Vec<RInstr>,
    /// Frame size: named slots plus the maximum temporary depth.
    pub frame_size: usize,
    /// Native loop traces, indexed by [`RInstr::TraceHead`].
    pub traces: Vec<crate::trace::Trace>,
}

/// Compile-time symbolic stack entry.
#[derive(Clone, Copy, PartialEq)]
enum Sym {
    /// A value already materialized in its canonical depth temporary.
    Temp,
    /// An unread variable alias (deferred `LoadVar`).
    Slot(u16),
    /// An unread constant alias (deferred `Const`).
    Const(u32),
}

struct Conv<'a> {
    num_slots: u16,
    out: Vec<RInstr>,
    stack: Vec<Sym>,
    max_depth: usize,
    _chunk: &'a Chunk,
}

impl Conv<'_> {
    /// The canonical temporary holding stack depth `d`.
    fn temp(&self, depth: usize) -> u16 {
        let t = self.num_slots as usize + depth;
        assert!(
            t <= IDX_MASK as usize,
            "function too large for register encoding"
        );
        t as u16
    }

    fn push(&mut self, entry: Sym) {
        self.stack.push(entry);
        self.max_depth = self.max_depth.max(self.stack.len());
    }

    /// Encodes the entry at `depth` as a tagged operand.
    fn opnd(&self, depth: usize) -> u16 {
        match self.stack[depth] {
            Sym::Temp => self.temp(depth),
            Sym::Slot(slot) => TAG_SLOT | slot,
            Sym::Const(idx) => TAG_CONST | (idx as u16),
        }
    }

    /// Materializes aliases below the top `keep_top` entries into their
    /// canonical temporaries (variable reads always; constants only when
    /// `consts_too`, i.e. before jumps, where merge states must agree).
    /// Emission is bottom-up — original push order — so deferred
    /// unresolved-variable errors fire in the original order.
    fn force(&mut self, keep_top: usize, consts_too: bool) {
        let n = self
            .stack
            .len()
            .checked_sub(keep_top)
            .expect("stack underflow in conversion");
        for d in 0..n {
            match self.stack[d] {
                Sym::Temp => {}
                Sym::Slot(slot) => {
                    let dst = self.temp(d);
                    self.out.push(RInstr::Read { slot, dst });
                    self.stack[d] = Sym::Temp;
                }
                Sym::Const(idx) => {
                    if consts_too {
                        let dst = self.temp(d);
                        self.out.push(RInstr::Const { idx, dst });
                        self.stack[d] = Sym::Temp;
                    }
                }
            }
        }
    }

    /// Materializes the top `count` entries (call arguments) into their
    /// canonical — and therefore contiguous — temporaries.
    fn force_top(&mut self, count: usize) {
        let len = self.stack.len();
        for d in len - count..len {
            match self.stack[d] {
                Sym::Temp => {}
                Sym::Slot(slot) => {
                    let dst = self.temp(d);
                    self.out.push(RInstr::Read { slot, dst });
                    self.stack[d] = Sym::Temp;
                }
                Sym::Const(idx) => {
                    let dst = self.temp(d);
                    self.out.push(RInstr::Const { idx, dst });
                    self.stack[d] = Sym::Temp;
                }
            }
        }
    }

    /// Consumes the top entry as an operand.
    fn consume(&mut self) -> u16 {
        let o = self.opnd(self.stack.len() - 1);
        self.stack.pop();
        o
    }
}

/// Converts a stack chunk into register form.
pub(crate) fn regify(chunk: &Chunk) -> RegChunk {
    let code = &chunk.code;
    let mut is_target = vec![false; code.len() + 1];
    for instr in code {
        if let Instr::Jump(t) | Instr::JumpIfFalsy(t) | Instr::AndProbe(t) | Instr::OrProbe(t) =
            instr
        {
            is_target[*t as usize] = true;
        }
    }
    let fusable = |j: usize| j < code.len() && !is_target[j];

    let mut c = Conv {
        num_slots: u16::try_from(chunk.num_slots()).expect("more than 65535 locals"),
        out: Vec::with_capacity(code.len()),
        stack: Vec::new(),
        max_depth: 0,
        _chunk: chunk,
    };
    let mut map = vec![0u32; code.len() + 1];
    // Output position of the most recent jump target. Peepholes that
    // rewrite `c.out.last_mut()` are legal only when no jump target maps
    // to the *next* output position (`last_target_out != c.out.len()`):
    // a target mapping to the rewritten instruction itself is fine — the
    // fused instruction performs the old one first — but a target
    // mapping past it must not have the appended behaviour pulled in
    // front of it.
    let mut last_target_out = usize::MAX;
    let mut i = 0usize;
    while i < code.len() {
        map[i] = c.out.len() as u32;
        if is_target[i] {
            last_target_out = c.out.len();
            debug_assert!(
                c.stack.iter().all(|e| matches!(e, Sym::Temp)),
                "non-canonical stack at jump target {i}"
            );
        }
        let mut consumed = 1usize;
        match code[i] {
            Instr::Const(idx) => {
                if idx <= u32::from(IDX_MASK) {
                    c.push(Sym::Const(idx));
                } else {
                    let dst = c.temp(c.stack.len());
                    c.out.push(RInstr::Const { idx, dst });
                    c.push(Sym::Temp);
                }
            }
            Instr::LoadVar(slot) => {
                if slot <= IDX_MASK {
                    c.push(Sym::Slot(slot));
                } else {
                    let dst = c.temp(c.stack.len());
                    c.out.push(RInstr::Read { slot, dst });
                    c.push(Sym::Temp);
                }
            }
            Instr::LoadIndex(slot) => {
                c.force(1, false);
                let idx = c.consume();
                let dst = c.temp(c.stack.len());
                // peephole: a just-materialized variable read (the
                // accumulator of an indexed loop) rides along with the
                // load — `ReadLoadIndex` performs read-then-load in the
                // original order
                if last_target_out != c.out.len() {
                    if let Some(RInstr::Read {
                        slot: pre,
                        dst: pre_dst,
                    }) = c.out.last().copied()
                    {
                        *c.out.last_mut().expect("just matched") = RInstr::ReadLoadIndex {
                            pre,
                            pre_dst,
                            arr: slot,
                            idx,
                            dst,
                        };
                        c.push(Sym::Temp);
                        i += 1;
                        continue;
                    }
                }
                c.out.push(RInstr::LoadIndex {
                    arr: slot,
                    idx,
                    dst,
                });
                c.push(Sym::Temp);
            }
            Instr::StoreDecl { slot, ty } => {
                c.force(1, false);
                let src = c.consume();
                c.out.push(RInstr::StoreDecl { src, slot, ty });
            }
            Instr::DeclDefault { slot, ty } => c.out.push(RInstr::DeclDefault { slot, ty }),
            Instr::NewArray { slot, ty, size } => {
                c.out.push(RInstr::NewArray { slot, ty, size });
            }
            Instr::StoreVar(slot) => {
                c.force(1, false);
                let src = c.consume();
                c.out.push(RInstr::StoreVar { src, slot });
            }
            Instr::StoreIndex(slot) => {
                c.force(2, false);
                let idx = c.consume();
                let val = c.consume();
                // peephole: the stored value comes straight out of a
                // binary — the binary (and its charges) still runs first
                if last_target_out != c.out.len() {
                    if let Some(RInstr::Binary {
                        op,
                        l,
                        r,
                        dst: bdst,
                    }) = c.out.last().copied()
                    {
                        if val == bdst {
                            *c.out.last_mut().expect("just matched") = RInstr::BinStoreIndex {
                                op,
                                l,
                                r,
                                idx,
                                slot,
                            };
                            i += 1;
                            continue;
                        }
                    }
                }
                c.out.push(RInstr::StoreIndex { val, idx, slot });
            }
            Instr::StoreForInit(slot) => {
                c.force(1, false);
                let src = c.consume();
                c.out.push(RInstr::StoreForInit { src, slot });
            }
            Instr::StoreForStep(slot) => {
                c.force(1, false);
                let src = c.consume();
                if fusable(i + 1) {
                    if let Instr::Jump(target) = code[i + 1] {
                        debug_assert!(c.stack.is_empty(), "step jump with a live stack");
                        c.out.push(RInstr::StoreForStepJump { src, slot, target });
                        map[i + 1] = c.out.len() as u32 - 1;
                        consumed = 2;
                        i += consumed;
                        continue;
                    }
                }
                c.out.push(RInstr::StoreForStep { src, slot });
            }
            Instr::Unary(op) => {
                c.force(1, false);
                let src = c.consume();
                let dst = c.temp(c.stack.len());
                c.out.push(RInstr::Unary { op, src, dst });
                c.push(Sym::Temp);
            }
            Instr::Binary(op) => {
                c.force(2, false);
                // fuse consumers that take the result straight off the
                // stack (each preserves the unfused charge/error order)
                if fusable(i + 1) {
                    match code[i + 1] {
                        Instr::JumpIfFalsy(target) => {
                            c.force(2, true);
                            let r = c.consume();
                            let l = c.consume();
                            c.out.push(RInstr::BinJumpIfFalsy { op, l, r, target });
                            map[i + 1] = c.out.len() as u32 - 1;
                            i += 2;
                            continue;
                        }
                        Instr::StoreForStep(slot) if fusable(i + 2) => {
                            if let Instr::Jump(target) = code[i + 2] {
                                c.force(2, true);
                                let r = c.consume();
                                let l = c.consume();
                                debug_assert!(c.stack.is_empty(), "step jump with a live stack");
                                // peephole: the body's trailing meter sits
                                // directly before the step — carry it
                                if last_target_out != c.out.len() {
                                    if let Some(RInstr::Meter { cost, mem_ops }) =
                                        c.out.last().copied()
                                    {
                                        *c.out.last_mut().expect("just matched") =
                                            RInstr::MeterBinStoreForStepJump {
                                                cost,
                                                mem_ops,
                                                op,
                                                l,
                                                r,
                                                slot,
                                                target,
                                            };
                                        map[i + 1] = c.out.len() as u32 - 1;
                                        map[i + 2] = c.out.len() as u32 - 1;
                                        i += 3;
                                        continue;
                                    }
                                }
                                c.out.push(RInstr::BinStoreForStepJump {
                                    op,
                                    l,
                                    r,
                                    slot,
                                    target,
                                });
                                map[i + 1] = c.out.len() as u32 - 1;
                                map[i + 2] = c.out.len() as u32 - 1;
                                i += 3;
                                continue;
                            }
                        }
                        Instr::PopPrec if fusable(i + 2) => match code[i + 2] {
                            Instr::StoreVar(slot) => {
                                let r = c.consume();
                                let l = c.consume();
                                c.out.push(RInstr::BinPopPrecStoreVar { op, l, r, slot });
                                map[i + 1] = c.out.len() as u32 - 1;
                                map[i + 2] = c.out.len() as u32 - 1;
                                i += 3;
                                continue;
                            }
                            Instr::StoreDecl { slot, ty } => {
                                let r = c.consume();
                                let l = c.consume();
                                c.out
                                    .push(RInstr::BinPopPrecStoreDecl { op, l, r, slot, ty });
                                map[i + 1] = c.out.len() as u32 - 1;
                                map[i + 2] = c.out.len() as u32 - 1;
                                i += 3;
                                continue;
                            }
                            _ => {}
                        },
                        Instr::LoadIndex(arr) => {
                            // the result is the load's index; the binary
                            // (and its charges) still runs first
                            let r = c.consume();
                            let l = c.consume();
                            let dst = c.temp(c.stack.len());
                            c.out.push(RInstr::BinLoadIndex { op, l, r, arr, dst });
                            map[i + 1] = c.out.len() as u32 - 1;
                            c.push(Sym::Temp);
                            i += 2;
                            continue;
                        }
                        _ => {}
                    }
                }
                let r = c.consume();
                let l = c.consume();
                let dst = c.temp(c.stack.len());
                // peephole: right operand straight out of an indexed load
                // — the load still runs (and errors) before the binary.
                // The left operand must not be a deferred variable alias:
                // its unresolved check precedes the load in the original.
                if last_target_out != c.out.len() && (l & TAG_MASK) != TAG_SLOT {
                    if let Some(RInstr::LoadIndex {
                        arr,
                        idx,
                        dst: ldst,
                    }) = c.out.last().copied()
                    {
                        if r == ldst {
                            *c.out.last_mut().expect("just matched") = RInstr::BinLoad {
                                op,
                                l,
                                arr,
                                idx,
                                dst,
                            };
                            c.push(Sym::Temp);
                            i += 1;
                            continue;
                        }
                    }
                }
                c.out.push(RInstr::Binary { op, l, r, dst });
                c.push(Sym::Temp);
            }
            Instr::CastBool => {
                // pure, but the result must land in the canonical
                // temporary: it flows into a short-circuit merge point
                let src = c.consume();
                let dst = c.temp(c.stack.len());
                c.out.push(RInstr::CastBool { src, dst });
                c.push(Sym::Temp);
            }
            Instr::Jump(target) => {
                c.force(0, true);
                c.out.push(RInstr::Jump(target));
            }
            Instr::JumpIfFalsy(target) => {
                c.force(1, true);
                let cond = c.consume();
                c.out.push(RInstr::JumpIfFalsy { cond, target });
            }
            Instr::AndProbe(target) => {
                c.force(1, true);
                let cond = c.consume();
                let dst = c.temp(c.stack.len());
                c.out.push(RInstr::AndProbe { cond, dst, target });
            }
            Instr::OrProbe(target) => {
                c.force(1, true);
                let cond = c.consume();
                let dst = c.temp(c.stack.len());
                c.out.push(RInstr::OrProbe { cond, dst, target });
            }
            Instr::Call {
                callee,
                argc,
                copyout,
            } => {
                let n = argc as usize;
                c.force(n, false);
                c.force_top(n);
                for _ in 0..n {
                    c.stack.pop();
                }
                let base = c.temp(c.stack.len());
                c.out.push(RInstr::Call {
                    callee,
                    argc,
                    copyout,
                    base,
                });
                c.push(Sym::Temp);
            }
            Instr::Ret => {
                c.force(1, false);
                let src = c.consume();
                c.out.push(RInstr::Ret { src });
            }
            Instr::RetUnit => c.out.push(RInstr::RetUnit),
            Instr::Pop => {
                match c.stack.pop().expect("stack underflow in conversion") {
                    Sym::Slot(slot) => {
                        // the engines check the variable exists even when
                        // the value is discarded
                        let dst = c.temp(c.stack.len());
                        c.out.push(RInstr::Read { slot, dst });
                    }
                    Sym::Temp | Sym::Const(_) => {}
                }
            }
            Instr::Meter { cost, mem_ops } => {
                c.force(0, false);
                if fusable(i + 1) {
                    match code[i + 1] {
                        Instr::TickLoop if fusable(i + 2) && code[i + 2] == Instr::Check => {
                            c.out.push(RInstr::LoopTick { cost, mem_ops });
                            map[i + 1] = c.out.len() as u32 - 1;
                            map[i + 2] = c.out.len() as u32 - 1;
                            i += 3;
                            continue;
                        }
                        Instr::Check => {
                            c.out.push(RInstr::MeterCheck { cost, mem_ops });
                            map[i + 1] = c.out.len() as u32 - 1;
                            i += 2;
                            continue;
                        }
                        Instr::JumpIfFalsy(target) => {
                            c.force(1, true);
                            let cond = c.consume();
                            c.out.push(RInstr::MeterJumpIfFalsy {
                                cost,
                                mem_ops,
                                cond,
                                target,
                            });
                            map[i + 1] = c.out.len() as u32 - 1;
                            i += 2;
                            continue;
                        }
                        _ => {}
                    }
                }
                c.out.push(RInstr::Meter { cost, mem_ops });
            }
            Instr::TickLoop => {
                c.force(0, false);
                c.out.push(RInstr::TickLoop);
            }
            Instr::Check => {
                c.force(0, false);
                // a check immediately after another check (back-edge
                // check followed by a statement-prologue check, nothing
                // observable between) has the same outcome — drop it
                if !is_target[i]
                    && last_target_out != c.out.len()
                    && matches!(
                        c.out.last(),
                        Some(
                            RInstr::Check
                                | RInstr::MeterCheck { .. }
                                | RInstr::LoopTick { .. }
                                | RInstr::LoopTickPushPrec { .. }
                                | RInstr::LoopTickPushPrecOf { .. }
                                | RInstr::CheckPushPrec(_)
                                | RInstr::CheckPushPrecOf(_)
                        )
                    )
                {
                    i += 1;
                    continue;
                }
                if fusable(i + 1) {
                    match code[i + 1] {
                        Instr::PushPrec(bits) => {
                            c.out.push(RInstr::CheckPushPrec(bits));
                            map[i + 1] = c.out.len() as u32 - 1;
                            i += 2;
                            continue;
                        }
                        Instr::PushPrecOf(slot) => {
                            c.out.push(RInstr::CheckPushPrecOf(slot));
                            map[i + 1] = c.out.len() as u32 - 1;
                            i += 2;
                            continue;
                        }
                        _ => {}
                    }
                }
                c.out.push(RInstr::Check);
            }
            Instr::PushPrec(bits) => {
                // peephole: loop head directly followed by the body's
                // precision prologue (the budget check between them
                // deduplicated against the tick's own check)
                if last_target_out != c.out.len() {
                    if let Some(RInstr::LoopTick { cost, mem_ops }) = c.out.last().copied() {
                        *c.out.last_mut().expect("just matched") = RInstr::LoopTickPushPrec {
                            cost,
                            mem_ops,
                            bits,
                        };
                        i += 1;
                        continue;
                    }
                }
                c.out.push(RInstr::PushPrec(bits));
            }
            Instr::PushPrecOf(slot) => {
                if last_target_out != c.out.len() {
                    if let Some(RInstr::LoopTick { cost, mem_ops }) = c.out.last().copied() {
                        *c.out.last_mut().expect("just matched") = RInstr::LoopTickPushPrecOf {
                            cost,
                            mem_ops,
                            slot,
                        };
                        i += 1;
                        continue;
                    }
                }
                c.out.push(RInstr::PushPrecOf(slot));
            }
            Instr::PopPrec => {
                if fusable(i + 1) {
                    match code[i + 1] {
                        Instr::StoreVar(slot) => {
                            c.force(1, false);
                            let src = c.consume();
                            c.out.push(RInstr::PopPrecStoreVar { src, slot });
                            map[i + 1] = c.out.len() as u32 - 1;
                            i += 2;
                            continue;
                        }
                        Instr::StoreDecl { slot, ty } => {
                            c.force(1, false);
                            let src = c.consume();
                            c.out.push(RInstr::PopPrecStoreDecl { src, slot, ty });
                            map[i + 1] = c.out.len() as u32 - 1;
                            i += 2;
                            continue;
                        }
                        _ => {}
                    }
                }
                c.out.push(RInstr::PopPrec);
            }
        }
        i += consumed;
    }
    map[code.len()] = c.out.len() as u32;

    for instr in &mut c.out {
        match instr {
            RInstr::Jump(t)
            | RInstr::JumpIfFalsy { target: t, .. }
            | RInstr::MeterJumpIfFalsy { target: t, .. }
            | RInstr::BinJumpIfFalsy { target: t, .. }
            | RInstr::AndProbe { target: t, .. }
            | RInstr::OrProbe { target: t, .. }
            | RInstr::StoreForStepJump { target: t, .. }
            | RInstr::BinStoreForStepJump { target: t, .. }
            | RInstr::MeterBinStoreForStepJump { target: t, .. } => *t = map[*t as usize],
            _ => {}
        }
    }

    let traces = crate::trace::detect(&mut c.out, chunk);
    RegChunk {
        code: c.out,
        frame_size: chunk.num_slots() + c.max_depth,
        traces,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::lower::lower_function;
    use antarex_ir::cost::CostModel;
    use antarex_ir::parse_program;

    pub(super) fn reg_of(src: &str, name: &str) -> RegChunk {
        let program = parse_program(src).unwrap();
        let chunk = lower_function(program.function(name).unwrap(), &CostModel::new());
        regify(&chunk)
    }

    #[test]
    fn rinstr_stays_register_sized() {
        // the dispatch loop copies instructions; keep them to three words
        assert!(std::mem::size_of::<RInstr>() <= 24);
    }

    #[test]
    fn loop_sequences_fuse() {
        let reg = reg_of(
            "double dot(double a[], double b[], int n) {
                 double s = 0.0;
                 for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
                 return s;
             }",
            "dot",
        );
        assert!(
            reg.code
                .iter()
                .any(|r| matches!(r, RInstr::LoopTickPushPrecOf { .. })),
            "{:?}",
            reg.code
        );
        // the loop head is recognized as a native trace
        assert!(reg
            .code
            .iter()
            .any(|r| matches!(r, RInstr::TraceHead { .. })));
        assert_eq!(reg.traces.len(), 1);
        assert!(reg
            .code
            .iter()
            .any(|r| matches!(r, RInstr::MeterBinStoreForStepJump { .. })));
        assert!(reg
            .code
            .iter()
            .any(|r| matches!(r, RInstr::BinPopPrecStoreVar { .. })));
        assert!(reg
            .code
            .iter()
            .any(|r| matches!(r, RInstr::ReadLoadIndex { .. })));
        assert!(reg.code.iter().any(|r| matches!(r, RInstr::BinLoad { .. })));
        // the whole `s += a[i] * b[i]` loop body collapses to six dispatches
        let body_len = reg.code.len();
        assert!(body_len <= 13, "expected a compact chunk, got {body_len}");
    }

    #[test]
    fn canonical_kernels_get_traces() {
        use crate::trace::TraceKind;
        let stencil = reg_of(
            "void f(double input[], double output[]) {
                 for (int i = 1; i < 31; i++) {
                     output[i] = 0.25 * input[i - 1] + 0.5 * input[i] + 0.25 * input[i + 1];
                 }
             }",
            "f",
        );
        assert_eq!(stencil.traces.len(), 1, "{:?}", stencil.code);
        assert!(matches!(stencil.traces[0].kind, TraceKind::Stencil3 { .. }));
        let matvec = reg_of(
            "void f(double m[], double x[], double y[]) {
                 for (int i = 0; i < 8; i++) {
                     double acc = 0.0;
                     for (int j = 0; j < 8; j++) { acc += m[i * 8 + j] * x[j]; }
                     y[i] = acc;
                 }
             }",
            "f",
        );
        assert!(
            matvec
                .traces
                .iter()
                .any(|t| matches!(t.kind, TraceKind::Reduce { base: Some(_), .. })),
            "{:?}",
            matvec.code
        );
    }

    #[test]
    fn metered_conditions_fuse_with_their_jump() {
        // the condition performs array traffic, so its flushed meter sits
        // directly before the conditional jump
        let reg = reg_of(
            "double drain(double a[]) {
                 double s = 0.0;
                 while (a[0] > 0.0) { s += a[0]; a[0] -= 1.0; }
                 return s;
             }",
            "drain",
        );
        assert!(
            reg.code
                .iter()
                .any(|r| matches!(r, RInstr::MeterJumpIfFalsy { .. })),
            "{:?}",
            reg.code
        );
    }

    #[test]
    fn register_form_is_denser_than_stack_form() {
        let program = parse_program(
            "double poly(double x, int n) {
                 double s = 0.0;
                 for (int i = 0; i < n; i++) { s = s * x + 1.0; }
                 return s;
             }",
        )
        .unwrap();
        let chunk = lower_function(program.function("poly").unwrap(), &CostModel::new());
        let reg = regify(&chunk);
        assert!(
            reg.code.len() < chunk.code.len(),
            "register form {} vs stack form {}",
            reg.code.len(),
            chunk.code.len()
        );
    }

    #[test]
    fn jump_targets_stay_in_bounds() {
        let reg = reg_of(
            "int f(int n) {
                 int s = 0;
                 for (int i = 0; i < n; i++) {
                     if (i % 2 == 0 && n > 3 || i == 1) { s += i; } else { s -= 1; }
                 }
                 while (s > 100) { s /= 2; }
                 return s;
             }",
            "f",
        );
        for instr in &reg.code {
            if let RInstr::Jump(t)
            | RInstr::JumpIfFalsy { target: t, .. }
            | RInstr::MeterJumpIfFalsy { target: t, .. }
            | RInstr::BinJumpIfFalsy { target: t, .. }
            | RInstr::AndProbe { target: t, .. }
            | RInstr::OrProbe { target: t, .. }
            | RInstr::StoreForStepJump { target: t, .. }
            | RInstr::BinStoreForStepJump { target: t, .. }
            | RInstr::MeterBinStoreForStepJump { target: t, .. } = instr
            {
                assert!((*t as usize) <= reg.code.len(), "target out of bounds");
            }
        }
    }

    #[test]
    fn frame_reserves_temporaries_beyond_slots() {
        let reg = reg_of("int f(int a, int b) { return a + b * a; }", "f");
        // two named slots plus at least one expression temporary
        assert!(reg.frame_size > 2);
    }
}
