//! AST → bytecode lowering with weave-time metering injection.
//!
//! The lowerer walks a function exactly once and emits bytecode whose
//! *observable accounting* matches the tree-walking interpreter
//! bit-for-bit. Two invariants make that true:
//!
//! 1. **Statics fuse, dynamics stay inline.** Costs that depend only on
//!    the program text (`reg_op` per variable access, `mem_op` per array
//!    access, the short-circuit `int_op`, loop overheads) accumulate in a
//!    pending meter and are emitted as one fused [`Instr::Meter`] per
//!    straight-line segment. Costs that depend on runtime types (binary
//!    arithmetic, negation) are charged by the shared `ops` routines at
//!    the instruction itself.
//! 2. **The pending meter never crosses a control edge.** `flush` runs
//!    before every jump, jump target, call, budget check and statement
//!    end — so cumulative cost agrees with the interpreter at every
//!    budget check and host-call boundary, and the overflow point of the
//!    cost counter is segment-identical (all charges are non-negative, so
//!    a segment's running sum overflows iff its total does, regardless of
//!    intra-segment order).

use crate::bytecode::{Chunk, CompiledProgram, Instr};
use antarex_ir::ast::{BinOp, Block, Expr, Function, LValue, Program, Stmt};
use antarex_ir::cost::CostModel;
use antarex_ir::value::Value;
use std::collections::HashMap;

/// Lowers a single function to a metered [`Chunk`] under `model`.
pub fn lower_function(function: &Function, model: &CostModel) -> Chunk {
    let mut lowerer = Lowerer::new(model);
    for param in &function.params {
        lowerer.slot(&param.name);
    }
    lowerer.lower_block(&function.body);
    lowerer.flush();
    lowerer.emit(Instr::RetUnit);
    Chunk {
        name: function.name.clone(),
        code: lowerer.code,
        consts: lowerer.consts,
        callees: lowerer.callees,
        copyouts: lowerer.copyouts,
        slot_names: lowerer.slots,
        params: function.params.clone(),
        ret: function.ret,
        reg: std::sync::OnceLock::new(),
    }
}

/// Lowers every function of a program (the unit the
/// [`crate::cache::InstrumentedCodeCache`] keys and shares).
pub fn lower_program(program: &Program, model: &CostModel) -> CompiledProgram {
    let mut compiled = CompiledProgram::new();
    for function in program.iter() {
        compiled.insert(lower_function(function, model));
    }
    compiled
}

struct Lowerer<'a> {
    model: &'a CostModel,
    code: Vec<Instr>,
    consts: Vec<Value>,
    callees: Vec<String>,
    callee_index: HashMap<String, u16>,
    copyouts: Vec<Vec<(u16, u16)>>,
    slots: Vec<String>,
    slot_index: HashMap<String, u16>,
    pending_cost: u64,
    pending_mem: u32,
}

impl<'a> Lowerer<'a> {
    fn new(model: &'a CostModel) -> Self {
        Lowerer {
            model,
            code: Vec::new(),
            consts: Vec::new(),
            callees: Vec::new(),
            callee_index: HashMap::new(),
            // index 0 is the shared empty copy-out map
            copyouts: vec![Vec::new()],
            slots: Vec::new(),
            slot_index: HashMap::new(),
            pending_cost: 0,
            pending_mem: 0,
        }
    }

    fn slot(&mut self, name: &str) -> u16 {
        if let Some(&slot) = self.slot_index.get(name) {
            return slot;
        }
        let slot = u16::try_from(self.slots.len()).expect("more than 65535 locals");
        self.slots.push(name.to_string());
        self.slot_index.insert(name.to_string(), slot);
        slot
    }

    fn konst(&mut self, value: Value) -> u32 {
        // small pools: linear dedup keeps chunks compact without hashing
        // floats (NaN-safe via bit equality through PartialEq on Value is
        // not guaranteed, so compare bits for floats explicitly)
        for (i, existing) in self.consts.iter().enumerate() {
            let same = match (existing, &value) {
                (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
                (a, b) => a == b,
            };
            if same {
                return i as u32;
            }
        }
        let idx = u32::try_from(self.consts.len()).expect("constant pool overflow");
        self.consts.push(value);
        idx
    }

    fn callee(&mut self, name: &str) -> u16 {
        if let Some(&i) = self.callee_index.get(name) {
            return i;
        }
        let i = u16::try_from(self.callees.len()).expect("more than 65535 callees");
        self.callees.push(name.to_string());
        self.callee_index.insert(name.to_string(), i);
        i
    }

    fn emit(&mut self, instr: Instr) -> usize {
        debug_assert!(
            !matches!(
                instr,
                Instr::Jump(_)
                    | Instr::JumpIfFalsy(_)
                    | Instr::AndProbe(_)
                    | Instr::OrProbe(_)
                    | Instr::Call { .. }
                    | Instr::Check
                    | Instr::TickLoop
                    | Instr::Ret
                    | Instr::RetUnit
            ) || (self.pending_cost == 0 && self.pending_mem == 0),
            "pending meter must be flushed before control flow"
        );
        self.code.push(instr);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        debug_assert!(
            self.pending_cost == 0 && self.pending_mem == 0,
            "pending meter must be flushed before a jump target"
        );
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize) {
        let target = self.here();
        match &mut self.code[at] {
            Instr::Jump(t) | Instr::JumpIfFalsy(t) | Instr::AndProbe(t) | Instr::OrProbe(t) => {
                *t = target
            }
            other => unreachable!("patching a non-jump instruction {other:?}"),
        }
    }

    /// Accumulates a statically-known cost into the pending meter. On the
    /// (pathological) verge of `u64` overflow, the segment splits: the
    /// accumulated part flushes and accumulation restarts, which keeps
    /// the runtime's checked accounting equivalent to charging each op
    /// individually (charges are non-negative, so any prefix overflows
    /// iff the total does).
    fn pend(&mut self, cost: u64) {
        match self.pending_cost.checked_add(cost) {
            Some(total) => self.pending_cost = total,
            None => {
                self.flush();
                self.pending_cost = cost;
            }
        }
    }

    fn pend_mem(&mut self) {
        if self.pending_mem == u32::MAX {
            self.flush();
        }
        self.pending_mem += 1;
    }

    /// Emits the pending fused meter, if any.
    fn flush(&mut self) {
        if self.pending_cost != 0 || self.pending_mem != 0 {
            self.code.push(Instr::Meter {
                cost: self.pending_cost,
                mem_ops: self.pending_mem,
            });
            self.pending_cost = 0;
            self.pending_mem = 0;
        }
    }

    fn lower_block(&mut self, block: &Block) {
        for stmt in block {
            self.lower_stmt(stmt);
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt) {
        // statement prologue: the interpreter budget-checks every
        // statement before executing it
        self.flush();
        self.emit(Instr::Check);
        match stmt {
            Stmt::Decl { name, ty, init } => {
                let slot = self.slot(name);
                match init {
                    Some(init) => {
                        self.emit(Instr::PushPrec(ty.mantissa_bits()));
                        self.lower_expr(init);
                        self.emit(Instr::PopPrec);
                        self.emit(Instr::StoreDecl { slot, ty: *ty });
                    }
                    None => {
                        self.emit(Instr::DeclDefault { slot, ty: *ty });
                    }
                }
            }
            Stmt::ArrayDecl { name, ty, size } => {
                let slot = self.slot(name);
                self.emit(Instr::NewArray {
                    slot,
                    ty: *ty,
                    size: u32::try_from(*size).expect("array too large to lower"),
                });
            }
            Stmt::Assign { target, value } => match target {
                LValue::Var(name) => {
                    let slot = self.slot(name);
                    self.emit(Instr::PushPrecOf(slot));
                    self.lower_expr(value);
                    self.emit(Instr::PopPrec);
                    self.emit(Instr::StoreVar(slot));
                    self.pend(self.model.reg_op);
                }
                LValue::Index(name, index) => {
                    let slot = self.slot(name);
                    self.emit(Instr::PushPrecOf(slot));
                    self.lower_expr(value);
                    self.emit(Instr::PopPrec);
                    self.lower_expr(index);
                    self.emit(Instr::StoreIndex(slot));
                    self.pend(self.model.mem_op);
                    self.pend_mem();
                }
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.lower_expr(cond);
                self.flush();
                let jf = self.emit(Instr::JumpIfFalsy(u32::MAX));
                self.lower_block(then_branch);
                match else_branch {
                    Some(else_branch) => {
                        self.flush();
                        let jend = self.emit(Instr::Jump(u32::MAX));
                        self.patch(jf);
                        self.lower_block(else_branch);
                        self.flush();
                        self.patch(jend);
                    }
                    None => {
                        self.flush();
                        self.patch(jf);
                    }
                }
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let slot = self.slot(var);
                self.lower_expr(init);
                self.flush();
                self.emit(Instr::StoreForInit(slot));
                let top = self.here();
                self.lower_expr(cond);
                self.flush();
                let jf = self.emit(Instr::JumpIfFalsy(u32::MAX));
                self.pend(self.model.loop_overhead);
                self.flush();
                self.emit(Instr::TickLoop);
                self.emit(Instr::Check);
                self.lower_block(body);
                self.lower_expr(step);
                self.flush();
                self.emit(Instr::StoreForStep(slot));
                self.emit(Instr::Jump(top));
                self.patch(jf);
            }
            Stmt::While { cond, body } => {
                let top = self.here();
                self.lower_expr(cond);
                self.flush();
                let jf = self.emit(Instr::JumpIfFalsy(u32::MAX));
                self.pend(self.model.loop_overhead);
                self.flush();
                self.emit(Instr::TickLoop);
                self.emit(Instr::Check);
                self.lower_block(body);
                self.flush();
                self.emit(Instr::Jump(top));
                self.patch(jf);
            }
            Stmt::Return(value) => match value {
                Some(value) => {
                    self.lower_expr(value);
                    self.flush();
                    self.emit(Instr::Ret);
                }
                None => {
                    self.flush();
                    self.emit(Instr::RetUnit);
                }
            },
            Stmt::ExprStmt(expr) => {
                self.lower_expr(expr);
                self.emit(Instr::Pop);
            }
        }
        // statement epilogue: fold this statement's statics into one meter
        self.flush();
    }

    fn lower_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Int(v) => {
                let idx = self.konst(Value::Int(*v));
                self.emit(Instr::Const(idx));
            }
            Expr::Float(v) => {
                let idx = self.konst(Value::Float(*v));
                self.emit(Instr::Const(idx));
            }
            Expr::Str(s) => {
                let idx = self.konst(Value::Str(s.clone()));
                self.emit(Instr::Const(idx));
            }
            Expr::Var(name) => {
                self.pend(self.model.reg_op);
                let slot = self.slot(name);
                self.emit(Instr::LoadVar(slot));
            }
            Expr::Index(name, index) => {
                let slot = self.slot(name);
                self.lower_expr(index);
                self.pend(self.model.mem_op);
                self.pend_mem();
                self.emit(Instr::LoadIndex(slot));
            }
            Expr::Unary(op, inner) => {
                self.lower_expr(inner);
                self.emit(Instr::Unary(*op));
            }
            Expr::Binary(BinOp::And, lhs, rhs) => {
                self.lower_expr(lhs);
                self.pend(self.model.int_op);
                self.flush();
                let probe = self.emit(Instr::AndProbe(u32::MAX));
                self.lower_expr(rhs);
                self.flush();
                self.emit(Instr::CastBool);
                self.patch(probe);
            }
            Expr::Binary(BinOp::Or, lhs, rhs) => {
                self.lower_expr(lhs);
                self.pend(self.model.int_op);
                self.flush();
                let probe = self.emit(Instr::OrProbe(u32::MAX));
                self.lower_expr(rhs);
                self.flush();
                self.emit(Instr::CastBool);
                self.patch(probe);
            }
            Expr::Binary(op, lhs, rhs) => {
                self.lower_expr(lhs);
                self.lower_expr(rhs);
                self.emit(Instr::Binary(*op));
            }
            Expr::Call(name, args) => {
                for arg in args {
                    self.lower_expr(arg);
                }
                self.flush();
                let callee = self.callee(name);
                let map: Vec<(u16, u16)> = args
                    .iter()
                    .enumerate()
                    .filter_map(|(i, arg)| match arg {
                        Expr::Var(var) => Some((i as u16, self.slot(var))),
                        _ => None,
                    })
                    .collect();
                let copyout = if map.is_empty() {
                    0
                } else {
                    let idx =
                        u16::try_from(self.copyouts.len()).expect("more than 65535 call sites");
                    self.copyouts.push(map);
                    idx
                };
                self.emit(Instr::Call {
                    callee,
                    argc: u16::try_from(args.len()).expect("more than 65535 arguments"),
                    copyout,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::parse_program;

    fn chunk_of(src: &str, name: &str) -> Chunk {
        let program = parse_program(src).unwrap();
        lower_function(program.function(name).unwrap(), &CostModel::new())
    }

    #[test]
    fn straight_line_block_fuses_meters() {
        // the loop body `s += a[i] * b[i]` touches two arrays, the index
        // twice, and s twice (read + write): statically 2 mem + 4 reg ops,
        // all fused into ONE meter at the statement end (the multiply and
        // add are dynamic and charged by ops::apply_binary)
        let chunk = chunk_of(
            "double dot(double a[], double b[], int n) {
                 double s = 0.0;
                 for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
                 return s;
             }",
            "dot",
        );
        let model = CostModel::new();
        let body_meter = Instr::Meter {
            cost: 2 * model.mem_op + 4 * model.reg_op,
            mem_ops: 2,
        };
        assert!(
            chunk.code.contains(&body_meter),
            "expected fused body meter in {:?}",
            chunk.code
        );
    }

    #[test]
    fn params_bind_the_first_slots() {
        let chunk = chunk_of("int f(int a, int b) { int c = a + b; return c; }", "f");
        assert_eq!(chunk.slot_names[0], "a");
        assert_eq!(chunk.slot_names[1], "b");
        assert_eq!(chunk.slot_names[2], "c");
        assert_eq!(chunk.params.len(), 2);
    }

    #[test]
    fn jumps_are_patched_in_bounds() {
        let chunk = chunk_of(
            "int f(int n) {
                 int s = 0;
                 for (int i = 0; i < n; i++) { if (i % 2 == 0) { s += i; } else { s -= 1; } }
                 while (s > 100) { s /= 2; }
                 return s;
             }",
            "f",
        );
        for instr in &chunk.code {
            if let Instr::Jump(t) | Instr::JumpIfFalsy(t) | Instr::AndProbe(t) | Instr::OrProbe(t) =
                instr
            {
                assert!(
                    (*t as usize) <= chunk.code.len(),
                    "unpatched jump {instr:?}"
                );
                assert_ne!(*t, u32::MAX, "unpatched jump {instr:?}");
            }
        }
    }

    #[test]
    fn constants_deduplicate() {
        let chunk = chunk_of("int f() { return 7 + 7 + 7; }", "f");
        assert_eq!(
            chunk.consts.iter().filter(|v| **v == Value::Int(7)).count(),
            1
        );
    }

    #[test]
    fn call_sites_record_copyout_maps() {
        let chunk = chunk_of(
            "void g(double a[]) { a[0] = 1.0; }
             void f() { double buf[2]; g(buf); }",
            "f",
        );
        let call = chunk
            .code
            .iter()
            .find_map(|i| match i {
                Instr::Call { copyout, .. } => Some(*copyout),
                _ => None,
            })
            .expect("call instruction");
        assert_eq!(chunk.copyouts[call as usize].len(), 1, "buf is a var arg");
    }
}
