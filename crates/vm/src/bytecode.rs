//! The compact stack bytecode the mini-C AST lowers to.
//!
//! Design notes:
//!
//! * **Metering is woven in at lowering time.** Statically-known costs —
//!   scalar reads/writes (`reg_op`), array traffic (`mem_op`), the
//!   short-circuit operators' `int_op`, loop overheads — are fused into
//!   explicit [`Instr::Meter`] instructions with basic-block granularity,
//!   so a straight-line run of nodes charges one add instead of one per
//!   node. Dynamically-typed costs (binary arithmetic, negation — int
//!   vs. float is only known at run time) are charged inside the shared
//!   `antarex_ir::ops` routines, exactly as the interpreter charges them.
//! * **Flush discipline.** A pending (unemitted) meter never survives
//!   across a jump, jump target, call, budget [`Instr::Check`] or
//!   statement boundary, so the cumulative cost at every observable
//!   point (budget checks, host calls, statement starts) is identical to
//!   the tree-walking interpreter's, instruction-order notwithstanding.
//! * **Slots, not names.** Every variable of a function gets a dense slot
//!   (parameters first, in order); names survive only in
//!   [`Chunk::slot_names`] for error messages, which must match the
//!   interpreter's byte-for-byte.

use antarex_ir::ast::{BinOp, Param, UnOp};
use antarex_ir::types::Type;
use antarex_ir::value::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// One bytecode instruction. Jump targets are absolute instruction
/// indices into [`Chunk::code`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push `consts[idx]`.
    Const(u32),
    /// Push the value of a slot; error if the variable is unbound.
    LoadVar(u16),
    /// Pop an index, push that element of the array in the slot.
    LoadIndex(u16),
    /// Declaration with initializer: bind the slot's declared type, pop
    /// the value, coerce it to the type and store (with quantization).
    StoreDecl {
        /// Destination slot.
        slot: u16,
        /// Declared type.
        ty: Type,
    },
    /// Declaration without initializer: bind the type, store its zero.
    DeclDefault {
        /// Destination slot.
        slot: u16,
        /// Declared type.
        ty: Type,
    },
    /// Array declaration: bind the element type, allocate `size` zeros.
    NewArray {
        /// Destination slot.
        slot: u16,
        /// Element type.
        ty: Type,
        /// Element count.
        size: u32,
    },
    /// Assignment to an existing variable: pop, coerce per the slot's
    /// dynamic type binding (pass-through when unbound), store.
    StoreVar(u16),
    /// Array element assignment: pop index then value, bounds-check,
    /// quantize per the slot's dynamic type, store.
    StoreIndex(u16),
    /// `for` init: bind the induction slot to `int`, pop + coerce + store.
    StoreForInit(u16),
    /// `for` step: pop + coerce to `int` + store, *without* re-binding
    /// the type (the body may have re-declared the variable).
    StoreForStep(u16),
    /// Unary operator (dynamic cost via `antarex_ir::ops::apply_unary`).
    Unary(UnOp),
    /// Non-short-circuit binary operator (dynamic cost via
    /// `antarex_ir::ops::apply_binary`).
    Binary(BinOp),
    /// Pop a value, push its truthiness as `Int(0|1)` (cost-free, the
    /// short-circuit operators' single `int_op` is metered separately).
    CastBool,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalsy(u32),
    /// `&&` left-operand probe: pop; when falsy push `Int(0)` and jump
    /// past the right operand.
    AndProbe(u32),
    /// `||` left-operand probe: pop; when truthy push `Int(1)` and jump.
    OrProbe(u32),
    /// Call `callees[callee]` with the top `argc` stack values (pushed
    /// left-to-right); `copyout` indexes [`Chunk::copyouts`] for the
    /// array copy-out map of this call site.
    Call {
        /// Index into [`Chunk::callees`].
        callee: u16,
        /// Argument count.
        argc: u16,
        /// Index into [`Chunk::copyouts`].
        copyout: u16,
    },
    /// Return the popped value.
    Ret,
    /// Return `Unit`.
    RetUnit,
    /// Discard the top of stack (expression statements).
    Pop,
    /// Fused static meter: charge `cost` units and count `mem_ops`
    /// array operations for the preceding straight-line segment.
    Meter {
        /// Cost units to charge (overflow-checked).
        cost: u64,
        /// Array loads/stores performed by the segment.
        mem_ops: u32,
    },
    /// Count one loop iteration (loop back-edge).
    TickLoop,
    /// Budget check (statement start, loop back-edge; call entries check
    /// inside the call sequence).
    Check,
    /// Save the precision context; narrow it to `Some(bits)` (statically
    /// known declaration type) for the following store expression.
    PushPrec(Option<u8>),
    /// Save the precision context; narrow it per the slot's *dynamic*
    /// type binding (assignments — the destination type is runtime
    /// state).
    PushPrecOf(u16),
    /// Restore the precision context saved by the matching push.
    PopPrec,
}

/// A lowered function: bytecode plus the constant/name tables it needs.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Function name (for dispatch and error messages).
    pub name: String,
    /// The instruction stream.
    pub code: Vec<Instr>,
    /// Constant pool.
    pub consts: Vec<Value>,
    /// Callee names referenced by [`Instr::Call`].
    pub callees: Vec<String>,
    /// Per-call-site copy-out maps: `(argument index, caller slot)` for
    /// every argument that is a plain variable reference. Applied to
    /// whatever array parameters the *resolved* callee reports at run
    /// time (the dispatcher may redirect calls).
    pub copyouts: Vec<Vec<(u16, u16)>>,
    /// Slot names, for error messages (`slot_names[i]` names slot `i`).
    pub slot_names: Vec<String>,
    /// Parameters (parameter `i` binds slot `i`).
    pub params: Vec<Param>,
    /// Declared return type (`None` = void), for return quantization.
    pub ret: Option<Type>,
    /// Lazily derived register form (the tier the VM dispatches); shared
    /// through the `Arc<Chunk>` wherever the chunk is cached.
    pub(crate) reg: OnceLock<crate::reg::RegChunk>,
}

impl Chunk {
    /// The register form, converting on first use.
    pub(crate) fn reg(&self) -> &crate::reg::RegChunk {
        self.reg.get_or_init(|| crate::reg::regify(self))
    }

    /// Number of local slots (parameters included).
    pub fn num_slots(&self) -> usize {
        self.slot_names.len()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Returns `true` for an empty instruction stream (never produced by
    /// the lowerer, which always emits at least a return).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Number of fused [`Instr::Meter`] instructions — the weave-time
    /// metering density the v1 experiment reports.
    pub fn meter_count(&self) -> usize {
        self.code
            .iter()
            .filter(|i| matches!(i, Instr::Meter { .. }))
            .count()
    }
}

/// A whole lowered program: one [`Chunk`] per function, shareable across
/// threads (`Arc`-wrapped chunks, no `Rc` anywhere).
#[derive(Debug, Clone, Default)]
pub struct CompiledProgram {
    chunks: BTreeMap<String, Arc<Chunk>>,
}

impl CompiledProgram {
    /// Creates an empty compiled program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a chunk under its function name.
    pub fn insert(&mut self, chunk: Chunk) {
        self.chunks.insert(chunk.name.clone(), Arc::new(chunk));
    }

    /// Looks up a chunk by function name.
    pub fn get(&self, name: &str) -> Option<&Arc<Chunk>> {
        self.chunks.get(name)
    }

    /// Iterates over chunks (name order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Chunk>)> {
        self.chunks.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Returns `true` when no chunks are present.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Total instruction count across all chunks.
    pub fn instruction_count(&self) -> usize {
        self.chunks.values().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_program_is_send_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<CompiledProgram>();
        assert_traits::<Chunk>();
    }

    #[test]
    fn instr_is_small() {
        // the dispatch loop copies instructions; keep them register-sized
        assert!(std::mem::size_of::<Instr>() <= 16);
    }
}
