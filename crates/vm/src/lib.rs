//! # antarex-vm — metered bytecode VM for the mini-C substrate
//!
//! The tree-walking interpreter in `antarex-ir` is the *executable
//! reference*: it defines what a woven program computes and what it
//! costs. This crate is the fast path: it lowers the same AST to a
//! compact stack [bytecode] with the cost metering *woven in
//! at lowering time* (fused per-basic-block [`Instr::Meter`]
//! instructions instead of per-node charges), executes it on a [`Vm`],
//! and memoizes the instrumented bytecode in a hash-keyed
//! [`InstrumentedCodeCache`] so a `(program digest, metering params)`
//! pair lowers once and is shared across tenants, DSE rounds and
//! precision sweeps.
//!
//! Execution is tiered: the stack chunk is the instrumentation format,
//! a lazily derived register form (fused superinstructions, direct
//! frame-index operands) is what the dispatch loop runs, and recognized
//! metered loop idioms — reduce and three-tap stencil — execute as
//! native traces with the exact charge schedule, falling back to
//! generic dispatch whenever entry validation cannot prove equivalence.
//!
//! The contract — enforced by the differential suite in `tests/` — is
//! **bit-identity** with the interpreter on everything observable:
//! return values, every [`ExecStats`](antarex_ir::cost::ExecStats)
//! counter including `flop_energy` to the last bit, reduced-precision
//! quantization, host-call traces (the join-point observability channel)
//! and errors. Both engines sit behind the
//! [`Executor`](antarex_ir::Executor) trait, so consumers choose an
//! engine by constructor, not by API.
//!
//! # Examples
//!
//! ```
//! use antarex_ir::{cost::CostModel, interp::ExecEnv, parse_program, value::Value};
//! use antarex_vm::{InstrumentedCodeCache, Vm};
//!
//! # fn main() -> Result<(), antarex_ir::IrError> {
//! let cache = InstrumentedCodeCache::new();
//! let program = parse_program(
//!     "double sumsq(double a[], int n) {
//!          double s = 0.0;
//!          for (int i = 0; i < n; i++) { s += a[i] * a[i]; }
//!          return s;
//!      }",
//! )?;
//! // first tenant lowers; every later tenant with the same program and
//! // cost model reuses the instrumented bytecode
//! let mut vm = Vm::with_cache(program, CostModel::new(), &cache);
//! let mut env = ExecEnv::new();
//! let out = vm.call(
//!     "sumsq",
//!     &[Value::from(vec![1.0, 2.0, 3.0]), Value::Int(3)],
//!     &mut env,
//! )?;
//! assert_eq!(out, Value::Float(14.0));
//! assert!(env.stats.flops >= 6);
//! # Ok(())
//! # }
//! ```

pub mod bytecode;
pub mod cache;
pub mod digest;
pub mod lower;
pub(crate) mod reg;
pub(crate) mod trace;
pub mod vm;

pub use bytecode::{Chunk, CompiledProgram, Instr};
pub use cache::InstrumentedCodeCache;
pub use digest::CodeKey;
pub use lower::{lower_function, lower_program};
pub use vm::Vm;
