//! Structural digests keying the instrumented-code cache.
//!
//! A [`CodeKey`] is a 128-bit-per-lane structural hash of a program
//! (`code` lane) paired with a digest of the metering parameters
//! (`metering` lane). Two programs that lower to the same instrumented
//! bytecode under the same cost model produce the same key; any change to
//! either — a renamed variable, a reordered statement, a different
//! `mem_op` weight — produces a different one. The fold is *structural*:
//! every variant is tagged and every sequence is length-prefixed, so
//! concatenation ambiguities (`("ab", "c")` vs `("a", "bc")`) cannot
//! collide.
//!
//! This is deliberately not a cryptographic hash — it keys an in-process
//! cache, not an integrity check — but the two independent 128-bit lanes
//! (different seeds, different rotation schedules) make accidental
//! collisions vanishingly unlikely.

use antarex_ir::ast::{BinOp, Expr, Function, LValue, Program, Stmt, UnOp};
use antarex_ir::cost::CostModel;
use antarex_ir::types::Type;

/// Cache key for one `(program structure, metering parameters)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeKey {
    /// Structural digest of the program.
    pub code: u128,
    /// Digest of the cost model the bytecode was instrumented under.
    pub metering: u128,
}

impl CodeKey {
    /// Computes the key for `program` instrumented under `model`.
    pub fn of(program: &Program, model: &CostModel) -> Self {
        let mut code = Lanes::new();
        fold_program(&mut code, program);
        let mut metering = Lanes::new();
        fold_model(&mut metering, model);
        CodeKey {
            code: code.finish(),
            metering: metering.finish(),
        }
    }
}

/// Two independently-seeded 64-bit lanes folded in lockstep.
struct Lanes {
    lo: u64,
    hi: u64,
}

impl Lanes {
    fn new() -> Self {
        Lanes {
            lo: 0xcbf2_9ce4_8422_2325,
            hi: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn mix(&mut self, v: u64) {
        self.lo = mix64(self.lo ^ v).rotate_left(17);
        self.hi = mix64(self.hi ^ v.rotate_left(31));
    }

    fn finish(self) -> u128 {
        (u128::from(mix64(self.hi)) << 64) | u128::from(mix64(self.lo))
    }
}

/// SplitMix64 finalizer: full-avalanche 64-bit mix.
fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fold_str(lanes: &mut Lanes, s: &str) {
    lanes.mix(s.len() as u64);
    for chunk in s.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        lanes.mix(u64::from_le_bytes(word));
    }
}

fn fold_type(lanes: &mut Lanes, ty: Type) {
    let (tag, bits) = match ty {
        Type::Int => (1u64, 0u64),
        Type::F64 => (2, 0),
        Type::F32 => (3, 0),
        Type::FCustom(b) => (4, u64::from(b)),
        Type::Str => (5, 0),
    };
    lanes.mix(tag);
    lanes.mix(bits);
}

fn fold_opt_type(lanes: &mut Lanes, ty: Option<Type>) {
    match ty {
        None => lanes.mix(0),
        Some(ty) => fold_type(lanes, ty),
    }
}

fn fold_binop(lanes: &mut Lanes, op: BinOp) {
    fold_str(lanes, op.symbol());
}

fn fold_expr(lanes: &mut Lanes, expr: &Expr) {
    match expr {
        Expr::Int(v) => {
            lanes.mix(1);
            lanes.mix(*v as u64);
        }
        Expr::Float(v) => {
            lanes.mix(2);
            lanes.mix(v.to_bits());
        }
        Expr::Str(s) => {
            lanes.mix(3);
            fold_str(lanes, s);
        }
        Expr::Var(name) => {
            lanes.mix(4);
            fold_str(lanes, name);
        }
        Expr::Index(name, index) => {
            lanes.mix(5);
            fold_str(lanes, name);
            fold_expr(lanes, index);
        }
        Expr::Unary(op, inner) => {
            lanes.mix(6);
            lanes.mix(match op {
                UnOp::Neg => 1,
                UnOp::Not => 2,
            });
            fold_expr(lanes, inner);
        }
        Expr::Binary(op, lhs, rhs) => {
            lanes.mix(7);
            fold_binop(lanes, *op);
            fold_expr(lanes, lhs);
            fold_expr(lanes, rhs);
        }
        Expr::Call(name, args) => {
            lanes.mix(8);
            fold_str(lanes, name);
            lanes.mix(args.len() as u64);
            for arg in args {
                fold_expr(lanes, arg);
            }
        }
    }
}

fn fold_block(lanes: &mut Lanes, block: &[Stmt]) {
    lanes.mix(block.len() as u64);
    for stmt in block {
        fold_stmt(lanes, stmt);
    }
}

fn fold_stmt(lanes: &mut Lanes, stmt: &Stmt) {
    match stmt {
        Stmt::Decl { name, ty, init } => {
            lanes.mix(1);
            fold_str(lanes, name);
            fold_type(lanes, *ty);
            match init {
                None => lanes.mix(0),
                Some(init) => {
                    lanes.mix(1);
                    fold_expr(lanes, init);
                }
            }
        }
        Stmt::ArrayDecl { name, ty, size } => {
            lanes.mix(2);
            fold_str(lanes, name);
            fold_type(lanes, *ty);
            lanes.mix(*size as u64);
        }
        Stmt::Assign { target, value } => {
            lanes.mix(3);
            match target {
                LValue::Var(name) => {
                    lanes.mix(1);
                    fold_str(lanes, name);
                }
                LValue::Index(name, index) => {
                    lanes.mix(2);
                    fold_str(lanes, name);
                    fold_expr(lanes, index);
                }
            }
            fold_expr(lanes, value);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            lanes.mix(4);
            fold_expr(lanes, cond);
            fold_block(lanes, then_branch);
            match else_branch {
                None => lanes.mix(0),
                Some(else_branch) => {
                    lanes.mix(1);
                    fold_block(lanes, else_branch);
                }
            }
        }
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => {
            lanes.mix(5);
            fold_str(lanes, var);
            fold_expr(lanes, init);
            fold_expr(lanes, cond);
            fold_expr(lanes, step);
            fold_block(lanes, body);
        }
        Stmt::While { cond, body } => {
            lanes.mix(6);
            fold_expr(lanes, cond);
            fold_block(lanes, body);
        }
        Stmt::Return(value) => {
            lanes.mix(7);
            match value {
                None => lanes.mix(0),
                Some(value) => {
                    lanes.mix(1);
                    fold_expr(lanes, value);
                }
            }
        }
        Stmt::ExprStmt(expr) => {
            lanes.mix(8);
            fold_expr(lanes, expr);
        }
    }
}

fn fold_function(lanes: &mut Lanes, function: &Function) {
    fold_str(lanes, &function.name);
    fold_opt_type(lanes, function.ret);
    lanes.mix(function.params.len() as u64);
    for param in &function.params {
        fold_str(lanes, &param.name);
        fold_type(lanes, param.ty);
        lanes.mix(u64::from(param.is_array));
    }
    fold_block(lanes, &function.body);
}

fn fold_program(lanes: &mut Lanes, program: &Program) {
    lanes.mix(program.len() as u64);
    for function in program.iter() {
        fold_function(lanes, function);
    }
}

fn fold_model(lanes: &mut Lanes, model: &CostModel) {
    for field in [
        model.int_op,
        model.int_mul,
        model.int_div,
        model.float_op,
        model.float_mul,
        model.float_div,
        model.mem_op,
        model.reg_op,
        model.loop_overhead,
        model.call_overhead,
        model.host_call,
    ] {
        lanes.mix(field);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::parse_program;

    fn key(src: &str) -> CodeKey {
        CodeKey::of(&parse_program(src).unwrap(), &CostModel::new())
    }

    #[test]
    fn same_program_same_key() {
        let a = key("int f(int x) { return x + 1; }");
        let b = key("int f(int x) { return x + 1; }");
        assert_eq!(a, b);
    }

    #[test]
    fn whitespace_is_structurally_irrelevant() {
        let a = key("int f(int x) { return x + 1; }");
        let b = key("int f(int x)\n{\n    return x + 1;\n}");
        assert_eq!(a, b);
    }

    #[test]
    fn any_structural_change_changes_the_key() {
        let base = key("int f(int x) { return x + 1; }");
        for variant in [
            "int f(int x) { return x + 2; }",                       // literal
            "int f(int x) { return x - 1; }",                       // operator
            "int f(int y) { return y + 1; }",                       // name
            "int g(int x) { return x + 1; }",                       // function name
            "double f(double x) { return x + 1; }",                 // types
            "int f(int x) { return x + 1; } int g() { return 0; }", // extra fn
        ] {
            assert_ne!(base, key(variant), "collision for {variant}");
        }
    }

    #[test]
    fn string_boundaries_do_not_collide() {
        // classic concatenation ambiguity: ("ab","c") vs ("a","bc")
        let a = key("void f() { probe(\"ab\", \"c\"); }");
        let b = key("void f() { probe(\"a\", \"bc\"); }");
        assert_ne!(a, b);
    }

    #[test]
    fn int_and_float_literals_with_equal_bits_do_not_collide() {
        // Int(0) vs Float(0.0): 0.0f64.to_bits() == 0, the variant tag
        // must separate them
        let a = key("int f() { return 0; }");
        let b = key("double f() { return 0.0; }");
        assert_ne!(a.code, b.code);
    }

    #[test]
    fn metering_lane_tracks_the_cost_model() {
        let program = parse_program("int f(int x) { return x + 1; }").unwrap();
        let base = CodeKey::of(&program, &CostModel::new());
        let mut tweaked = CostModel::new();
        tweaked.mem_op += 1;
        let other = CodeKey::of(&program, &tweaked);
        assert_eq!(base.code, other.code, "code lane is model-independent");
        assert_ne!(base.metering, other.metering);
    }

    #[test]
    fn empty_vs_unit_distinction() {
        let a = key("void f() { }");
        let b = key("void f() { return; }");
        assert_ne!(a, b);
    }
}
