//! Abstract cost model of the interpreter.
//!
//! The model plays the role of hardware performance counters in the real
//! ANTAREX flow: every executed operation accrues *cost units* (think
//! issue slots on a simple in-order core), plus FLOP and memory-operation
//! counts that the platform simulator converts into time and energy.
//! Costs are deliberately simple but have the two properties autotuning
//! needs: they are *monotone* in work performed, and they expose the
//! overheads the paper's transformations remove (loop control for
//! unrolling, call dispatch for specialization).
//!
//! Accumulation is overflow-guarded: the cost counter accrues through
//! [`ExecStats::charge`], which returns [`IrError::CostOverflow`] instead
//! of wrapping when an adversarial cost model or loop bound would
//! overflow `u64`, and the event counters saturate. Both execution
//! engines (the tree-walking interpreter and the bytecode VM) go through
//! the same entry points, so they fail identically.

use crate::error::IrError;

/// Per-operation cost table, in abstract cost units.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Integer add/sub/compare/logic.
    pub int_op: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide/remainder.
    pub int_div: u64,
    /// Floating add/sub/compare.
    pub float_op: u64,
    /// Floating multiply.
    pub float_mul: u64,
    /// Floating divide.
    pub float_div: u64,
    /// Array element load or store.
    pub mem_op: u64,
    /// Scalar variable read/write (register-like).
    pub reg_op: u64,
    /// Per-iteration loop control overhead (condition, step, branch).
    pub loop_overhead: u64,
    /// Function call overhead (frame setup, dispatch).
    pub call_overhead: u64,
    /// Cost of an intrinsic/host call (instrumentation overhead).
    pub host_call: u64,
}

impl CostModel {
    /// The default model: latencies loosely modelled on a simple in-order
    /// core (integer ALU 1, FP add 3, FP mul 5, divides ~20, memory 4).
    pub fn new() -> Self {
        CostModel {
            int_op: 1,
            int_mul: 3,
            int_div: 20,
            float_op: 3,
            float_mul: 5,
            float_div: 20,
            mem_op: 4,
            reg_op: 0,
            loop_overhead: 2,
            call_overhead: 12,
            host_call: 25,
        }
    }

    /// A model where instrumentation is free — useful for separating
    /// measurement overhead from kernel work in experiments.
    pub fn free_instrumentation(mut self) -> Self {
        self.host_call = 0;
        self
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregate execution statistics returned by the interpreter.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Total abstract cost units accrued.
    pub cost: u64,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Precision-weighted FP energy: each flop contributes
    /// `(mantissa_bits / 52)²` — multiplier energy grows roughly
    /// quadratically with operand width. A flop computed for a
    /// full-precision destination contributes 1.0; one feeding a `float10`
    /// variable contributes ≈ 0.037. This is the signal precision
    /// autotuning optimizes.
    pub flop_energy: f64,
    /// Array loads + stores performed.
    pub mem_ops: u64,
    /// Function calls executed (mini-C functions).
    pub calls: u64,
    /// Host (intrinsic) calls executed.
    pub host_calls: u64,
    /// Loop iterations executed.
    pub loop_iters: u64,
}

impl ExecStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another statistics record into this one (saturating — merging
    /// reports never panics or wraps, even near the counter ceiling).
    pub fn merge(&mut self, other: &ExecStats) {
        self.cost = self.cost.saturating_add(other.cost);
        self.flops = self.flops.saturating_add(other.flops);
        self.flop_energy += other.flop_energy;
        self.mem_ops = self.mem_ops.saturating_add(other.mem_ops);
        self.calls = self.calls.saturating_add(other.calls);
        self.host_calls = self.host_calls.saturating_add(other.host_calls);
        self.loop_iters = self.loop_iters.saturating_add(other.loop_iters);
    }

    /// Accrues `amount` cost units, failing with
    /// [`IrError::CostOverflow`] instead of wrapping. Every cost charge in
    /// both execution engines routes through here so an adversarial cost
    /// model (e.g. `u64::MAX` per op) produces a typed error rather than
    /// a silently reset counter.
    ///
    /// # Errors
    ///
    /// [`IrError::CostOverflow`] when the counter would exceed `u64::MAX`.
    #[inline]
    pub fn charge(&mut self, amount: u64) -> Result<(), IrError> {
        self.cost = self.cost.checked_add(amount).ok_or(IrError::CostOverflow)?;
        Ok(())
    }

    /// Counts `n` floating-point operations whose destination has
    /// precision-energy weight `unit` (see [`ExecStats::flop_energy`]).
    /// The flop counter saturates; the energy sum is a single `f64`
    /// addition of `n · unit`, matching the interpreter's historical
    /// accumulation order bit-for-bit.
    #[inline]
    pub fn count_flops(&mut self, n: u64, unit: f64) {
        self.flops = self.flops.saturating_add(n);
        self.flop_energy += n as f64 * unit;
    }

    /// Arithmetic intensity: FLOPs per memory operation (`None` when no
    /// memory traffic occurred).
    pub fn arithmetic_intensity(&self) -> Option<f64> {
        if self.mem_ops == 0 {
            None
        } else {
            Some(self.flops as f64 / self.mem_ops as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_orders_latencies_sensibly() {
        let m = CostModel::new();
        assert!(m.int_op < m.int_mul);
        assert!(m.int_mul < m.int_div);
        assert!(m.float_op < m.float_mul);
        assert!(m.float_mul < m.float_div);
        assert!(m.call_overhead > m.loop_overhead);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExecStats {
            cost: 10,
            flops: 2,
            flop_energy: 2.0,
            mem_ops: 1,
            calls: 1,
            host_calls: 0,
            loop_iters: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.cost, 20);
        assert_eq!(a.loop_iters, 10);
    }

    #[test]
    fn arithmetic_intensity() {
        let s = ExecStats {
            flops: 8,
            mem_ops: 4,
            ..ExecStats::default()
        };
        assert_eq!(s.arithmetic_intensity(), Some(2.0));
        assert_eq!(ExecStats::default().arithmetic_intensity(), None);
    }

    #[test]
    fn free_instrumentation_zeroes_host_cost() {
        assert_eq!(CostModel::new().free_instrumentation().host_call, 0);
    }

    #[test]
    fn charge_overflows_to_typed_error() {
        let mut s = ExecStats::new();
        s.charge(u64::MAX - 1).unwrap();
        assert_eq!(s.charge(2), Err(IrError::CostOverflow));
        // the counter is left at its pre-overflow value, not wrapped
        assert_eq!(s.cost, u64::MAX - 1);
        s.charge(1).unwrap();
        assert_eq!(s.cost, u64::MAX);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = ExecStats {
            cost: u64::MAX - 5,
            loop_iters: u64::MAX,
            ..ExecStats::default()
        };
        a.merge(&ExecStats {
            cost: 100,
            loop_iters: 3,
            ..ExecStats::default()
        });
        assert_eq!(a.cost, u64::MAX);
        assert_eq!(a.loop_iters, u64::MAX);
    }

    #[test]
    fn count_flops_matches_bulk_accumulation() {
        let mut a = ExecStats::new();
        a.count_flops(4, 0.25);
        assert_eq!(a.flops, 4);
        assert_eq!(a.flop_energy, 1.0);
        let mut b = ExecStats {
            flops: u64::MAX,
            ..ExecStats::default()
        };
        b.count_flops(2, 1.0);
        assert_eq!(b.flops, u64::MAX);
    }
}
