//! Abstract cost model of the interpreter.
//!
//! The model plays the role of hardware performance counters in the real
//! ANTAREX flow: every executed operation accrues *cost units* (think
//! issue slots on a simple in-order core), plus FLOP and memory-operation
//! counts that the platform simulator converts into time and energy.
//! Costs are deliberately simple but have the two properties autotuning
//! needs: they are *monotone* in work performed, and they expose the
//! overheads the paper's transformations remove (loop control for
//! unrolling, call dispatch for specialization).

/// Per-operation cost table, in abstract cost units.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Integer add/sub/compare/logic.
    pub int_op: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide/remainder.
    pub int_div: u64,
    /// Floating add/sub/compare.
    pub float_op: u64,
    /// Floating multiply.
    pub float_mul: u64,
    /// Floating divide.
    pub float_div: u64,
    /// Array element load or store.
    pub mem_op: u64,
    /// Scalar variable read/write (register-like).
    pub reg_op: u64,
    /// Per-iteration loop control overhead (condition, step, branch).
    pub loop_overhead: u64,
    /// Function call overhead (frame setup, dispatch).
    pub call_overhead: u64,
    /// Cost of an intrinsic/host call (instrumentation overhead).
    pub host_call: u64,
}

impl CostModel {
    /// The default model: latencies loosely modelled on a simple in-order
    /// core (integer ALU 1, FP add 3, FP mul 5, divides ~20, memory 4).
    pub fn new() -> Self {
        CostModel {
            int_op: 1,
            int_mul: 3,
            int_div: 20,
            float_op: 3,
            float_mul: 5,
            float_div: 20,
            mem_op: 4,
            reg_op: 0,
            loop_overhead: 2,
            call_overhead: 12,
            host_call: 25,
        }
    }

    /// A model where instrumentation is free — useful for separating
    /// measurement overhead from kernel work in experiments.
    pub fn free_instrumentation(mut self) -> Self {
        self.host_call = 0;
        self
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregate execution statistics returned by the interpreter.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Total abstract cost units accrued.
    pub cost: u64,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Precision-weighted FP energy: each flop contributes
    /// `(mantissa_bits / 52)²` — multiplier energy grows roughly
    /// quadratically with operand width. A flop computed for a
    /// full-precision destination contributes 1.0; one feeding a `float10`
    /// variable contributes ≈ 0.037. This is the signal precision
    /// autotuning optimizes.
    pub flop_energy: f64,
    /// Array loads + stores performed.
    pub mem_ops: u64,
    /// Function calls executed (mini-C functions).
    pub calls: u64,
    /// Host (intrinsic) calls executed.
    pub host_calls: u64,
    /// Loop iterations executed.
    pub loop_iters: u64,
}

impl ExecStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another statistics record into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.cost += other.cost;
        self.flops += other.flops;
        self.flop_energy += other.flop_energy;
        self.mem_ops += other.mem_ops;
        self.calls += other.calls;
        self.host_calls += other.host_calls;
        self.loop_iters += other.loop_iters;
    }

    /// Arithmetic intensity: FLOPs per memory operation (`None` when no
    /// memory traffic occurred).
    pub fn arithmetic_intensity(&self) -> Option<f64> {
        if self.mem_ops == 0 {
            None
        } else {
            Some(self.flops as f64 / self.mem_ops as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_orders_latencies_sensibly() {
        let m = CostModel::new();
        assert!(m.int_op < m.int_mul);
        assert!(m.int_mul < m.int_div);
        assert!(m.float_op < m.float_mul);
        assert!(m.float_mul < m.float_div);
        assert!(m.call_overhead > m.loop_overhead);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExecStats {
            cost: 10,
            flops: 2,
            flop_energy: 2.0,
            mem_ops: 1,
            calls: 1,
            host_calls: 0,
            loop_iters: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.cost, 20);
        assert_eq!(a.loop_iters, 10);
    }

    #[test]
    fn arithmetic_intensity() {
        let s = ExecStats {
            flops: 8,
            mem_ops: 4,
            ..ExecStats::default()
        };
        assert_eq!(s.arithmetic_intensity(), Some(2.0));
        assert_eq!(ExecStats::default().arithmetic_intensity(), None);
    }

    #[test]
    fn free_instrumentation_zeroes_host_cost() {
        assert_eq!(CostModel::new().free_instrumentation().host_call, 0);
    }
}
