//! The [`Executor`] abstraction: one interface over both execution
//! engines.
//!
//! The workspace has two ways to run a mini-C program: the tree-walking
//! [`Interp`] (the executable reference) and the
//! metered bytecode VM in `antarex-vm` (the fast path). Consumers —
//! `core::flow`, the precision tuner, the serving tier — program against
//! this trait so an engine is a constructor choice, not an API fork. The
//! two engines are required to be bit-identical in observable behaviour
//! (values, [`crate::cost::ExecStats`], host-call traces, errors); the
//! differential suite in `antarex-vm` enforces that.

use crate::ast::Program;
use crate::error::IrError;
use crate::interp::{Dispatcher, ExecEnv, HostFn, Interp};
use crate::value::Value;

/// A mini-C execution engine.
///
/// Implemented by the tree-walking interpreter here and by the bytecode
/// VM in `antarex-vm`. All methods mirror the historical `Interp` API so
/// switching engines is mechanical.
pub trait Executor {
    /// Calls a function by name; statistics accrue into `env.stats`.
    ///
    /// # Errors
    ///
    /// * [`IrError::Unresolved`] — unknown function.
    /// * [`IrError::Type`] / [`IrError::Eval`] — dynamic errors.
    /// * [`IrError::BudgetExceeded`] — the work budget was exhausted.
    /// * [`IrError::CostOverflow`] — cost accounting overflowed.
    fn call(&mut self, name: &str, args: &[Value], env: &mut ExecEnv) -> Result<Value, IrError>;

    /// Registers a host (intrinsic) function callable from mini-C code,
    /// returning any previous registration under the name.
    fn register_host(&mut self, name: String, f: HostFn) -> Option<HostFn>;

    /// Sets (or clears) the execution budget in cost units.
    fn set_budget(&mut self, budget: Option<u64>);

    /// Installs the dynamic-weaving dispatcher.
    fn set_dispatcher(&mut self, dispatcher: Box<dyn Dispatcher>);

    /// The program being executed (it may grow under dynamic weaving).
    fn program(&self) -> &Program;

    /// Mutable access to the program (design-time edits between runs).
    fn program_mut(&mut self) -> &mut Program;

    /// A short engine identifier for reports (`"interp"` / `"vm"`).
    fn engine_name(&self) -> &'static str;
}

impl Executor for Interp {
    fn call(&mut self, name: &str, args: &[Value], env: &mut ExecEnv) -> Result<Value, IrError> {
        Interp::call(self, name, args, env)
    }

    fn register_host(&mut self, name: String, f: HostFn) -> Option<HostFn> {
        Interp::register_host(self, name, f)
    }

    fn set_budget(&mut self, budget: Option<u64>) {
        Interp::set_budget(self, budget)
    }

    fn set_dispatcher(&mut self, dispatcher: Box<dyn Dispatcher>) {
        Interp::set_dispatcher(self, dispatcher)
    }

    fn program(&self) -> &Program {
        Interp::program(self)
    }

    fn program_mut(&mut self) -> &mut Program {
        Interp::program_mut(self)
    }

    fn engine_name(&self) -> &'static str {
        "interp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn interp_implements_executor() {
        let program = parse_program("int inc(int x) { return x + 1; }").unwrap();
        let mut engine: Box<dyn Executor> = Box::new(Interp::new(program));
        assert_eq!(engine.engine_name(), "interp");
        let mut env = ExecEnv::new();
        let out = engine.call("inc", &[Value::Int(41)], &mut env).unwrap();
        assert_eq!(out, Value::Int(42));
        assert!(env.stats.cost > 0);
        assert!(engine.program().contains("inc"));
    }

    #[test]
    fn executor_budget_is_respected() {
        let program = parse_program("void f() { while (1) { } }").unwrap();
        let mut engine: Box<dyn Executor> = Box::new(Interp::new(program));
        engine.set_budget(Some(1_000));
        let err = engine.call("f", &[], &mut ExecEnv::new()).unwrap_err();
        assert!(matches!(err, IrError::BudgetExceeded { .. }));
    }
}
