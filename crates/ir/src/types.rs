//! Scalar types of the mini-C language, including custom-precision floats.
//!
//! Custom mantissa widths are the hook used by `antarex-precision`: the
//! interpreter rounds every store to a variable's declared precision, so
//! lowering a declaration from [`Type::F64`] to e.g. `Type::float_custom(18)`
//! observably trades result quality for (modelled) energy, as in the paper's
//! precision-autotuning work package.

use std::fmt;

/// A scalar or array-element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer (mini-C `int` and `long`).
    Int,
    /// IEEE-754 binary64 (`double`), 52 explicit mantissa bits.
    F64,
    /// IEEE-754 binary32 (`float`), 23 explicit mantissa bits.
    F32,
    /// Emulated float with a custom number of explicit mantissa bits
    /// (1..=52); exponent range is that of binary64.
    FCustom(u8),
    /// String (only for instrumentation literals).
    Str,
}

impl Type {
    /// Creates a custom-precision float type.
    ///
    /// # Panics
    ///
    /// Panics if `mantissa_bits` is 0 or greater than 52.
    pub fn float_custom(mantissa_bits: u8) -> Self {
        assert!(
            (1..=52).contains(&mantissa_bits),
            "mantissa bits must be in 1..=52, got {mantissa_bits}"
        );
        Type::FCustom(mantissa_bits)
    }

    /// Returns `true` for any floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F64 | Type::F32 | Type::FCustom(_))
    }

    /// Explicit mantissa bits for float types, `None` otherwise.
    pub fn mantissa_bits(self) -> Option<u8> {
        match self {
            Type::F64 => Some(52),
            Type::F32 => Some(23),
            Type::FCustom(bits) => Some(bits),
            Type::Int | Type::Str => None,
        }
    }

    /// Rounds `x` to this type's precision (identity for non-floats).
    ///
    /// Uses round-to-nearest-even on the mantissa, mirroring what storing to
    /// a narrower hardware format would do. Exponent overflow/underflow is
    /// not modelled beyond what binary64 itself does, which is sufficient
    /// for precision-tuning experiments on well-scaled kernels.
    pub fn quantize(self, x: f64) -> f64 {
        match self.mantissa_bits() {
            None | Some(52) => x,
            Some(bits) => quantize_mantissa(x, bits),
        }
    }
}

/// Rounds `x` to `bits` explicit mantissa bits (round-to-nearest-even).
pub fn quantize_mantissa(x: f64, bits: u8) -> f64 {
    debug_assert!((1..=52).contains(&bits));
    if bits >= 52 || !x.is_finite() || x == 0.0 {
        return x;
    }
    let shift = 52 - u32::from(bits);
    let raw = x.to_bits();
    let half = 1u64 << (shift - 1);
    let mask = !((1u64 << shift) - 1);
    let truncated = raw & mask;
    let remainder = raw & !mask;
    let rounded = if remainder > half || (remainder == half && (truncated >> shift) & 1 == 1) {
        truncated.wrapping_add(1u64 << shift)
    } else {
        truncated
    };
    f64::from_bits(rounded)
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::F64 => write!(f, "double"),
            Type::F32 => write!(f, "float"),
            Type::FCustom(bits) => write!(f, "float{bits}"),
            Type::Str => write!(f, "char*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_full_precision_is_identity() {
        for x in [0.1, -3.75, 1e300, 1e-300, 0.0] {
            assert_eq!(Type::F64.quantize(x), x);
        }
    }

    #[test]
    fn quantize_f32_matches_hardware_float() {
        for x in [0.1, -std::f64::consts::PI, 12345.6789, 1e-7, 2.5e10] {
            assert_eq!(Type::F32.quantize(x), f64::from(x as f32));
        }
    }

    #[test]
    fn quantize_preserves_specials() {
        assert!(Type::FCustom(8).quantize(f64::NAN).is_nan());
        assert_eq!(Type::FCustom(8).quantize(f64::INFINITY), f64::INFINITY);
        assert_eq!(Type::FCustom(8).quantize(-0.0), -0.0);
    }

    #[test]
    fn fewer_bits_means_no_smaller_error() {
        let x = std::f64::consts::PI;
        let mut prev_err = 0.0f64;
        for bits in (4..=52).rev() {
            let err = (Type::FCustom(bits).quantize(x) - x).abs();
            assert!(err >= prev_err, "error shrank when dropping to {bits} bits");
            prev_err = err;
        }
    }

    #[test]
    fn quantize_exactly_representable_is_identity() {
        // 1.5 = 1.1b needs one mantissa bit.
        assert_eq!(Type::FCustom(1).quantize(1.5), 1.5);
        assert_eq!(Type::FCustom(2).quantize(1.25), 1.25);
    }

    #[test]
    fn round_to_nearest_even_halfway() {
        // With 1 mantissa bit, representable values near 1.0: 1.0, 1.5, 2.0.
        // 1.25 is halfway between 1.0 and 1.5 -> ties to even mantissa (1.0).
        assert_eq!(quantize_mantissa(1.25, 1), 1.0);
        // 1.75 is halfway between 1.5 and 2.0 -> ties to even (2.0).
        assert_eq!(quantize_mantissa(1.75, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "mantissa bits")]
    fn custom_zero_bits_rejected() {
        let _ = Type::float_custom(0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::F64.to_string(), "double");
        assert_eq!(Type::FCustom(10).to_string(), "float10");
    }
}
