//! Cost-accounting interpreter for mini-C programs.
//!
//! The interpreter makes woven programs *runnable*: instrumentation inserted
//! by the weaver executes as host calls, unrolled loops demonstrably shed
//! loop-control cost, and specialized function versions can be added *while
//! the program runs* through the [`Dispatcher`] hook — the mechanism behind
//! the paper's dynamic weaving and split-compilation story (Fig. 4).
//!
//! # Semantics notes
//!
//! * Arrays are copy-in/copy-out: passing an array variable to a function
//!   and mutating the parameter writes back to the caller's variable on
//!   return, giving C-like by-reference behaviour for our kernels.
//! * Every store to a variable (or array) declared with a floating type is
//!   quantized to that type's mantissa width — the hook used by
//!   `antarex-precision` for customized-precision experiments.
//! * Execution accrues [`crate::cost::ExecStats`] per the
//!   configured [`crate::cost::CostModel`].

use crate::ast::{BinOp, Block, Expr, Function, LValue, Program, Stmt};
use crate::cost::{CostModel, ExecStats};
use crate::error::IrError;
use crate::ops::{self, coerce_scalar, coerce_scalar_or_array, zero_of};
use crate::types::Type;
use crate::value::Value;
use std::collections::HashMap;
use std::rc::Rc;

/// Host (intrinsic) function: receives evaluated arguments, returns a value.
pub type HostFn = Box<dyn FnMut(&[Value]) -> Result<Value, IrError>>;

/// Runtime call-resolution hook used for dynamic weaving.
///
/// Before any mini-C function call, the interpreter asks the dispatcher to
/// resolve the callee. The dispatcher may inspect the runtime argument
/// values, synthesize a specialized function, insert it into the program,
/// and redirect the call to it — this is how the paper's `SpecializeKernel`
/// aspect (Fig. 4) is enacted at runtime.
pub trait Dispatcher {
    /// Returns `Some(new_callee)` to redirect the call, `None` to keep it.
    ///
    /// # Errors
    ///
    /// May fail if specialization itself fails; the error aborts execution.
    fn resolve(
        &mut self,
        callee: &str,
        args: &[Value],
        program: &mut Program,
    ) -> Result<Option<String>, IrError>;
}

/// Per-run execution environment: accumulated statistics.
#[derive(Debug, Default, Clone)]
pub struct ExecEnv {
    /// Statistics accrued by calls made with this environment.
    pub stats: ExecStats,
}

impl ExecEnv {
    /// Creates a fresh environment with zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }
}

enum Flow {
    Normal,
    Return(Value),
}

struct Frame {
    locals: HashMap<String, Value>,
    types: HashMap<String, Type>,
}

impl Frame {
    fn new() -> Self {
        Frame {
            locals: HashMap::new(),
            types: HashMap::new(),
        }
    }

    fn store(&mut self, name: &str, mut value: Value) {
        if let (Some(ty), Value::Float(v)) = (self.types.get(name), &value) {
            value = Value::Float(ty.quantize(*v));
        }
        self.locals.insert(name.to_string(), value);
    }
}

/// The mini-C interpreter.
///
/// # Examples
///
/// ```
/// use antarex_ir::{parse_program, interp::{ExecEnv, Interp}, value::Value};
///
/// # fn main() -> Result<(), antarex_ir::IrError> {
/// let program = parse_program(
///     "double sumsq(double a[], int n) {
///          double s = 0.0;
///          for (int i = 0; i < n; i++) { s += a[i] * a[i]; }
///          return s;
///      }",
/// )?;
/// let mut interp = Interp::new(program);
/// let mut env = ExecEnv::new();
/// let out = interp.call(
///     "sumsq",
///     &[Value::from(vec![1.0, 2.0, 3.0]), Value::Int(3)],
///     &mut env,
/// )?;
/// assert_eq!(out, Value::Float(14.0));
/// assert!(env.stats.flops >= 6);
/// # Ok(())
/// # }
/// ```
pub struct Interp {
    program: Program,
    cost_model: CostModel,
    budget: Option<u64>,
    hosts: HashMap<String, HostFn>,
    dispatcher: Option<Box<dyn Dispatcher>>,
    /// Mantissa width of the destination currently being computed; flops
    /// accrue `(prec_ctx / 52)²` energy (see
    /// [`ExecStats::flop_energy`](crate::cost::ExecStats)).
    prec_ctx: u8,
    /// Current mini-C call depth (guards the host stack against runaway
    /// recursion).
    depth: u32,
}

/// Maximum mini-C call depth before execution aborts.
pub const MAX_CALL_DEPTH: u32 = 64;

impl std::fmt::Debug for Interp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interp")
            .field("functions", &self.program.function_names())
            .field("hosts", &self.hosts.keys().collect::<Vec<_>>())
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl Interp {
    /// Creates an interpreter for `program` with the default cost model.
    pub fn new(program: Program) -> Self {
        Interp {
            program,
            cost_model: CostModel::new(),
            budget: Some(200_000_000),
            hosts: HashMap::new(),
            dispatcher: None,
            prec_ctx: 52,
            depth: 0,
        }
    }

    /// Evaluates `expr` with the precision context set to the mantissa
    /// width of the destination type (if a float type), restoring the
    /// previous context afterwards.
    fn eval_for_store(
        &mut self,
        expr: &Expr,
        ty: Option<Type>,
        frame: &mut Frame,
        env: &mut ExecEnv,
    ) -> Result<Value, IrError> {
        let saved = self.prec_ctx;
        if let Some(bits) = ty.and_then(Type::mantissa_bits) {
            self.prec_ctx = bits;
        }
        let result = self.eval(expr, frame, env);
        self.prec_ctx = saved;
        result
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Sets (or clears) the execution budget in cost units. The default is
    /// 2·10⁸ units, which stops runaway loops in tests.
    pub fn set_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    /// Registers a host (intrinsic) function callable from mini-C code.
    /// Returns the previously registered function for the name, if any.
    pub fn register_host(&mut self, name: impl Into<String>, f: HostFn) -> Option<HostFn> {
        self.hosts.insert(name.into(), f)
    }

    /// Installs the dynamic-weaving dispatcher.
    pub fn set_dispatcher(&mut self, dispatcher: Box<dyn Dispatcher>) {
        self.dispatcher = Some(dispatcher);
    }

    /// Removes the dispatcher, returning it.
    pub fn take_dispatcher(&mut self) -> Option<Box<dyn Dispatcher>> {
        self.dispatcher.take()
    }

    /// The program being interpreted (it may grow under dynamic weaving).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Mutable access to the program (design-time edits between runs).
    pub fn program_mut(&mut self) -> &mut Program {
        &mut self.program
    }

    /// Consumes the interpreter, returning the (possibly grown) program.
    pub fn into_program(self) -> Program {
        self.program
    }

    /// Calls a function by name with the given arguments.
    ///
    /// Statistics accrue into `env.stats` (across multiple calls, if the
    /// same environment is reused).
    ///
    /// # Errors
    ///
    /// * [`IrError::Unresolved`] — unknown function.
    /// * [`IrError::Type`] / [`IrError::Eval`] — dynamic errors.
    /// * [`IrError::BudgetExceeded`] — the work budget was exhausted.
    pub fn call(
        &mut self,
        name: &str,
        args: &[Value],
        env: &mut ExecEnv,
    ) -> Result<Value, IrError> {
        let (value, _) = self.call_with_writeback(name, args.to_vec(), env)?;
        Ok(value)
    }

    /// As [`Interp::call`], but also returns the final values of array
    /// parameters (copy-out), in parameter order.
    fn call_with_writeback(
        &mut self,
        name: &str,
        args: Vec<Value>,
        env: &mut ExecEnv,
    ) -> Result<(Value, Vec<(usize, Value)>), IrError> {
        // Dynamic-weaving hook: the dispatcher may redirect and/or extend
        // the program with specialized versions.
        let resolved = if let Some(dispatcher) = self.dispatcher.as_mut() {
            dispatcher
                .resolve(name, &args, &mut self.program)?
                .unwrap_or_else(|| name.to_string())
        } else {
            name.to_string()
        };

        if let Some(function) = self.program.function(&resolved) {
            let function = Rc::clone(function);
            return self.exec_function(&function, args, env);
        }
        if let Some(value) = self.try_builtin(&resolved, &args, env)? {
            return Ok((value, vec![]));
        }
        if self.hosts.contains_key(&resolved) {
            env.stats.charge(self.cost_model.host_call)?;
            env.stats.host_calls = env.stats.host_calls.saturating_add(1);
            let host = self.hosts.get_mut(&resolved).expect("checked above");
            let value = host(&args)?;
            return Ok((value, vec![]));
        }
        Err(IrError::Unresolved(resolved))
    }

    /// Built-in math intrinsics (`sqrt`, `exp`, `log`, `fabs`, `fmin`,
    /// `fmax`, `pow`), evaluated natively with FP cost accounting. User
    /// programs and host registrations take precedence over builtins.
    /// The implementation lives in [`crate::ops::try_builtin`], shared
    /// with the bytecode VM.
    fn try_builtin(
        &mut self,
        name: &str,
        args: &[Value],
        env: &mut ExecEnv,
    ) -> Result<Option<Value>, IrError> {
        ops::try_builtin(name, args, &self.cost_model, self.prec_ctx, &mut env.stats)
    }

    fn exec_function(
        &mut self,
        function: &Function,
        args: Vec<Value>,
        env: &mut ExecEnv,
    ) -> Result<(Value, Vec<(usize, Value)>), IrError> {
        if args.len() != function.params.len() {
            return Err(IrError::Type(format!(
                "function `{}` expects {} arguments, got {}",
                function.name,
                function.params.len(),
                args.len()
            )));
        }
        env.stats.charge(self.cost_model.call_overhead)?;
        env.stats.calls = env.stats.calls.saturating_add(1);
        self.check_budget(env)?;
        self.depth += 1;
        if self.depth > MAX_CALL_DEPTH {
            self.depth -= 1;
            return Err(IrError::Eval(format!(
                "call depth exceeded {MAX_CALL_DEPTH} (runaway recursion in `{}`)",
                function.name
            )));
        }

        let mut frame = Frame::new();
        for (param, arg) in function.params.iter().zip(args) {
            frame.types.insert(param.name.clone(), param.ty);
            if param.is_array {
                match arg {
                    Value::Array(mut items) => {
                        // copy-in quantization: a narrow parameter type
                        // means the data arrives in that format
                        if param.ty.mantissa_bits().is_some_and(|b| b < 52) {
                            for item in &mut items {
                                if let Value::Float(v) = item {
                                    *item = Value::Float(param.ty.quantize(*v));
                                }
                            }
                        }
                        frame.locals.insert(param.name.clone(), Value::Array(items));
                    }
                    other => {
                        return Err(IrError::Type(format!(
                            "parameter `{}` of `{}` expects an array, got {other}",
                            param.name, function.name
                        )))
                    }
                }
            } else {
                frame.store(&param.name, coerce_scalar(arg, param.ty)?);
            }
        }

        let flow = self.exec_block(&function.body, &mut frame, env);
        self.depth -= 1;
        let flow = flow?;
        let mut result = match flow {
            Flow::Return(value) => value,
            Flow::Normal => Value::Unit,
        };
        if let (Some(ty), Value::Float(v)) = (function.ret, &result) {
            result = Value::Float(ty.quantize(*v));
        }
        // copy-out array parameters
        let mut writeback = Vec::new();
        for (i, param) in function.params.iter().enumerate() {
            if param.is_array {
                if let Some(value) = frame.locals.remove(&param.name) {
                    writeback.push((i, value));
                }
            }
        }
        Ok((result, writeback))
    }

    fn check_budget(&self, env: &ExecEnv) -> Result<(), IrError> {
        if let Some(limit) = self.budget {
            if env.stats.cost > limit {
                return Err(IrError::BudgetExceeded { limit });
            }
        }
        Ok(())
    }

    fn exec_block(
        &mut self,
        block: &Block,
        frame: &mut Frame,
        env: &mut ExecEnv,
    ) -> Result<Flow, IrError> {
        for stmt in block {
            match self.exec_stmt(stmt, frame, env)? {
                Flow::Normal => {}
                ret @ Flow::Return(_) => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        frame: &mut Frame,
        env: &mut ExecEnv,
    ) -> Result<Flow, IrError> {
        self.check_budget(env)?;
        match stmt {
            Stmt::Decl { name, ty, init } => {
                frame.types.insert(name.clone(), *ty);
                let value = match init {
                    Some(init) => {
                        let v = self.eval_for_store(init, Some(*ty), frame, env)?;
                        coerce_scalar(v, *ty)?
                    }
                    None => zero_of(*ty),
                };
                frame.store(name, value);
            }
            Stmt::ArrayDecl { name, ty, size } => {
                frame.types.insert(name.clone(), *ty);
                frame
                    .locals
                    .insert(name.clone(), Value::Array(vec![zero_of(*ty); *size]));
            }
            Stmt::Assign { target, value } => {
                let dest_ty = frame.types.get(target.name()).copied();
                let value = self.eval_for_store(value, dest_ty, frame, env)?;
                match target {
                    LValue::Var(name) => {
                        if !frame.locals.contains_key(name) {
                            return Err(IrError::Unresolved(name.clone()));
                        }
                        let coerced = match frame.types.get(name) {
                            Some(ty) => coerce_scalar_or_array(value, *ty)?,
                            None => value,
                        };
                        frame.store(name, coerced);
                        env.stats.charge(self.cost_model.reg_op)?;
                    }
                    LValue::Index(name, index) => {
                        let idx = self
                            .eval(index, frame, env)?
                            .as_i64()
                            .ok_or_else(|| IrError::Type("array index must be numeric".into()))?;
                        let elem_ty = frame.types.get(name).copied();
                        let array = frame
                            .locals
                            .get_mut(name)
                            .ok_or_else(|| IrError::Unresolved(name.clone()))?;
                        let Value::Array(items) = array else {
                            return Err(IrError::Type(format!("`{name}` is not an array")));
                        };
                        let len = items.len();
                        let slot = items
                            .get_mut(usize::try_from(idx).map_err(|_| {
                                IrError::Eval(format!("negative index {idx} into `{name}`"))
                            })?)
                            .ok_or_else(|| {
                                IrError::Eval(format!(
                                    "index {idx} out of bounds for `{name}` (len {len})"
                                ))
                            })?;
                        let mut value = value;
                        if let (Some(ty), Value::Float(v)) = (elem_ty, &value) {
                            value = Value::Float(ty.quantize(*v));
                        }
                        *slot = value;
                        env.stats.charge(self.cost_model.mem_op)?;
                        env.stats.mem_ops = env.stats.mem_ops.saturating_add(1);
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let taken = self.eval(cond, frame, env)?.truthy();
                if taken {
                    return self.exec_block(then_branch, frame, env);
                } else if let Some(else_branch) = else_branch {
                    return self.exec_block(else_branch, frame, env);
                }
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let start = self.eval(init, frame, env)?;
                frame.types.insert(var.clone(), Type::Int);
                frame.store(var, coerce_scalar(start, Type::Int)?);
                loop {
                    if !self.eval(cond, frame, env)?.truthy() {
                        break;
                    }
                    env.stats.charge(self.cost_model.loop_overhead)?;
                    env.stats.loop_iters = env.stats.loop_iters.saturating_add(1);
                    self.check_budget(env)?;
                    match self.exec_block(body, frame, env)? {
                        Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    let next = self.eval(step, frame, env)?;
                    frame.store(var, coerce_scalar(next, Type::Int)?);
                }
            }
            Stmt::While { cond, body } => loop {
                if !self.eval(cond, frame, env)?.truthy() {
                    break;
                }
                env.stats.charge(self.cost_model.loop_overhead)?;
                env.stats.loop_iters = env.stats.loop_iters.saturating_add(1);
                self.check_budget(env)?;
                match self.exec_block(body, frame, env)? {
                    Flow::Normal => {}
                    ret @ Flow::Return(_) => return Ok(ret),
                }
            },
            Stmt::Return(value) => {
                let value = match value {
                    Some(value) => self.eval(value, frame, env)?,
                    None => Value::Unit,
                };
                return Ok(Flow::Return(value));
            }
            Stmt::ExprStmt(expr) => {
                self.eval(expr, frame, env)?;
            }
        }
        Ok(Flow::Normal)
    }

    fn eval(
        &mut self,
        expr: &Expr,
        frame: &mut Frame,
        env: &mut ExecEnv,
    ) -> Result<Value, IrError> {
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Var(name) => {
                env.stats.charge(self.cost_model.reg_op)?;
                frame
                    .locals
                    .get(name)
                    .cloned()
                    .ok_or_else(|| IrError::Unresolved(name.clone()))
            }
            Expr::Index(name, index) => {
                let idx = self
                    .eval(index, frame, env)?
                    .as_i64()
                    .ok_or_else(|| IrError::Type("array index must be numeric".into()))?;
                env.stats.charge(self.cost_model.mem_op)?;
                env.stats.mem_ops = env.stats.mem_ops.saturating_add(1);
                let array = frame
                    .locals
                    .get(name)
                    .ok_or_else(|| IrError::Unresolved(name.clone()))?;
                let Value::Array(items) = array else {
                    return Err(IrError::Type(format!("`{name}` is not an array")));
                };
                let len = items.len();
                items
                    .get(usize::try_from(idx).map_err(|_| {
                        IrError::Eval(format!("negative index {idx} into `{name}`"))
                    })?)
                    .cloned()
                    .ok_or_else(|| {
                        IrError::Eval(format!(
                            "index {idx} out of bounds for `{name}` (len {len})"
                        ))
                    })
            }
            Expr::Unary(op, inner) => {
                let value = self.eval(inner, frame, env)?;
                ops::apply_unary(*op, value, &self.cost_model, self.prec_ctx, &mut env.stats)
            }
            Expr::Binary(op, lhs, rhs) => {
                // short-circuit logical operators
                if *op == BinOp::And {
                    let l = self.eval(lhs, frame, env)?;
                    env.stats.charge(self.cost_model.int_op)?;
                    if !l.truthy() {
                        return Ok(Value::Int(0));
                    }
                    let r = self.eval(rhs, frame, env)?;
                    return Ok(Value::Int(i64::from(r.truthy())));
                }
                if *op == BinOp::Or {
                    let l = self.eval(lhs, frame, env)?;
                    env.stats.charge(self.cost_model.int_op)?;
                    if l.truthy() {
                        return Ok(Value::Int(1));
                    }
                    let r = self.eval(rhs, frame, env)?;
                    return Ok(Value::Int(i64::from(r.truthy())));
                }
                let l = self.eval(lhs, frame, env)?;
                let r = self.eval(rhs, frame, env)?;
                ops::apply_binary(*op, l, r, &self.cost_model, self.prec_ctx, &mut env.stats)
            }
            Expr::Call(name, args) => {
                let mut evaluated = Vec::with_capacity(args.len());
                for arg in args {
                    evaluated.push(self.eval(arg, frame, env)?);
                }
                let (value, writeback) = self.call_with_writeback(name, evaluated, env)?;
                // copy-out: array arguments passed as plain variables get the
                // callee's final contents back.
                for (param_idx, array) in writeback {
                    if let Some(Expr::Var(var)) = args.get(param_idx) {
                        if frame.locals.contains_key(var) {
                            frame.locals.insert(var.clone(), array);
                        }
                    }
                }
                Ok(value)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run(src: &str, f: &str, args: &[Value]) -> (Value, ExecStats) {
        let program = parse_program(src).unwrap();
        let mut interp = Interp::new(program);
        let mut env = ExecEnv::new();
        let out = interp.call(f, args, &mut env).unwrap();
        (out, env.stats)
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let (out, _) = run(
            "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }",
            "fib",
            &[Value::Int(10)],
        );
        assert_eq!(out, Value::Int(55));
    }

    #[test]
    fn for_loop_accumulates() {
        let (out, stats) = run(
            "int sum(int n) { int s = 0; for (int i = 1; i <= n; i++) { s += i; } return s; }",
            "sum",
            &[Value::Int(100)],
        );
        assert_eq!(out, Value::Int(5050));
        assert_eq!(stats.loop_iters, 100);
    }

    #[test]
    fn while_loop_and_modulo() {
        let (out, _) = run(
            "int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }",
            "gcd",
            &[Value::Int(48), Value::Int(36)],
        );
        assert_eq!(out, Value::Int(12));
    }

    #[test]
    fn arrays_copy_out_to_caller() {
        let (out, _) = run(
            "void fill(double a[], int n) { for (int i = 0; i < n; i++) { a[i] = i * 2.0; } }
             double use() { double buf[4]; fill(buf, 4); return buf[3]; }",
            "use",
            &[],
        );
        assert_eq!(out, Value::Float(6.0));
    }

    #[test]
    fn float_int_promotion() {
        let (out, _) = run(
            "double mix(int a, double b) { return a + b * 2; }",
            "mix",
            &[Value::Int(1), Value::Float(0.25)],
        );
        assert_eq!(out, Value::Float(1.5));
    }

    #[test]
    fn short_circuit_avoids_evaluation() {
        // g() would divide by zero; && must not evaluate it.
        let (out, _) = run(
            "int g() { return 1 / 0; }
             int f(int x) { if (x > 0 && x < 10) return 1; return 0; }",
            "f",
            &[Value::Int(-5)],
        );
        assert_eq!(out, Value::Int(0));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let program = parse_program("int f() { return 1 / 0; }").unwrap();
        let mut interp = Interp::new(program);
        let err = interp.call("f", &[], &mut ExecEnv::new()).unwrap_err();
        assert!(matches!(err, IrError::Eval(_)));
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let program = parse_program("int f() { int a[2]; return a[5]; }").unwrap();
        let mut interp = Interp::new(program);
        let err = interp.call("f", &[], &mut ExecEnv::new()).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn budget_stops_infinite_loop() {
        let program = parse_program("void f() { while (1) { } }").unwrap();
        let mut interp = Interp::new(program);
        interp.set_budget(Some(10_000));
        let err = interp.call("f", &[], &mut ExecEnv::new()).unwrap_err();
        assert!(matches!(err, IrError::BudgetExceeded { .. }));
    }

    #[test]
    fn host_functions_receive_arguments() {
        let program = parse_program("void f(int x) { record(\"f\", x, x * 2); }").unwrap();
        let mut interp = Interp::new(program);
        let seen: Rc<RefCell<Vec<Vec<Value>>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        interp.register_host(
            "record",
            Box::new(move |args| {
                sink.borrow_mut().push(args.to_vec());
                Ok(Value::Unit)
            }),
        );
        let mut env = ExecEnv::new();
        interp.call("f", &[Value::Int(21)], &mut env).unwrap();
        let seen = seen.borrow();
        assert_eq!(seen.len(), 1);
        assert_eq!(
            seen[0],
            vec![Value::Str("f".into()), Value::Int(21), Value::Int(42)]
        );
        assert_eq!(env.stats.host_calls, 1);
    }

    #[test]
    fn unknown_function_is_unresolved() {
        let program = parse_program("void f() { ghost(); }").unwrap();
        let mut interp = Interp::new(program);
        let err = interp.call("f", &[], &mut ExecEnv::new()).unwrap_err();
        assert_eq!(err, IrError::Unresolved("ghost".into()));
    }

    #[test]
    fn precision_quantization_on_store() {
        // float4: 4 mantissa bits. 1.03125 = 1 + 1/32 needs 5 bits -> rounds.
        let (out, _) = run("double f() { float4 x = 1.03125; return x; }", "f", &[]);
        let Value::Float(v) = out else { panic!() };
        assert_ne!(v, 1.03125, "value must have been quantized");
        assert!((v - 1.03125).abs() <= 0.03125);
    }

    #[test]
    fn full_precision_not_quantized() {
        let (out, _) = run("double f() { double x = 1.03125; return x; }", "f", &[]);
        assert_eq!(out, Value::Float(1.03125));
    }

    #[test]
    fn stats_count_flops_and_mem_ops() {
        let (_, stats) = run(
            "double dot(double a[], double b[], int n) {
                 double s = 0.0;
                 for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
                 return s;
             }",
            "dot",
            &[
                Value::from(vec![1.0, 2.0, 3.0, 4.0]),
                Value::from(vec![1.0, 1.0, 1.0, 1.0]),
                Value::Int(4),
            ],
        );
        assert_eq!(stats.flops, 8, "4 multiplies + 4 adds");
        assert_eq!(stats.mem_ops, 8, "8 loads");
        assert_eq!(stats.loop_iters, 4);
        assert_eq!(stats.calls, 1);
    }

    #[test]
    fn dispatcher_redirects_and_extends_program() {
        struct Redirect;
        impl Dispatcher for Redirect {
            fn resolve(
                &mut self,
                callee: &str,
                args: &[Value],
                program: &mut Program,
            ) -> Result<Option<String>, IrError> {
                if callee == "kernel" && args == [Value::Int(2)] {
                    if !program.contains("kernel_2") {
                        let specialized =
                            parse_program("int kernel_2(int x) { return 222; }").unwrap();
                        program.insert((**specialized.function("kernel_2").unwrap()).clone());
                    }
                    return Ok(Some("kernel_2".into()));
                }
                Ok(None)
            }
        }
        let program =
            parse_program("int kernel(int x) { return x; } int f(int x) { return kernel(x); }")
                .unwrap();
        let mut interp = Interp::new(program);
        interp.set_dispatcher(Box::new(Redirect));
        let mut env = ExecEnv::new();
        assert_eq!(
            interp.call("f", &[Value::Int(1)], &mut env).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            interp.call("f", &[Value::Int(2)], &mut env).unwrap(),
            Value::Int(222)
        );
        assert!(interp.program().contains("kernel_2"));
    }

    #[test]
    fn argument_count_mismatch() {
        let program = parse_program("int f(int x) { return x; }").unwrap();
        let mut interp = Interp::new(program);
        let err = interp.call("f", &[], &mut ExecEnv::new()).unwrap_err();
        assert!(err.to_string().contains("expects 1 arguments"));
    }

    #[test]
    fn string_equality_in_conditions() {
        let (out, _) = run(
            "int f() { if (\"a\" == \"a\") return 1; return 0; }",
            "f",
            &[],
        );
        assert_eq!(out, Value::Int(1));
    }

    #[test]
    fn runaway_recursion_is_caught() {
        let program = parse_program("int f(int x) { return f(x + 1); }").unwrap();
        let mut interp = Interp::new(program);
        interp.set_budget(None); // the depth guard must catch it, not the budget
        let err = interp
            .call("f", &[Value::Int(0)], &mut ExecEnv::new())
            .unwrap_err();
        assert!(err.to_string().contains("call depth"), "{err}");
        // the interpreter remains usable afterwards
        *interp.program_mut() = parse_program("int g() { return 7; }").unwrap();
        assert_eq!(
            interp.call("g", &[], &mut ExecEnv::new()).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn math_builtins_work_and_count_flops() {
        let (out, stats) = run(
            "double f(double x) { return sqrt(x * x) + fmax(x, 0.0) + fabs(-x); }",
            "f",
            &[Value::Float(3.0)],
        );
        assert_eq!(out, Value::Float(9.0));
        assert!(stats.flops >= 5);
    }

    #[test]
    fn builtins_are_shadowed_by_program_functions() {
        let (out, _) = run(
            "double sqrt(double x) { return 42.0; } double f() { return sqrt(9.0); }",
            "f",
            &[],
        );
        assert_eq!(out, Value::Float(42.0), "user definition wins");
    }

    #[test]
    fn builtin_domain_errors() {
        let program = parse_program("double f() { return log(0.0 - 1.0); }").unwrap();
        let mut interp = Interp::new(program);
        assert!(interp.call("f", &[], &mut ExecEnv::new()).is_err());
    }

    #[test]
    fn return_type_quantized() {
        let program = parse_program("float4 f() { return 1.03125; }").unwrap();
        let mut interp = Interp::new(program);
        let out = interp.call("f", &[], &mut ExecEnv::new()).unwrap();
        let Value::Float(v) = out else { panic!() };
        assert_ne!(v, 1.03125);
    }
}
