//! Shared operational semantics of mini-C: the numeric core used by
//! **both** execution engines.
//!
//! The tree-walking [`crate::interp::Interp`] and the bytecode VM
//! (`antarex-vm`) must agree bit-for-bit on every value, every cost unit
//! and every precision-weighted energy contribution. The only way to make
//! that a structural guarantee rather than a test-enforced hope is to
//! have exactly one implementation of the dynamic operations — binary
//! arithmetic, unary operators, math builtins, scalar coercion — that
//! both engines call. This module is that implementation; the engines
//! differ only in *how they walk the program*, never in *what an
//! operation does or costs*.
//!
//! All cost charges route through [`ExecStats::charge`]
//! (overflow-checked) and all flop counting through
//! [`ExecStats::count_flops`] (saturating count, single `f64` energy
//! addition), so overflow behaviour is engine-independent too.

use crate::ast::{BinOp, UnOp};
use crate::cost::{CostModel, ExecStats};
use crate::error::IrError;
use crate::types::Type;
use crate::value::Value;

/// Precision-energy weight of one flop computed under precision context
/// `prec_ctx` (mantissa bits of the destination): `(prec_ctx / 52)²`.
/// Multiplier energy grows roughly quadratically with operand width.
#[inline]
pub fn flop_unit(prec_ctx: u8) -> f64 {
    (f64::from(prec_ctx) / 52.0).powi(2)
}

/// Applies a binary operator with full cost/flop accounting.
///
/// Short-circuit `&&`/`||` are *not* handled here — they never evaluate
/// through this path (the engines branch before evaluating the right
/// operand) — and reaching them is a panic.
///
/// # Errors
///
/// [`IrError::Type`] on operand mismatches, [`IrError::Eval`] on division
/// by zero, [`IrError::CostOverflow`] when accounting overflows.
///
/// # Panics
///
/// Panics if called with [`BinOp::And`] or [`BinOp::Or`].
#[inline]
pub fn apply_binary(
    op: BinOp,
    l: Value,
    r: Value,
    model: &CostModel,
    prec_ctx: u8,
    stats: &mut ExecStats,
) -> Result<Value, IrError> {
    apply_binary_with(op, &l, &r, model, || flop_unit(prec_ctx), stats)
}

/// [`apply_binary`] with borrowed operands and a lazily computed flop
/// unit — the hot-path entry the bytecode VM uses (it caches
/// [`flop_unit`] alongside its precision context, so `unit` is a
/// constant closure there). The unit closure runs at most once, only
/// when the operation actually counts a flop, so the integer path pays
/// nothing for it. Semantics, charge order and error text are identical
/// to [`apply_binary`] — the wrapper *is* this function.
///
/// # Errors
///
/// [`IrError::Type`] on operand mismatches, [`IrError::Eval`] on division
/// by zero, [`IrError::CostOverflow`] when accounting overflows.
///
/// # Panics
///
/// Panics if called with [`BinOp::And`] or [`BinOp::Or`].
#[inline]
pub fn apply_binary_with(
    op: BinOp,
    l: &Value,
    r: &Value,
    model: &CostModel,
    unit: impl FnOnce() -> f64,
    stats: &mut ExecStats,
) -> Result<Value, IrError> {
    use BinOp::*;
    // operand-kind dispatch: the arms are mutually exclusive, so trying
    // the overwhelmingly common same-kind pairs first changes nothing
    // observable relative to the string/float/int priority order; the
    // mixed/error cases live out of line to keep this path small
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let cost = match op {
                Mul => model.int_mul,
                Div | Rem => model.int_div,
                _ => model.int_op,
            };
            stats.charge(cost)?;
            int_binary(op, *a, *b)
        }
        (Value::Float(a), Value::Float(b)) => float_binary(op, *a, *b, model, unit, stats),
        _ => apply_binary_mixed(op, l, r, model, unit, stats),
    }
}

/// The float arm of [`apply_binary_with`]: charge, count the flop, apply.
#[inline]
fn float_binary(
    op: BinOp,
    a: f64,
    b: f64,
    model: &CostModel,
    unit: impl FnOnce() -> f64,
    stats: &mut ExecStats,
) -> Result<Value, IrError> {
    use BinOp::*;
    let (cost, is_flop) = match op {
        Mul => (model.float_mul, true),
        Div => (model.float_div, true),
        Add | Sub => (model.float_op, true),
        _ => (model.float_op, false),
    };
    stats.charge(cost)?;
    if is_flop {
        stats.count_flops(1, unit());
    }
    match op {
        Add => Ok(Value::Float(a + b)),
        Sub => Ok(Value::Float(a - b)),
        Mul => Ok(Value::Float(a * b)),
        Div => {
            if b == 0.0 {
                Err(IrError::Eval("float division by zero".into()))
            } else {
                Ok(Value::Float(a / b))
            }
        }
        Rem => Err(IrError::Type("`%` requires integer operands".into())),
        Eq => Ok(Value::Int(i64::from(a == b))),
        Ne => Ok(Value::Int(i64::from(a != b))),
        Lt => Ok(Value::Int(i64::from(a < b))),
        Le => Ok(Value::Int(i64::from(a <= b))),
        Gt => Ok(Value::Int(i64::from(a > b))),
        Ge => Ok(Value::Int(i64::from(a >= b))),
        And | Or => unreachable!("handled before operand evaluation"),
    }
}

/// Mixed-kind and error cases of [`apply_binary_with`], out of line.
/// Same priority order as always: strings, float promotion, integers.
fn apply_binary_mixed(
    op: BinOp,
    l: &Value,
    r: &Value,
    model: &CostModel,
    unit: impl FnOnce() -> f64,
    stats: &mut ExecStats,
) -> Result<Value, IrError> {
    use BinOp::*;
    match (l, r) {
        // string equality for instrumentation predicates
        (Value::Str(a), Value::Str(b)) => {
            stats.charge(model.int_op)?;
            match op {
                Eq => Ok(Value::Int(i64::from(a == b))),
                Ne => Ok(Value::Int(i64::from(a != b))),
                _ => Err(IrError::Type(format!(
                    "operator {op} not defined on strings"
                ))),
            }
        }
        _ if l.is_float() || r.is_float() => {
            let a = l
                .as_f64()
                .ok_or_else(|| IrError::Type(format!("non-numeric operand {l}")))?;
            let b = r
                .as_f64()
                .ok_or_else(|| IrError::Type(format!("non-numeric operand {r}")))?;
            let (cost, is_flop) = match op {
                Mul => (model.float_mul, true),
                Div => (model.float_div, true),
                Add | Sub => (model.float_op, true),
                _ => (model.float_op, false),
            };
            stats.charge(cost)?;
            if is_flop {
                stats.count_flops(1, unit());
            }
            match op {
                Add => Ok(Value::Float(a + b)),
                Sub => Ok(Value::Float(a - b)),
                Mul => Ok(Value::Float(a * b)),
                Div => {
                    if b == 0.0 {
                        Err(IrError::Eval("float division by zero".into()))
                    } else {
                        Ok(Value::Float(a / b))
                    }
                }
                Rem => Err(IrError::Type("`%` requires integer operands".into())),
                Eq => Ok(Value::Int(i64::from(a == b))),
                Ne => Ok(Value::Int(i64::from(a != b))),
                Lt => Ok(Value::Int(i64::from(a < b))),
                Le => Ok(Value::Int(i64::from(a <= b))),
                Gt => Ok(Value::Int(i64::from(a > b))),
                Ge => Ok(Value::Int(i64::from(a >= b))),
                And | Or => unreachable!("handled before operand evaluation"),
            }
        }
        _ => {
            let a = l
                .as_i64()
                .ok_or_else(|| IrError::Type(format!("non-numeric operand {l}")))?;
            let b = r
                .as_i64()
                .ok_or_else(|| IrError::Type(format!("non-numeric operand {r}")))?;
            let cost = match op {
                Mul => model.int_mul,
                Div | Rem => model.int_div,
                _ => model.int_op,
            };
            stats.charge(cost)?;
            int_binary(op, a, b)
        }
    }
}

/// The integer arm of [`apply_binary_with`] (charges already applied).
#[inline]
fn int_binary(op: BinOp, a: i64, b: i64) -> Result<Value, IrError> {
    use BinOp::*;
    match op {
        Add => Ok(Value::Int(a.wrapping_add(b))),
        Sub => Ok(Value::Int(a.wrapping_sub(b))),
        Mul => Ok(Value::Int(a.wrapping_mul(b))),
        Div => {
            if b == 0 {
                Err(IrError::Eval("integer division by zero".into()))
            } else {
                Ok(Value::Int(a.wrapping_div(b)))
            }
        }
        Rem => {
            if b == 0 {
                Err(IrError::Eval("integer remainder by zero".into()))
            } else {
                Ok(Value::Int(a.wrapping_rem(b)))
            }
        }
        Eq => Ok(Value::Int(i64::from(a == b))),
        Ne => Ok(Value::Int(i64::from(a != b))),
        Lt => Ok(Value::Int(i64::from(a < b))),
        Le => Ok(Value::Int(i64::from(a <= b))),
        Gt => Ok(Value::Int(i64::from(a > b))),
        Ge => Ok(Value::Int(i64::from(a >= b))),
        And | Or => unreachable!("handled before operand evaluation"),
    }
}

/// Applies a unary operator with cost/flop accounting.
///
/// # Errors
///
/// [`IrError::Type`] when negating a non-number,
/// [`IrError::CostOverflow`] when accounting overflows.
#[inline]
pub fn apply_unary(
    op: UnOp,
    value: Value,
    model: &CostModel,
    prec_ctx: u8,
    stats: &mut ExecStats,
) -> Result<Value, IrError> {
    apply_unary_with(op, &value, model, || flop_unit(prec_ctx), stats)
}

/// [`apply_unary`] with a borrowed operand and a lazily computed flop
/// unit (see [`apply_binary_with`]). Semantics are identical.
///
/// # Errors
///
/// [`IrError::Type`] when negating a non-number,
/// [`IrError::CostOverflow`] when accounting overflows.
#[inline]
pub fn apply_unary_with(
    op: UnOp,
    value: &Value,
    model: &CostModel,
    unit: impl FnOnce() -> f64,
    stats: &mut ExecStats,
) -> Result<Value, IrError> {
    match op {
        UnOp::Neg => match value {
            Value::Int(v) => {
                stats.charge(model.int_op)?;
                Ok(Value::Int(-v))
            }
            Value::Float(v) => {
                stats.charge(model.float_op)?;
                stats.count_flops(1, unit());
                Ok(Value::Float(-v))
            }
            other => Err(IrError::Type(format!("cannot negate {other}"))),
        },
        UnOp::Not => {
            stats.charge(model.int_op)?;
            Ok(Value::Int(i64::from(!value.truthy())))
        }
    }
}

/// Built-in math intrinsics (`sqrt`, `exp`, `log`, `fabs`, `fmin`,
/// `fmax`, `pow`), evaluated natively with FP cost accounting. Returns
/// `Ok(None)` when `name` is not a builtin. User programs and host
/// registrations take precedence over builtins (the engines check those
/// first).
///
/// # Errors
///
/// [`IrError::Type`] on bad arguments, [`IrError::Eval`] on `log` of a
/// non-positive number, [`IrError::CostOverflow`] when accounting
/// overflows.
pub fn try_builtin(
    name: &str,
    args: &[Value],
    model: &CostModel,
    prec_ctx: u8,
    stats: &mut ExecStats,
) -> Result<Option<Value>, IrError> {
    let unary = |args: &[Value]| -> Result<f64, IrError> {
        match args {
            [v] => v
                .as_f64()
                .ok_or_else(|| IrError::Type(format!("`{name}` expects a number"))),
            _ => Err(IrError::Type(format!("`{name}` expects one argument"))),
        }
    };
    let binary = |args: &[Value]| -> Result<(f64, f64), IrError> {
        match args {
            [a, b] => Ok((
                a.as_f64()
                    .ok_or_else(|| IrError::Type(format!("`{name}` expects numbers")))?,
                b.as_f64()
                    .ok_or_else(|| IrError::Type(format!("`{name}` expects numbers")))?,
            )),
            _ => Err(IrError::Type(format!("`{name}` expects two arguments"))),
        }
    };
    let (value, cost, flops) = match name {
        "sqrt" => (unary(args)?.sqrt(), model.float_div, 1),
        "exp" => (unary(args)?.exp(), 2 * model.float_div, 4),
        "log" => {
            let x = unary(args)?;
            if x <= 0.0 {
                return Err(IrError::Eval("log of a non-positive number".into()));
            }
            (x.ln(), 2 * model.float_div, 4)
        }
        "fabs" => (unary(args)?.abs(), model.float_op, 1),
        "fmin" => {
            let (a, b) = binary(args)?;
            (a.min(b), model.float_op, 1)
        }
        "fmax" => {
            let (a, b) = binary(args)?;
            (a.max(b), model.float_op, 1)
        }
        "pow" => {
            let (a, b) = binary(args)?;
            (a.powf(b), 3 * model.float_div, 8)
        }
        _ => return Ok(None),
    };
    stats.charge(cost)?;
    stats.count_flops(flops, flop_unit(prec_ctx));
    Ok(Some(Value::Float(value)))
}

/// The zero/default value of a declared type.
#[inline]
pub fn zero_of(ty: Type) -> Value {
    match ty {
        Type::Int => Value::Int(0),
        Type::Str => Value::Str(String::new()),
        _ => Value::Float(0.0),
    }
}

/// Coerces a scalar value into a declared type (C-like implicit
/// conversion: float→int truncates, int→float widens).
///
/// # Errors
///
/// [`IrError::Type`] when no conversion exists (e.g. array into scalar).
#[inline]
pub fn coerce_scalar(value: Value, ty: Type) -> Result<Value, IrError> {
    match (ty, value) {
        (Type::Int, Value::Int(v)) => Ok(Value::Int(v)),
        (Type::Int, Value::Float(v)) => Ok(Value::Int(v as i64)),
        (t, Value::Int(v)) if t.is_float() => Ok(Value::Float(v as f64)),
        (t, Value::Float(v)) if t.is_float() => Ok(Value::Float(v)),
        (Type::Str, Value::Str(s)) => Ok(Value::Str(s)),
        (ty, other) => Err(IrError::Type(format!("cannot store {other} into {ty}"))),
    }
}

/// As [`coerce_scalar`], but lets arrays pass through untouched (used on
/// whole-array assignment).
///
/// # Errors
///
/// Propagates [`coerce_scalar`] errors for non-array values.
#[inline]
pub fn coerce_scalar_or_array(value: Value, ty: Type) -> Result<Value, IrError> {
    match value {
        Value::Array(_) => Ok(value),
        other => coerce_scalar(other, ty),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_unit_is_quadratic() {
        assert_eq!(flop_unit(52), 1.0);
        assert_eq!(flop_unit(26), 0.25);
    }

    #[test]
    fn binary_overflow_is_typed() {
        let model = CostModel {
            int_op: u64::MAX,
            ..CostModel::new()
        };
        let mut stats = ExecStats::new();
        stats.charge(10).unwrap();
        let err = apply_binary(
            BinOp::Add,
            Value::Int(1),
            Value::Int(2),
            &model,
            52,
            &mut stats,
        )
        .unwrap_err();
        assert_eq!(err, IrError::CostOverflow);
    }

    #[test]
    fn builtin_log_checks_domain_before_charging() {
        let mut stats = ExecStats::new();
        let err = try_builtin(
            "log",
            &[Value::Float(-1.0)],
            &CostModel::new(),
            52,
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, IrError::Eval(_)));
        assert_eq!(stats.cost, 0, "domain error precedes the charge");
    }

    #[test]
    fn coercions_match_c_semantics() {
        assert_eq!(
            coerce_scalar(Value::Float(3.9), Type::Int).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            coerce_scalar(Value::Int(2), Type::F64).unwrap(),
            Value::Float(2.0)
        );
        assert!(coerce_scalar(Value::Array(vec![]), Type::Int).is_err());
        assert_eq!(
            coerce_scalar_or_array(Value::Array(vec![Value::Int(1)]), Type::Int).unwrap(),
            Value::Array(vec![Value::Int(1)])
        );
    }
}
