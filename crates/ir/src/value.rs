//! Runtime values of the mini-C interpreter.

use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Floating-point number (stored as binary64; stores to narrower
    /// declarations are quantized by the interpreter).
    Float(f64),
    /// String (instrumentation).
    Str(String),
    /// Array of floats or ints, passed by reference semantics inside one
    /// call via cloning in/out (sufficient for our kernels).
    Array(Vec<Value>),
    /// Absence of a value (void call result).
    Unit,
}

impl Value {
    /// Interprets the value as a boolean (C semantics: non-zero is true).
    ///
    /// Strings and arrays are truthy when non-empty; `Unit` is false.
    #[inline]
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Array(a) => !a.is_empty(),
            Value::Unit => false,
        }
    }

    /// Numeric view as f64, if the value is numeric.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view, truncating floats, if the value is numeric.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Returns `true` if the value is a float (not an int).
    #[inline]
    pub fn is_float(&self) -> bool {
        matches!(self, Value::Float(_))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::Array(v.into_iter().map(Value::Float).collect())
    }
}

impl From<Vec<i64>> for Value {
    fn from(v: Vec<i64>) -> Self {
        Value::Array(v.into_iter().map(Value::Int).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Unit => write!(f, "()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_follows_c() {
        assert!(Value::Int(1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Float(0.5).truthy());
        assert!(!Value::Float(0.0).truthy());
        assert!(!Value::Unit.truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(!Value::Str(String::new()).truthy());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.9).as_i64(), Some(2));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn display_array() {
        let v = Value::from(vec![1i64, 2, 3]);
        assert_eq!(v.to_string(), "[1, 2, 3]");
    }
}
