//! Error type shared by the parser, analyses and interpreter.

use std::fmt;

/// Error produced while parsing, transforming or executing mini-C programs.
///
/// # Examples
///
/// ```
/// use antarex_ir::parse_program;
///
/// let err = parse_program("int f( {").unwrap_err();
/// assert!(err.to_string().contains("parse error"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// The source text failed to parse; carries the span of the offending
    /// token.
    Parse {
        /// 1-based line of the offending token.
        line: u32,
        /// 1-based column of the offending token.
        col: u32,
        /// 1-based exclusive end column of the offending token on `line`.
        /// Equal to `col` for point errors (e.g. end of input).
        end_col: u32,
        /// Human-readable description of what was expected.
        message: String,
    },
    /// A name (function, variable) was not found at runtime or analysis time.
    Unresolved(String),
    /// The interpreter hit a dynamic type mismatch.
    Type(String),
    /// The interpreter exceeded its configured work budget (runaway loop).
    BudgetExceeded {
        /// The configured limit in abstract cost units.
        limit: u64,
    },
    /// The cost counter itself overflowed `u64` — an adversarial cost
    /// model or loop bound tried to wrap the accounting. Raised by the
    /// checked accumulation in [`crate::cost::ExecStats::charge`], so both
    /// execution engines report it identically instead of silently
    /// wrapping the cycle counter.
    CostOverflow,
    /// Generic evaluation failure (division by zero, bad index, ...).
    Eval(String),
    /// A structural edit addressed a node path that does not exist.
    BadPath(String),
}

impl IrError {
    /// Convenience constructor for point parse errors (span of width zero).
    pub fn parse(line: u32, col: u32, message: impl Into<String>) -> Self {
        IrError::Parse {
            line,
            col,
            end_col: col,
            message: message.into(),
        }
    }

    /// Constructor for parse errors covering a token span
    /// `[col, end_col)` on `line`.
    pub fn parse_span(line: u32, col: u32, end_col: u32, message: impl Into<String>) -> Self {
        IrError::Parse {
            line,
            col,
            end_col,
            message: message.into(),
        }
    }

    /// The source span of a parse error as `(line, col, end_col)`, if this
    /// is a parse error.
    pub fn span(&self) -> Option<(u32, u32, u32)> {
        match self {
            IrError::Parse {
                line, col, end_col, ..
            } => Some((*line, *col, *end_col)),
            _ => None,
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Parse {
                line,
                col,
                end_col,
                message,
            } => {
                if *end_col > col + 1 {
                    write!(f, "parse error at {line}:{col}-{end_col}: {message}")
                } else {
                    write!(f, "parse error at {line}:{col}: {message}")
                }
            }
            IrError::Unresolved(name) => write!(f, "unresolved name `{name}`"),
            IrError::Type(msg) => write!(f, "type error: {msg}"),
            IrError::BudgetExceeded { limit } => {
                write!(f, "execution budget of {limit} cost units exceeded")
            }
            IrError::CostOverflow => {
                write!(
                    f,
                    "cost counter overflowed (adversarial cost model or loop bound)"
                )
            }
            IrError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            IrError::BadPath(msg) => write!(f, "invalid node path: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = IrError::parse(3, 7, "expected `)`");
        assert_eq!(err.to_string(), "parse error at 3:7: expected `)`");
        let err = IrError::Unresolved("kernel".into());
        assert_eq!(err.to_string(), "unresolved name `kernel`");
    }

    #[test]
    fn spanned_errors_render_the_range() {
        let err = IrError::parse_span(2, 5, 9, "expected type");
        assert_eq!(err.to_string(), "parse error at 2:5-9: expected type");
        assert_eq!(err.span(), Some((2, 5, 9)));
        assert_eq!(IrError::CostOverflow.span(), None);
    }

    #[test]
    fn point_span_renders_like_before() {
        // a one-column token renders without the range suffix
        let err = IrError::parse_span(1, 4, 5, "expected `;`");
        assert_eq!(err.to_string(), "parse error at 1:4: expected `;`");
    }

    #[test]
    fn cost_overflow_displays() {
        assert!(IrError::CostOverflow.to_string().contains("overflow"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<IrError>();
    }
}
