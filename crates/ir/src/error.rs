//! Error type shared by the parser, analyses and interpreter.

use std::fmt;

/// Error produced while parsing, transforming or executing mini-C programs.
///
/// # Examples
///
/// ```
/// use antarex_ir::parse_program;
///
/// let err = parse_program("int f( {").unwrap_err();
/// assert!(err.to_string().contains("parse error"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// The source text failed to parse; carries line/column and a message.
    Parse {
        /// 1-based line of the offending token.
        line: u32,
        /// 1-based column of the offending token.
        col: u32,
        /// Human-readable description of what was expected.
        message: String,
    },
    /// A name (function, variable) was not found at runtime or analysis time.
    Unresolved(String),
    /// The interpreter hit a dynamic type mismatch.
    Type(String),
    /// The interpreter exceeded its configured work budget (runaway loop).
    BudgetExceeded {
        /// The configured limit in abstract cost units.
        limit: u64,
    },
    /// Generic evaluation failure (division by zero, bad index, ...).
    Eval(String),
    /// A structural edit addressed a node path that does not exist.
    BadPath(String),
}

impl IrError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: u32, col: u32, message: impl Into<String>) -> Self {
        IrError::Parse {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            IrError::Unresolved(name) => write!(f, "unresolved name `{name}`"),
            IrError::Type(msg) => write!(f, "type error: {msg}"),
            IrError::BudgetExceeded { limit } => {
                write!(f, "execution budget of {limit} cost units exceeded")
            }
            IrError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            IrError::BadPath(msg) => write!(f, "invalid node path: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = IrError::parse(3, 7, "expected `)`");
        assert_eq!(err.to_string(), "parse error at 3:7: expected `)`");
        let err = IrError::Unresolved("kernel".into());
        assert_eq!(err.to_string(), "unresolved name `kernel`");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<IrError>();
    }
}
