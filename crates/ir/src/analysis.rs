//! Static analyses over the AST backing weaver conditions.
//!
//! The paper's `UnrollInnermostLoops` aspect (Fig. 3) guards its action with
//! `$loop.isInnermost && $loop.numIter <= threshold`; this module provides
//! exactly those attributes: [`trip_count`], [`is_innermost`], plus the call
//! and loop inventories used by `select` statements.

use crate::ast::{BinOp, Block, Expr, Stmt};
use crate::path::NodePath;

/// Statically-known trip count of a counted `for` loop.
///
/// Recognizes the canonical shape the mini-C parser produces:
/// `for (i = <const>; i <op> <const>; i = i +/- <const>)` where `<op>` is one
/// of `<`, `<=`, `>`, `>=`, `!=`. Returns `None` for loops whose bounds or
/// stride are not compile-time constants (e.g. `i < n`), which is what makes
/// runtime specialization (paper Fig. 4) valuable: substituting a constant
/// for `n` turns `None` into `Some(...)` and unlocks full unrolling.
///
/// # Examples
///
/// ```
/// use antarex_ir::{parse_program, analysis::trip_count};
///
/// # fn main() -> Result<(), antarex_ir::IrError> {
/// let program = parse_program(
///     "void f(int n) {
///          for (int i = 0; i < 8; i++) { }
///          for (int j = 0; j < n; j++) { }
///      }",
/// )?;
/// let body = &program.function("f").unwrap().body;
/// assert_eq!(trip_count(&body[0]), Some(8));
/// assert_eq!(trip_count(&body[1]), None);
/// # Ok(())
/// # }
/// ```
pub fn trip_count(stmt: &Stmt) -> Option<u64> {
    let Stmt::For {
        var,
        init,
        cond,
        step,
        ..
    } = stmt
    else {
        return None;
    };
    let start = init.as_const_int()?;
    let (op, bound) = match cond {
        Expr::Binary(op, lhs, rhs) => match (&**lhs, &**rhs) {
            (Expr::Var(v), _) if v == var => (*op, rhs.as_const_int()?),
            (_, Expr::Var(v)) if v == var => (flip(*op)?, lhs.as_const_int()?),
            _ => return None,
        },
        _ => return None,
    };
    let stride = match step {
        Expr::Binary(BinOp::Add, lhs, rhs) => match (&**lhs, &**rhs) {
            (Expr::Var(v), _) if v == var => rhs.as_const_int()?,
            (_, Expr::Var(v)) if v == var => lhs.as_const_int()?,
            _ => return None,
        },
        Expr::Binary(BinOp::Sub, lhs, rhs) => match (&**lhs, &**rhs) {
            (Expr::Var(v), _) if v == var => -(rhs.as_const_int()?),
            _ => return None,
        },
        _ => return None,
    };
    if stride == 0 {
        return None;
    }
    let count = match op {
        BinOp::Lt if stride > 0 => ceil_div(bound - start, stride),
        BinOp::Le if stride > 0 => ceil_div(bound - start + 1, stride),
        BinOp::Gt if stride < 0 => ceil_div(start - bound, -stride),
        BinOp::Ge if stride < 0 => ceil_div(start - bound + 1, -stride),
        BinOp::Ne => {
            let span = bound - start;
            if span % stride != 0 || span / stride < 0 {
                return None; // never terminates exactly
            }
            span / stride
        }
        _ => return None, // direction disagrees with stride: 0 or infinite
    };
    u64::try_from(count.max(0)).ok()
}

fn ceil_div(num: i64, den: i64) -> i64 {
    debug_assert!(den > 0);
    if num <= 0 {
        0
    } else {
        (num + den - 1) / den
    }
}

fn flip(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        BinOp::Eq => BinOp::Eq,
        BinOp::Ne => BinOp::Ne,
        _ => return None,
    })
}

/// Returns `true` if the loop statement contains no nested loops.
///
/// Non-loop statements are vacuously *not* innermost loops (returns `false`).
pub fn is_innermost(stmt: &Stmt) -> bool {
    if !stmt.is_loop() {
        return false;
    }
    !contains_loop_in_children(stmt)
}

fn contains_loop_in_children(stmt: &Stmt) -> bool {
    stmt.child_blocks().into_iter().any(|block| {
        block
            .iter()
            .any(|s| s.is_loop() || contains_loop_in_children(s))
    })
}

/// A function call site discovered inside a statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSite {
    /// Path to the statement containing the call.
    pub path: NodePath,
    /// Callee name.
    pub callee: String,
    /// Argument expressions at the call.
    pub args: Vec<Expr>,
}

/// Lists every call site in a body, pre-order by statement.
///
/// A statement containing several calls yields several entries (same path).
pub fn call_sites(body: &Block) -> Vec<CallSite> {
    let mut sites = Vec::new();
    for (path, stmt) in NodePath::enumerate(body) {
        stmt.own_exprs(&mut |expr| {
            expr.walk(&mut |e| {
                if let Expr::Call(name, args) = e {
                    sites.push(CallSite {
                        path: path.clone(),
                        callee: name.clone(),
                        args: args.clone(),
                    });
                }
            });
        });
    }
    sites
}

/// Lists paths to every loop statement in a body, pre-order.
pub fn loops(body: &Block) -> Vec<(NodePath, &Stmt)> {
    NodePath::enumerate(body)
        .into_iter()
        .filter(|(_, stmt)| stmt.is_loop())
        .collect()
}

/// Names of variables read anywhere in a body (conservative superset).
pub fn read_variables(body: &Block) -> Vec<String> {
    let mut names = Vec::new();
    for (_, stmt) in NodePath::enumerate(body) {
        stmt.own_exprs(&mut |expr| {
            expr.walk(&mut |e| {
                if let Expr::Var(name) = e {
                    if !names.contains(name) {
                        names.push(name.clone());
                    }
                }
            });
        });
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn loop_of(src: &str) -> Stmt {
        let program = parse_program(&format!("void f(int n) {{ {src} }}")).unwrap();
        program.function("f").unwrap().body[0].clone()
    }

    #[test]
    fn trip_count_canonical_shapes() {
        assert_eq!(
            trip_count(&loop_of("for (int i = 0; i < 8; i++) {}")),
            Some(8)
        );
        assert_eq!(
            trip_count(&loop_of("for (int i = 0; i <= 8; i++) {}")),
            Some(9)
        );
        assert_eq!(
            trip_count(&loop_of("for (int i = 8; i > 0; i--) {}")),
            Some(8)
        );
        assert_eq!(
            trip_count(&loop_of("for (int i = 8; i >= 0; i--) {}")),
            Some(9)
        );
        assert_eq!(
            trip_count(&loop_of("for (int i = 0; i < 7; i += 2) {}")),
            Some(4)
        );
        assert_eq!(
            trip_count(&loop_of("for (int i = 0; i != 6; i += 3) {}")),
            Some(2)
        );
        assert_eq!(
            trip_count(&loop_of("for (int i = 0; 8 > i; i++) {}")),
            Some(8)
        );
    }

    #[test]
    fn trip_count_zero_and_degenerate() {
        assert_eq!(
            trip_count(&loop_of("for (int i = 5; i < 5; i++) {}")),
            Some(0)
        );
        assert_eq!(
            trip_count(&loop_of("for (int i = 9; i < 5; i++) {}")),
            Some(0)
        );
        // non-exact != never terminates
        assert_eq!(
            trip_count(&loop_of("for (int i = 0; i != 5; i += 2) {}")),
            None
        );
        // direction mismatch
        assert_eq!(trip_count(&loop_of("for (int i = 0; i > 5; i++) {}")), None);
    }

    #[test]
    fn trip_count_dynamic_bound_is_unknown() {
        assert_eq!(trip_count(&loop_of("for (int i = 0; i < n; i++) {}")), None);
        assert_eq!(trip_count(&loop_of("for (int i = n; i < 8; i++) {}")), None);
    }

    #[test]
    fn trip_count_ignores_non_loops() {
        assert_eq!(trip_count(&Stmt::Return(None)), None);
        assert_eq!(trip_count(&loop_of("while (n > 0) { n--; }")), None);
    }

    #[test]
    fn innermost_detection() {
        let nested =
            loop_of("for (int i = 0; i < 4; i++) { for (int j = 0; j < 4; j++) { n = n + 1; } }");
        assert!(!is_innermost(&nested));
        match &nested {
            Stmt::For { body, .. } => assert!(is_innermost(&body[0])),
            _ => unreachable!(),
        }
        // while counts as a loop for nesting
        let with_while = loop_of("for (int i = 0; i < 4; i++) { while (n > 0) { n--; } }");
        assert!(!is_innermost(&with_while));
        assert!(!is_innermost(&Stmt::Return(None)));
    }

    #[test]
    fn innermost_sees_through_ifs() {
        let hidden = loop_of(
            "for (int i = 0; i < 4; i++) { if (n > 0) { for (int j = 0; j < 2; j++) {} } }",
        );
        assert!(!is_innermost(&hidden));
    }

    #[test]
    fn call_sites_found_everywhere() {
        let program = parse_program(
            "void f(int n) {
                 g(n);
                 if (h(n) > 0) { g(n + 1); }
                 for (int i = 0; i < n; i++) { g(i); }
                 int x = g(2) + g(3);
             }",
        )
        .unwrap();
        let sites = call_sites(&program.function("f").unwrap().body);
        let callees: Vec<&str> = sites.iter().map(|s| s.callee.as_str()).collect();
        assert_eq!(callees, vec!["g", "h", "g", "g", "g", "g"]);
    }

    #[test]
    fn read_variables_unique_in_order() {
        let program = parse_program("void f(int n) { int x = n + n; int y = x * n; }").unwrap();
        assert_eq!(
            read_variables(&program.function("f").unwrap().body),
            vec!["n".to_string(), "x".to_string()]
        );
    }

    #[test]
    fn loops_inventory() {
        let program = parse_program(
            "void f(int n) { for (int i = 0; i < 2; i++) { while (n > 0) { n--; } } }",
        )
        .unwrap();
        let found = loops(&program.function("f").unwrap().body);
        assert_eq!(found.len(), 2);
    }
}
