//! # antarex-ir — mini-C intermediate representation
//!
//! The ANTAREX tool flow (Silvano et al., DATE 2016) weaves aspect-oriented
//! strategies into C/C++ applications. This crate provides the substrate the
//! rest of the workspace weaves into: a small C-like language with
//!
//! * an [`ast`] (AST) for expressions, statements, functions and programs,
//! * a [`parser`] for a C subset so applications can be written as text,
//! * a [pretty-printer](printer) producing C-like source back,
//! * a [join-point model](joinpoint) (functions, loops, calls, arguments)
//!   matching what the LARA-style DSL selects over,
//! * [static analyses](analysis) (trip counts, innermost-loop detection,
//!   constant expressions) backing weaver conditions such as
//!   `$loop.isInnermost && $loop.numIter <= threshold`, and
//! * a cost-accounting [interpreter](interp) so woven programs actually run
//!   and the effect of every transformation (instrumentation, unrolling,
//!   specialization, reduced precision) is observable as work, FLOPs and
//!   simulated energy,
//! * the shared [operational core](ops) (arithmetic, builtins, coercions
//!   with overflow-checked cost accounting) and the [`Executor`] trait,
//!   which let the bytecode VM in `antarex-vm` run the same programs
//!   bit-identically to the interpreter.
//!
//! # Examples
//!
//! ```
//! use antarex_ir::{parse_program, interp::{ExecEnv, Interp}, value::Value};
//!
//! # fn main() -> Result<(), antarex_ir::IrError> {
//! let program = parse_program("int square(int x) { return x * x; }")?;
//! let mut interp = Interp::new(program);
//! let out = interp.call("square", &[Value::Int(7)], &mut ExecEnv::default())?;
//! assert_eq!(out, Value::Int(49));
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod ast;
pub mod cost;
pub mod error;
pub mod exec;
pub mod interp;
pub mod joinpoint;
pub mod ops;
pub mod parser;
pub mod path;
pub mod printer;
pub mod types;
pub mod value;

pub use ast::{BinOp, Block, Expr, Function, LValue, Param, Program, Stmt, UnOp};
pub use error::IrError;
pub use exec::Executor;
pub use parser::{parse_expr, parse_program, parse_stmt, parse_stmts};
pub use path::NodePath;
pub use types::Type;
