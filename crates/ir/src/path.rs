//! Structural addressing of statements inside a function body.
//!
//! A [`NodePath`] identifies a statement by the route taken from the function
//! body to reach it: alternating *statement index* and *block index* steps.
//! The weaver uses paths to insert instrumentation before a call or replace a
//! loop with its unrolled form, without needing global node identifiers.

use crate::ast::{Block, Function, Stmt};
use crate::error::IrError;
use std::fmt;

/// One step of a [`NodePath`]: which statement in the current block, and —
/// when descending further — which child block of that statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathStep {
    /// Index of the statement within the current block.
    pub stmt: usize,
    /// Index of the child block to descend into (0 = then/body, 1 = else).
    /// Only meaningful for non-final steps.
    pub block: usize,
}

/// A structural path from a function body to one of its statements.
///
/// The final step's `block` field is ignored; by convention it is 0.
///
/// # Examples
///
/// ```
/// use antarex_ir::{parse_program, NodePath};
///
/// # fn main() -> Result<(), antarex_ir::IrError> {
/// let program = parse_program(
///     "void f() { int x = 0; for (int i = 0; i < 4; i = i + 1) { x = x + i; } }",
/// )?;
/// let f = program.function("f").unwrap();
/// // The assignment inside the loop: statement 1 (the for), block 0, statement 0.
/// let path = NodePath::root(1).child(0, 0);
/// let stmt = path.resolve(&f.body)?;
/// assert!(matches!(stmt, antarex_ir::Stmt::Assign { .. }));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodePath {
    steps: Vec<PathStep>,
}

impl NodePath {
    /// Path to a top-level statement of the body.
    pub fn root(stmt: usize) -> Self {
        NodePath {
            steps: vec![PathStep { stmt, block: 0 }],
        }
    }

    /// Extends the path: descend into child block `block` of the current
    /// statement, then select statement `stmt` there.
    pub fn child(mut self, block: usize, stmt: usize) -> Self {
        if let Some(last) = self.steps.last_mut() {
            last.block = block;
        }
        self.steps.push(PathStep { stmt, block: 0 });
        self
    }

    /// Number of steps (nesting depth + 1). A path is never empty except for
    /// the default value, which addresses nothing.
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// The steps of the path.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// Index of the addressed statement within its innermost block.
    ///
    /// # Panics
    ///
    /// Panics if the path is empty.
    pub fn leaf_index(&self) -> usize {
        self.steps.last().expect("empty path").stmt
    }

    /// Path to the parent *block*'s owning statement, or `None` for
    /// top-level statements.
    pub fn parent(&self) -> Option<NodePath> {
        if self.steps.len() <= 1 {
            return None;
        }
        let mut steps = self.steps.clone();
        steps.pop();
        if let Some(last) = steps.last_mut() {
            last.block = 0; // leaf block index is canonically 0
        }
        Some(NodePath { steps })
    }

    /// Returns `true` if `self` addresses a statement inside the statement
    /// addressed by `other` (strictly deeper).
    pub fn is_inside(&self, other: &NodePath) -> bool {
        if self.steps.len() <= other.steps.len() {
            return false;
        }
        other.steps.iter().enumerate().all(|(i, step)| {
            self.steps[i].stmt == step.stmt
                && (i + 1 == other.steps.len() || self.steps[i].block == step.block)
        })
    }

    /// Resolves the path to a statement reference within `body`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::BadPath`] if any step is out of bounds.
    pub fn resolve<'a>(&self, body: &'a Block) -> Result<&'a Stmt, IrError> {
        let mut block = body;
        for (i, step) in self.steps.iter().enumerate() {
            let stmt = block.get(step.stmt).ok_or_else(|| {
                IrError::BadPath(format!("statement index {} out of bounds", step.stmt))
            })?;
            if i + 1 == self.steps.len() {
                return Ok(stmt);
            }
            let blocks = stmt.child_blocks();
            block = blocks.get(step.block).copied().ok_or_else(|| {
                IrError::BadPath(format!("block index {} out of bounds", step.block))
            })?;
        }
        Err(IrError::BadPath("empty path".into()))
    }

    /// Resolves the path to the *block* containing the addressed statement,
    /// plus the statement's index in it. This is what insertion needs.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::BadPath`] if any step is out of bounds. The leaf
    /// index may equal the block length (one-past-the-end), which is valid
    /// for appending.
    pub fn resolve_block_mut<'a>(
        &self,
        body: &'a mut Block,
    ) -> Result<(&'a mut Block, usize), IrError> {
        let mut block = body;
        let last = self
            .steps
            .len()
            .checked_sub(1)
            .ok_or_else(|| IrError::BadPath("empty path".into()))?;
        for (i, step) in self.steps.iter().enumerate() {
            if i == last {
                if step.stmt > block.len() {
                    return Err(IrError::BadPath(format!(
                        "statement index {} out of bounds (len {})",
                        step.stmt,
                        block.len()
                    )));
                }
                return Ok((block, step.stmt));
            }
            let len = block.len();
            let stmt = block.get_mut(step.stmt).ok_or_else(|| {
                IrError::BadPath(format!(
                    "statement index {} out of bounds (len {len})",
                    step.stmt
                ))
            })?;
            let mut blocks = stmt.child_blocks_mut();
            let nblocks = blocks.len();
            block = blocks.drain(..).nth(step.block).ok_or_else(|| {
                IrError::BadPath(format!(
                    "block index {} out of bounds ({nblocks} blocks)",
                    step.block
                ))
            })?;
        }
        unreachable!("loop returns at last step")
    }

    /// Enumerates paths to every statement in `body`, pre-order.
    pub fn enumerate(body: &Block) -> Vec<(NodePath, &Stmt)> {
        let mut out = Vec::new();
        fn rec<'a>(block: &'a Block, prefix: &NodePath, out: &mut Vec<(NodePath, &'a Stmt)>) {
            for (i, stmt) in block.iter().enumerate() {
                let path = if prefix.steps.is_empty() {
                    NodePath::root(i)
                } else {
                    let mut p = prefix.clone();
                    p.steps.push(PathStep { stmt: i, block: 0 });
                    p
                };
                out.push((path.clone(), stmt));
                for (bi, child) in stmt.child_blocks().into_iter().enumerate() {
                    let mut down = path.clone();
                    down.steps.last_mut().expect("non-empty").block = bi;
                    rec(child, &down, out);
                }
            }
        }
        rec(body, &NodePath::default(), &mut out);
        out
    }

    /// Enumerates paths to every statement of a function body, pre-order.
    pub fn enumerate_function(function: &Function) -> Vec<(NodePath, &Stmt)> {
        Self::enumerate(&function.body)
    }
}

impl fmt::Display for NodePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, ".{}", step.stmt)?;
            } else {
                write!(f, "{}", step.stmt)?;
            }
            if i + 1 < self.steps.len() {
                write!(f, "/{}", step.block)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Stmt};

    fn nested_body() -> Block {
        vec![
            Stmt::Return(None),
            Stmt::If {
                cond: Expr::Int(1),
                then_branch: vec![Stmt::ExprStmt(Expr::Int(10))],
                else_branch: Some(vec![Stmt::ExprStmt(Expr::Int(20)), Stmt::Return(None)]),
            },
        ]
    }

    #[test]
    fn resolve_top_level() {
        let body = nested_body();
        assert!(matches!(
            NodePath::root(0).resolve(&body),
            Ok(Stmt::Return(None))
        ));
        assert!(matches!(
            NodePath::root(1).resolve(&body),
            Ok(Stmt::If { .. })
        ));
        assert!(NodePath::root(2).resolve(&body).is_err());
    }

    #[test]
    fn resolve_nested_else_branch() {
        let body = nested_body();
        let stmt = NodePath::root(1).child(1, 0).resolve(&body).unwrap();
        assert_eq!(stmt, &Stmt::ExprStmt(Expr::Int(20)));
    }

    #[test]
    fn resolve_block_mut_allows_append_position() {
        let mut body = nested_body();
        let (block, idx) = NodePath::root(1)
            .child(0, 1) // one past the end of the then-branch
            .resolve_block_mut(&mut body)
            .unwrap();
        assert_eq!(idx, 1);
        assert_eq!(block.len(), 1);
        block.insert(idx, Stmt::Return(None));
        let then_len = match &body[1] {
            Stmt::If { then_branch, .. } => then_branch.len(),
            _ => unreachable!(),
        };
        assert_eq!(then_len, 2);
    }

    #[test]
    fn enumerate_is_preorder_and_complete() {
        let body = nested_body();
        let all = NodePath::enumerate(&body);
        // return, if, then-expr, else-expr, else-return
        assert_eq!(all.len(), 5);
        assert!(matches!(all[0].1, Stmt::Return(None)));
        assert!(matches!(all[1].1, Stmt::If { .. }));
        // every enumerated path resolves to the same statement
        for (path, stmt) in &all {
            assert_eq!(path.resolve(&body).unwrap(), *stmt);
        }
    }

    #[test]
    fn is_inside_relation() {
        let outer = NodePath::root(1);
        let inner = NodePath::root(1).child(1, 0);
        assert!(inner.is_inside(&outer));
        assert!(!outer.is_inside(&inner));
        assert!(!outer.is_inside(&outer));
        let sibling = NodePath::root(0);
        assert!(!inner.is_inside(&sibling));
    }

    #[test]
    fn parent_of_nested_is_owner() {
        let inner = NodePath::root(1).child(1, 0);
        assert_eq!(inner.parent(), Some(NodePath::root(1)));
        assert_eq!(NodePath::root(0).parent(), None);
    }

    #[test]
    fn display_round_trip_shape() {
        let path = NodePath::root(2).child(1, 3);
        assert_eq!(path.to_string(), "2/1.3");
    }
}
