//! Join-point model: the program points the ANTAREX DSL selects over.
//!
//! LARA aspects name join points like `fCall`, `$func.loop{type=='for'}`, or
//! `fCall{'kernel'}.arg{'size'}`. This module extracts those points from a
//! [`Program`] together with the static attributes aspects query (`name`,
//! `location`, `argList`, `isInnermost`, `numIter`, ...). Dynamic attributes
//! such as `runtimeValue` are bound later, during dynamic weaving.

use crate::analysis;
use crate::ast::{Expr, Program, Stmt};
use crate::path::NodePath;
use crate::printer::print_expr;
use std::fmt;

/// Kind of loop a [`JoinPoint::Loop`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopKind {
    /// Counted `for` loop.
    For,
    /// Pre-test `while` loop.
    While,
}

impl fmt::Display for LoopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LoopKind::For => "for",
            LoopKind::While => "while",
        })
    }
}

/// A static attribute value exposed by a join point.
#[derive(Debug, Clone, PartialEq)]
pub enum JpAttr {
    /// Integer attribute (e.g. `numIter`).
    Int(i64),
    /// Boolean attribute (e.g. `isInnermost`).
    Bool(bool),
    /// String attribute (e.g. `name`, `location`).
    Str(String),
    /// A source-code fragment (e.g. `argList`); templates splice it raw
    /// rather than as a quoted string literal.
    Code(String),
}

impl fmt::Display for JpAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JpAttr::Int(v) => write!(f, "{v}"),
            JpAttr::Bool(v) => write!(f, "{v}"),
            JpAttr::Str(s) | JpAttr::Code(s) => write!(f, "{s}"),
        }
    }
}

/// A selectable program point.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinPoint {
    /// A function definition.
    Function {
        /// Function name.
        name: String,
    },
    /// A loop statement.
    Loop {
        /// Enclosing function.
        function: String,
        /// Structural path of the loop statement.
        path: NodePath,
        /// `for` or `while`.
        kind: LoopKind,
        /// Statically-known trip count, if any.
        num_iter: Option<u64>,
        /// Whether the loop contains no nested loops.
        is_innermost: bool,
    },
    /// A call site.
    Call {
        /// Enclosing function.
        function: String,
        /// Path of the statement containing the call.
        path: NodePath,
        /// Callee name.
        callee: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// An argument at a specific call site, matched by the *formal* name of
    /// the callee's parameter (as in `fCall{'kernel'}.arg{'size'}`).
    Arg {
        /// Enclosing function of the call.
        function: String,
        /// Path of the statement containing the call.
        path: NodePath,
        /// Callee name.
        callee: String,
        /// Position of the argument.
        index: usize,
        /// Formal parameter name in the callee.
        name: String,
    },
}

impl JoinPoint {
    /// Join-point kind name as used in `select` statements.
    pub fn kind_name(&self) -> &'static str {
        match self {
            JoinPoint::Function { .. } => "function",
            JoinPoint::Loop { .. } => "loop",
            JoinPoint::Call { .. } => "fCall",
            JoinPoint::Arg { .. } => "arg",
        }
    }

    /// Name of the function this join point lives in (or is).
    pub fn enclosing_function(&self) -> &str {
        match self {
            JoinPoint::Function { name } => name,
            JoinPoint::Loop { function, .. }
            | JoinPoint::Call { function, .. }
            | JoinPoint::Arg { function, .. } => function,
        }
    }

    /// Structural path for statement-level join points.
    pub fn path(&self) -> Option<&NodePath> {
        match self {
            JoinPoint::Function { .. } => None,
            JoinPoint::Loop { path, .. }
            | JoinPoint::Call { path, .. }
            | JoinPoint::Arg { path, .. } => Some(path),
        }
    }

    /// Looks up a static attribute by its LARA name.
    ///
    /// Supported attributes:
    ///
    /// | kind | attributes |
    /// |------|------------|
    /// | function | `name` |
    /// | loop | `type`, `isInnermost`, `numIter` (absent when unknown), `function` |
    /// | fCall | `name`, `location`, `argList`, `numArgs`, `function` |
    /// | arg | `name`, `index`, `callee`, `function` |
    pub fn attribute(&self, attr: &str) -> Option<JpAttr> {
        match self {
            JoinPoint::Function { name } => match attr {
                "name" => Some(JpAttr::Str(name.clone())),
                _ => None,
            },
            JoinPoint::Loop {
                function,
                kind,
                num_iter,
                is_innermost,
                ..
            } => match attr {
                "type" => Some(JpAttr::Str(kind.to_string())),
                "isInnermost" => Some(JpAttr::Bool(*is_innermost)),
                "numIter" => num_iter.map(|n| JpAttr::Int(n as i64)),
                "function" => Some(JpAttr::Str(function.clone())),
                _ => None,
            },
            JoinPoint::Call {
                function,
                path,
                callee,
                args,
            } => match attr {
                "name" => Some(JpAttr::Str(callee.clone())),
                "location" => Some(JpAttr::Str(format!("{function}:{path}"))),
                "argList" => {
                    let list: Vec<String> = args.iter().map(print_expr).collect();
                    Some(JpAttr::Code(list.join(", ")))
                }
                "numArgs" => Some(JpAttr::Int(args.len() as i64)),
                "function" => Some(JpAttr::Str(function.clone())),
                _ => None,
            },
            JoinPoint::Arg {
                function,
                callee,
                index,
                name,
                ..
            } => match attr {
                "name" => Some(JpAttr::Str(name.clone())),
                "index" => Some(JpAttr::Int(*index as i64)),
                "callee" => Some(JpAttr::Str(callee.clone())),
                "function" => Some(JpAttr::Str(function.clone())),
                _ => None,
            },
        }
    }
}

/// Collects all join points of a program: every function, its loops, its
/// call sites, and every call argument whose formal name is resolvable.
pub fn collect_join_points(program: &Program) -> Vec<JoinPoint> {
    let mut points = Vec::new();
    for function in program.iter() {
        points.push(JoinPoint::Function {
            name: function.name.clone(),
        });
        for (path, stmt) in NodePath::enumerate(&function.body) {
            if let Stmt::For { .. } | Stmt::While { .. } = stmt {
                points.push(JoinPoint::Loop {
                    function: function.name.clone(),
                    path: path.clone(),
                    kind: if matches!(stmt, Stmt::For { .. }) {
                        LoopKind::For
                    } else {
                        LoopKind::While
                    },
                    num_iter: analysis::trip_count(stmt),
                    is_innermost: analysis::is_innermost(stmt),
                });
            }
        }
        for site in analysis::call_sites(&function.body) {
            points.push(JoinPoint::Call {
                function: function.name.clone(),
                path: site.path.clone(),
                callee: site.callee.clone(),
                args: site.args.clone(),
            });
            if let Some(callee) = program.function(&site.callee) {
                for (index, param) in callee.params.iter().enumerate() {
                    if index < site.args.len() {
                        points.push(JoinPoint::Arg {
                            function: function.name.clone(),
                            path: site.path.clone(),
                            callee: site.callee.clone(),
                            index,
                            name: param.name.clone(),
                        });
                    }
                }
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn sample() -> Program {
        parse_program(
            "double kernel(double a[], int size) {
                 double s = 0.0;
                 for (int i = 0; i < size; i++) { s += a[i]; }
                 return s;
             }
             void main_loop(double buf[]) {
                 for (int r = 0; r < 10; r++) {
                     kernel(buf, 64);
                 }
             }",
        )
        .unwrap()
    }

    #[test]
    fn collects_functions_loops_calls_args() {
        let points = collect_join_points(&sample());
        let kinds: Vec<&str> = points.iter().map(|p| p.kind_name()).collect();
        assert_eq!(kinds.iter().filter(|k| **k == "function").count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == "loop").count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == "fCall").count(), 1);
        // kernel(double a[], int size) called with 2 args -> 2 arg points
        assert_eq!(kinds.iter().filter(|k| **k == "arg").count(), 2);
    }

    #[test]
    fn loop_attributes() {
        let points = collect_join_points(&sample());
        let outer = points
            .iter()
            .find(|p| matches!(p, JoinPoint::Loop { function, .. } if function == "main_loop"))
            .unwrap();
        assert_eq!(outer.attribute("type"), Some(JpAttr::Str("for".into())));
        assert_eq!(outer.attribute("numIter"), Some(JpAttr::Int(10)));
        assert_eq!(outer.attribute("isInnermost"), Some(JpAttr::Bool(true)));
        let inner = points
            .iter()
            .find(|p| matches!(p, JoinPoint::Loop { function, .. } if function == "kernel"))
            .unwrap();
        // bound is `size`, dynamic
        assert_eq!(inner.attribute("numIter"), None);
    }

    #[test]
    fn call_attributes() {
        let points = collect_join_points(&sample());
        let call = points
            .iter()
            .find(|p| matches!(p, JoinPoint::Call { .. }))
            .unwrap();
        assert_eq!(call.attribute("name"), Some(JpAttr::Str("kernel".into())));
        assert_eq!(
            call.attribute("argList"),
            Some(JpAttr::Code("buf, 64".into()))
        );
        assert_eq!(call.attribute("numArgs"), Some(JpAttr::Int(2)));
        let JpAttr::Str(loc) = call.attribute("location").unwrap() else {
            panic!()
        };
        assert!(loc.starts_with("main_loop:"));
    }

    #[test]
    fn arg_matched_by_formal_name() {
        let points = collect_join_points(&sample());
        let arg = points
            .iter()
            .find(|p| matches!(p, JoinPoint::Arg { name, .. } if name == "size"))
            .unwrap();
        assert_eq!(arg.attribute("index"), Some(JpAttr::Int(1)));
        assert_eq!(arg.attribute("callee"), Some(JpAttr::Str("kernel".into())));
    }

    #[test]
    fn unknown_attribute_is_none() {
        let points = collect_join_points(&sample());
        assert_eq!(points[0].attribute("definitely_not_real"), None);
    }

    #[test]
    fn calls_to_unknown_functions_have_no_arg_points() {
        let program = parse_program("void f() { mystery(1, 2, 3); }").unwrap();
        let points = collect_join_points(&program);
        assert!(points.iter().any(|p| matches!(p, JoinPoint::Call { .. })));
        assert!(!points.iter().any(|p| matches!(p, JoinPoint::Arg { .. })));
    }
}
