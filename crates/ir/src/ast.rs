//! Abstract syntax tree of the mini-C language.
//!
//! The tree is deliberately simple — expressions, statements, functions — but
//! rich enough to express the kernels the ANTAREX paper weaves over: counted
//! `for` loops, function calls, array accesses, scalar arithmetic. Statements
//! are addressed structurally by [`NodePath`](crate::path::NodePath) so the
//! weaver can insert or replace nodes without global identifiers.

use crate::types::Type;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Binary operators, in C semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integers only)
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl BinOp {
    /// C source spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Returns `true` for comparison and logical operators (result is 0/1).
    pub fn is_boolean(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        })
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (instrumentation only).
    Str(String),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call `name(args...)`.
    Call(String, Vec<Expr>),
    /// Array element read `name[index]`.
    Index(String, Box<Expr>),
}

impl Expr {
    /// Builds a binary expression, boxing the operands.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Builds a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Builds a call expression.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call(name.into(), args)
    }

    /// Returns the constant integer value of the expression, if it is a
    /// literal (possibly negated).
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            Expr::Unary(UnOp::Neg, inner) => inner.as_const_int().map(|v| -v),
            _ => None,
        }
    }

    /// Visits every sub-expression (including `self`), pre-order.
    pub fn walk(&self, visit: &mut dyn FnMut(&Expr)) {
        visit(self);
        match self {
            Expr::Unary(_, inner) => inner.walk(visit),
            Expr::Binary(_, lhs, rhs) => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
            Expr::Call(_, args) => {
                for arg in args {
                    arg.walk(visit);
                }
            }
            Expr::Index(_, idx) => idx.walk(visit),
            Expr::Int(_) | Expr::Float(_) | Expr::Str(_) | Expr::Var(_) => {}
        }
    }

    /// Replaces every read of variable `name` with `value`, returning the
    /// rewritten expression. Used by specialization (constant propagation).
    pub fn substitute(&self, name: &str, value: &Expr) -> Expr {
        match self {
            Expr::Var(v) if v == name => value.clone(),
            Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(inner.substitute(name, value))),
            Expr::Binary(op, lhs, rhs) => Expr::binary(
                *op,
                lhs.substitute(name, value),
                rhs.substitute(name, value),
            ),
            Expr::Call(f, args) => Expr::Call(
                f.clone(),
                args.iter().map(|a| a.substitute(name, value)).collect(),
            ),
            Expr::Index(arr, idx) => {
                Expr::Index(arr.clone(), Box::new(idx.substitute(name, value)))
            }
            other => other.clone(),
        }
    }
}

/// Assignment target: a scalar variable or an array element.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element `name[index]`.
    Index(String, Box<Expr>),
}

impl LValue {
    /// Name of the underlying variable or array.
    pub fn name(&self) -> &str {
        match self {
            LValue::Var(name) | LValue::Index(name, _) => name,
        }
    }
}

/// A sequence of statements (function body, loop body, branch arm).
pub type Block = Vec<Stmt>;

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Scalar declaration `ty name = init;`.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type (drives precision quantization on every store).
        ty: Type,
        /// Optional initializer; zero of the type if absent.
        init: Option<Expr>,
    },
    /// Array declaration `ty name[size];` (size must be a constant).
    ArrayDecl {
        /// Array name.
        name: String,
        /// Element type.
        ty: Type,
        /// Number of elements.
        size: usize,
    },
    /// Assignment `target = value;`.
    Assign {
        /// Destination.
        target: LValue,
        /// Right-hand side.
        value: Expr,
    },
    /// Conditional.
    If {
        /// Condition (non-zero is true).
        cond: Expr,
        /// Then-branch.
        then_branch: Block,
        /// Optional else-branch.
        else_branch: Option<Block>,
    },
    /// Counted loop `for (init; cond; step) body`.
    For {
        /// Loop variable name (declared by the loop, integer-typed).
        var: String,
        /// Initial value expression.
        init: Expr,
        /// Continuation condition.
        cond: Expr,
        /// Step statement's right-hand side: new value of `var` each
        /// iteration (e.g. `i + 1`).
        step: Expr,
        /// Loop body.
        body: Block,
    },
    /// Pre-test loop `while (cond) body`.
    While {
        /// Continuation condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// Return from the current function.
    Return(Option<Expr>),
    /// Expression evaluated for effect (typically a call).
    ExprStmt(Expr),
}

impl Stmt {
    /// Child blocks of this statement, in path order (see
    /// [`NodePath`](crate::path::NodePath)): `If` exposes then (0) and else
    /// (1); loops expose their body (0); other statements have none.
    pub fn child_blocks(&self) -> Vec<&Block> {
        match self {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                let mut blocks = vec![then_branch];
                if let Some(else_branch) = else_branch {
                    blocks.push(else_branch);
                }
                blocks
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => vec![body],
            _ => vec![],
        }
    }

    /// Mutable variant of [`Stmt::child_blocks`].
    pub fn child_blocks_mut(&mut self) -> Vec<&mut Block> {
        match self {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                let mut blocks = vec![then_branch];
                if let Some(else_branch) = else_branch {
                    blocks.push(else_branch);
                }
                blocks
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => vec![body],
            _ => vec![],
        }
    }

    /// Returns `true` if this statement is a loop (`for` or `while`).
    pub fn is_loop(&self) -> bool {
        matches!(self, Stmt::For { .. } | Stmt::While { .. })
    }

    /// Visits every expression contained directly in this statement (not
    /// descending into child blocks).
    pub fn own_exprs(&self, visit: &mut dyn FnMut(&Expr)) {
        match self {
            Stmt::Decl { init: Some(e), .. } => visit(e),
            Stmt::Decl { init: None, .. } | Stmt::ArrayDecl { .. } => {}
            Stmt::Assign { target, value } => {
                if let LValue::Index(_, idx) = target {
                    visit(idx);
                }
                visit(value);
            }
            Stmt::If { cond, .. } => visit(cond),
            Stmt::For {
                init, cond, step, ..
            } => {
                visit(init);
                visit(cond);
                visit(step);
            }
            Stmt::While { cond, .. } => visit(cond),
            Stmt::Return(Some(e)) => visit(e),
            Stmt::Return(None) => {}
            Stmt::ExprStmt(e) => visit(e),
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type (element type for arrays).
    pub ty: Type,
    /// `true` if the parameter is an array (`double a[]`).
    pub is_array: bool,
}

impl Param {
    /// Creates a scalar parameter.
    pub fn scalar(name: impl Into<String>, ty: Type) -> Self {
        Param {
            name: name.into(),
            ty,
            is_array: false,
        }
    }

    /// Creates an array parameter.
    pub fn array(name: impl Into<String>, ty: Type) -> Self {
        Param {
            name: name.into(),
            ty,
            is_array: true,
        }
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (unique within a [`Program`]).
    pub name: String,
    /// Return type; `None` means `void`.
    pub ret: Option<Type>,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Function body.
    pub body: Block,
}

impl Function {
    /// Creates a function.
    pub fn new(
        name: impl Into<String>,
        ret: Option<Type>,
        params: Vec<Param>,
        body: Block,
    ) -> Self {
        Function {
            name: name.into(),
            ret,
            params,
            body,
        }
    }

    /// Index of the parameter with the given name.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }
}

/// A whole program: an ordered map from name to function.
///
/// Functions are stored behind [`Rc`] so the interpreter can hold the body of
/// the currently-executing function while a dynamic-weaving hook adds new
/// (specialized) functions to the program.
///
/// # Examples
///
/// ```
/// use antarex_ir::parse_program;
///
/// # fn main() -> Result<(), antarex_ir::IrError> {
/// let program = parse_program("int one() { return 1; } int two() { return 2; }")?;
/// assert_eq!(program.function_names(), vec!["one", "two"]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    functions: BTreeMap<String, Rc<Function>>,
    /// Insertion order, for stable printing.
    order: Vec<String>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a function; returns the previous definition if the
    /// name was already bound.
    pub fn insert(&mut self, function: Function) -> Option<Rc<Function>> {
        let name = function.name.clone();
        let prev = self.functions.insert(name.clone(), Rc::new(function));
        if prev.is_none() {
            self.order.push(name);
        }
        prev
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Rc<Function>> {
        self.functions.get(name)
    }

    /// Returns `true` if a function with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.functions.contains_key(name)
    }

    /// Removes a function by name.
    pub fn remove(&mut self, name: &str) -> Option<Rc<Function>> {
        let prev = self.functions.remove(name);
        if prev.is_some() {
            self.order.retain(|n| n != name);
        }
        prev
    }

    /// Function names in insertion order.
    pub fn function_names(&self) -> Vec<&str> {
        self.order.iter().map(String::as_str).collect()
    }

    /// Iterates over functions in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Rc<Function>> {
        self.order.iter().filter_map(|n| self.functions.get(n))
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Returns `true` if the program has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Applies an in-place edit to the named function.
    ///
    /// The function is cloned out of its `Rc` (copy-on-write), mutated, and
    /// reinserted, so outstanding `Rc` handles (e.g. a frame currently being
    /// interpreted) keep seeing the old body — exactly the semantics of
    /// runtime code patching with in-flight activations.
    ///
    /// # Errors
    ///
    /// Returns [`crate::IrError::Unresolved`] if no such function exists.
    pub fn edit_function(
        &mut self,
        name: &str,
        edit: impl FnOnce(&mut Function),
    ) -> Result<(), crate::IrError> {
        let rc = self
            .functions
            .get(name)
            .ok_or_else(|| crate::IrError::Unresolved(name.to_string()))?;
        let mut function = (**rc).clone();
        edit(&mut function);
        self.functions.insert(name.to_string(), Rc::new(function));
        Ok(())
    }
}

impl FromIterator<Function> for Program {
    fn from_iter<I: IntoIterator<Item = Function>>(iter: I) -> Self {
        let mut program = Program::new();
        for function in iter {
            program.insert(function);
        }
        program
    }
}

impl Extend<Function> for Program {
    fn extend<I: IntoIterator<Item = Function>>(&mut self, iter: I) {
        for function in iter {
            self.insert(function);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_expr() -> Expr {
        // (x + 2) * f(x, a[x])
        Expr::binary(
            BinOp::Mul,
            Expr::binary(BinOp::Add, Expr::var("x"), Expr::Int(2)),
            Expr::call(
                "f",
                vec![
                    Expr::var("x"),
                    Expr::Index("a".into(), Box::new(Expr::var("x"))),
                ],
            ),
        )
    }

    #[test]
    fn walk_visits_all_nodes() {
        let mut count = 0;
        sample_expr().walk(&mut |_| count += 1);
        // mul, add, x, 2, call, x, index, x
        assert_eq!(count, 8);
    }

    #[test]
    fn substitute_replaces_every_read() {
        let substituted = sample_expr().substitute("x", &Expr::Int(7));
        let mut vars = 0;
        substituted.walk(&mut |e| {
            if matches!(e, Expr::Var(_)) {
                vars += 1;
            }
        });
        assert_eq!(vars, 0, "all x reads replaced");
    }

    #[test]
    fn substitute_does_not_touch_array_names() {
        let substituted = sample_expr().substitute("a", &Expr::Int(0));
        let mut has_index = false;
        substituted.walk(&mut |e| has_index |= matches!(e, Expr::Index(name, _) if name == "a"));
        assert!(has_index, "array base names are not variable reads");
    }

    #[test]
    fn as_const_int_handles_negation() {
        assert_eq!(Expr::Int(5).as_const_int(), Some(5));
        let neg = Expr::Unary(UnOp::Neg, Box::new(Expr::Int(5)));
        assert_eq!(neg.as_const_int(), Some(-5));
        assert_eq!(Expr::var("x").as_const_int(), None);
    }

    #[test]
    fn program_preserves_insertion_order() {
        let mut program = Program::new();
        for name in ["zeta", "alpha", "mid"] {
            program.insert(Function::new(name, None, vec![], vec![]));
        }
        assert_eq!(program.function_names(), vec!["zeta", "alpha", "mid"]);
    }

    #[test]
    fn program_replace_keeps_single_order_entry() {
        let mut program = Program::new();
        program.insert(Function::new("f", None, vec![], vec![]));
        let prev = program.insert(Function::new("f", Some(Type::Int), vec![], vec![]));
        assert!(prev.is_some());
        assert_eq!(program.len(), 1);
        assert_eq!(program.function_names(), vec!["f"]);
    }

    #[test]
    fn edit_function_is_copy_on_write() {
        let mut program = Program::new();
        program.insert(Function::new("f", None, vec![], vec![]));
        let old_handle = Rc::clone(program.function("f").unwrap());
        program
            .edit_function("f", |f| f.body.push(Stmt::Return(None)))
            .unwrap();
        assert!(old_handle.body.is_empty(), "old handle unchanged");
        assert_eq!(program.function("f").unwrap().body.len(), 1);
    }

    #[test]
    fn edit_unknown_function_errors() {
        let mut program = Program::new();
        let err = program.edit_function("nope", |_| {}).unwrap_err();
        assert!(matches!(err, crate::IrError::Unresolved(_)));
    }

    #[test]
    fn remove_updates_order() {
        let mut program: Program = ["a", "b", "c"]
            .into_iter()
            .map(|n| Function::new(n, None, vec![], vec![]))
            .collect();
        program.remove("b");
        assert_eq!(program.function_names(), vec!["a", "c"]);
    }

    #[test]
    fn stmt_child_blocks_cover_if_and_loops() {
        let stmt = Stmt::If {
            cond: Expr::Int(1),
            then_branch: vec![Stmt::Return(None)],
            else_branch: Some(vec![]),
        };
        assert_eq!(stmt.child_blocks().len(), 2);
        let stmt = Stmt::While {
            cond: Expr::Int(1),
            body: vec![],
        };
        assert_eq!(stmt.child_blocks().len(), 1);
        assert!(stmt.is_loop());
        assert!(!Stmt::Return(None).is_loop());
    }
}
