//! Pretty-printer producing C-like source from the AST.
//!
//! Printing is the source-to-source half of the ANTAREX flow: after weaving,
//! the enhanced program can be emitted as text again. The printer's output
//! re-parses to an equivalent AST (round-trip property, tested here and with
//! proptest in the crate's integration tests).

use crate::ast::{BinOp, Block, Expr, Function, LValue, Program, Stmt, UnOp};
use std::fmt::Write as _;

/// Prints a whole program as C-like source.
///
/// # Examples
///
/// ```
/// use antarex_ir::{parse_program, printer::print_program};
///
/// # fn main() -> Result<(), antarex_ir::IrError> {
/// let program = parse_program("int f(int x) { return x + 1; }")?;
/// let text = print_program(&program);
/// assert!(text.contains("return (x + 1);"));
/// # Ok(())
/// # }
/// ```
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, function) in program.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function_into(function, &mut out);
    }
    out
}

/// Prints a single function.
pub fn print_function(function: &Function) -> String {
    let mut out = String::new();
    print_function_into(function, &mut out);
    out
}

fn print_function_into(function: &Function, out: &mut String) {
    match function.ret {
        Some(ty) => {
            let _ = write!(out, "{ty} ");
        }
        None => out.push_str("void "),
    }
    let _ = write!(out, "{}(", function.name);
    for (i, param) in function.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", param.ty, param.name);
        if param.is_array {
            out.push_str("[]");
        }
    }
    out.push_str(") {\n");
    print_block(&function.body, 1, out);
    out.push_str("}\n");
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(block: &Block, level: usize, out: &mut String) {
    for stmt in block {
        print_stmt(stmt, level, out);
    }
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match stmt {
        Stmt::Decl { name, ty, init } => {
            let _ = write!(out, "{ty} {name}");
            if let Some(init) = init {
                let _ = write!(out, " = {}", print_expr(init));
            }
            out.push_str(";\n");
        }
        Stmt::ArrayDecl { name, ty, size } => {
            let _ = writeln!(out, "{ty} {name}[{size}];");
        }
        Stmt::Assign { target, value } => {
            let target_text = match target {
                LValue::Var(name) => name.clone(),
                LValue::Index(name, idx) => format!("{name}[{}]", print_expr(idx)),
            };
            let _ = writeln!(out, "{target_text} = {};", print_expr(value));
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_block(then_branch, level + 1, out);
            indent(level, out);
            match else_branch {
                Some(else_branch) => {
                    out.push_str("} else {\n");
                    print_block(else_branch, level + 1, out);
                    indent(level, out);
                    out.push_str("}\n");
                }
                None => out.push_str("}\n"),
            }
        }
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => {
            let _ = writeln!(
                out,
                "for (int {var} = {}; {}; {var} = {}) {{",
                print_expr(init),
                print_expr(cond),
                print_expr(step)
            );
            print_block(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            print_block(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Return(value) => match value {
            Some(value) => {
                let _ = writeln!(out, "return {};", print_expr(value));
            }
            None => out.push_str("return;\n"),
        },
        Stmt::ExprStmt(expr) => {
            let _ = writeln!(out, "{};", print_expr(expr));
        }
    }
}

/// Prints an expression with full parenthesisation (unambiguous, re-parses
/// to the same tree).
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            let text = format!("{v}");
            // Ensure it re-lexes as a float literal.
            if text.contains('.')
                || text.contains('e')
                || text.contains("inf")
                || text.contains("NaN")
            {
                text
            } else {
                format!("{text}.0")
            }
        }
        Expr::Str(s) => format!(
            "\"{}\"",
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        ),
        Expr::Var(name) => name.clone(),
        Expr::Unary(op, inner) => match op {
            UnOp::Neg => format!("-({})", print_expr(inner)),
            UnOp::Not => format!("!({})", print_expr(inner)),
        },
        Expr::Binary(op, lhs, rhs) => {
            format!("({} {} {})", print_expr(lhs), op_text(*op), print_expr(rhs))
        }
        Expr::Call(name, args) => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Index(name, idx) => format!("{name}[{}]", print_expr(idx)),
    }
}

fn op_text(op: BinOp) -> &'static str {
    op.symbol()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    #[test]
    fn round_trip_program() {
        let source = "double dot(double a[], double b[], int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
            if (n > 100) { s = s / 2.0; } else { s = -s; }
            return s;
        }";
        let program = parse_program(source).unwrap();
        let printed = print_program(&program);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(program, reparsed, "print → parse is identity");
    }

    #[test]
    fn round_trip_expr_preserves_structure() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "a && b || !c",
            "-x * -y",
            "f(a[i], \"s\\\"x\")",
            "1.5e3 + .25",
        ] {
            let expr = parse_expr(src).unwrap();
            let printed = print_expr(&expr);
            let reparsed = parse_expr(&printed).unwrap();
            assert_eq!(expr, reparsed, "failed on {src} -> {printed}");
        }
    }

    #[test]
    fn float_literal_without_fraction_gets_dot() {
        assert_eq!(print_expr(&Expr::Float(2.0)), "2.0");
        assert_eq!(print_expr(&Expr::Float(0.5)), "0.5");
    }

    #[test]
    fn while_and_arrays_print() {
        let program = parse_program(
            "int f() { int acc[4]; int i = 0; while (i < 4) { acc[i] = i; i++; } return acc[3]; }",
        )
        .unwrap();
        let text = print_program(&program);
        assert!(text.contains("int acc[4];"));
        assert!(text.contains("while ((i < 4)) {"));
        let reparsed = parse_program(&text).unwrap();
        assert_eq!(program, reparsed);
    }
}
