//! Parser for the mini-C subset.
//!
//! Supported grammar (close enough to C to host the paper's kernels):
//!
//! ```text
//! program   := function*
//! function  := type ident '(' params? ')' block
//! type      := 'void' | 'int' | 'long' | 'float' | 'double' | 'float' INT
//! params    := param (',' param)*
//! param     := type ident ('[' ']')?
//! block     := '{' stmt* '}'
//! stmt      := decl ';' | assign ';' | 'if' ... | 'for' ... | 'while' ...
//!            | 'return' expr? ';' | expr ';' | block
//! decl      := type ident ('=' expr)? | type ident '[' INT ']'
//! assign    := lvalue ('=' | '+=' | '-=' | '*=' | '/=') expr
//!            | lvalue '++' | lvalue '--'
//! expr      := C expression grammar with || && == != < <= > >= + - * / % ! -
//! ```
//!
//! `for` loops must declare or assign a single integer induction variable;
//! this is what makes trip counts statically analysable, which the paper's
//! `UnrollInnermostLoops` aspect relies on (`$loop.numIter`).

use crate::ast::{BinOp, Block, Expr, Function, LValue, Param, Program, Stmt, UnOp};
use crate::error::IrError;
use crate::types::Type;

/// Parses a whole program (a sequence of function definitions).
///
/// # Errors
///
/// Returns [`IrError::Parse`] with line/column information on syntax errors.
///
/// # Examples
///
/// ```
/// use antarex_ir::parse_program;
///
/// # fn main() -> Result<(), antarex_ir::IrError> {
/// let program = parse_program(
///     "double dot(double a[], double b[], int n) {
///          double s = 0.0;
///          for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
///          return s;
///      }",
/// )?;
/// assert!(program.contains("dot"));
/// # Ok(())
/// # }
/// ```
pub fn parse_program(source: &str) -> Result<Program, IrError> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let mut program = Program::new();
    while !parser.at_end() {
        program.insert(parser.function()?);
    }
    Ok(program)
}

/// Parses a single expression (used by tests and the DSL's template engine).
///
/// # Errors
///
/// Returns [`IrError::Parse`] on syntax errors or trailing input.
pub fn parse_expr(source: &str) -> Result<Expr, IrError> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.expr()?;
    if !parser.at_end() {
        let tok = parser.peek();
        return Err(IrError::parse_span(
            tok.line,
            tok.col,
            tok.end_col,
            "trailing input after expression",
        ));
    }
    Ok(expr)
}

/// Parses a single statement (used by the DSL's `insert` action templates).
///
/// # Errors
///
/// Returns [`IrError::Parse`] on syntax errors or trailing input.
pub fn parse_stmt(source: &str) -> Result<Stmt, IrError> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let stmt = parser.stmt()?;
    if !parser.at_end() {
        let tok = parser.peek();
        return Err(IrError::parse_span(
            tok.line,
            tok.col,
            tok.end_col,
            "trailing input after statement",
        ));
    }
    Ok(stmt)
}

/// Parses a sequence of statements (a braceless block), as produced by DSL
/// `insert` templates that splice several statements at once.
///
/// # Errors
///
/// Returns [`IrError::Parse`] on syntax errors.
pub fn parse_stmts(source: &str) -> Result<Vec<Stmt>, IrError> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let mut stmts = Vec::new();
    while !parser.at_end() {
        stmts.push(parser.stmt()?);
    }
    Ok(stmts)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Punct(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: u32,
    col: u32,
    /// Exclusive end column of the token on its last line, so errors can
    /// report the full span of the offending token.
    end_col: u32,
}

const PUNCTS: &[&str] = &[
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--", "(", ")", "{", "}",
    "[", "]", ",", ";", "=", "<", ">", "+", "-", "*", "/", "%", "!",
];

fn lex(source: &str) -> Result<Vec<Token>, IrError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // comments
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                i += 2;
                col += 2;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        continue 'outer;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
                return Err(IrError::parse(line, col, "unterminated block comment"));
            }
        }
        let (tline, tcol) = (line, col);
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
                col += 1;
            }
            tokens.push(Token {
                tok: Tok::Ident(source[start..i].to_string()),
                line: tline,
                col: tcol,
                end_col: col,
            });
            continue;
        }
        if c.is_ascii_digit()
            || (c == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
        {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() {
                let d = bytes[i] as char;
                if d.is_ascii_digit() {
                    i += 1;
                    col += 1;
                } else if d == '.' && !is_float {
                    is_float = true;
                    i += 1;
                    col += 1;
                } else if (d == 'e' || d == 'E')
                    && i + 1 < bytes.len()
                    && ((bytes[i + 1] as char).is_ascii_digit()
                        || bytes[i + 1] == b'-'
                        || bytes[i + 1] == b'+')
                {
                    is_float = true;
                    i += 2;
                    col += 2;
                } else {
                    break;
                }
            }
            let text = &source[start..i];
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|_| {
                    IrError::parse(tline, tcol, format!("invalid float literal `{text}`"))
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| {
                    IrError::parse(tline, tcol, format!("invalid integer literal `{text}`"))
                })?)
            };
            tokens.push(Token {
                tok,
                line: tline,
                col: tcol,
                end_col: col,
            });
            continue;
        }
        if c == '"' || c == '\'' {
            let quote = c;
            i += 1;
            col += 1;
            let mut text = String::new();
            while i < bytes.len() && bytes[i] as char != quote {
                let d = bytes[i] as char;
                if d == '\\' && i + 1 < bytes.len() {
                    let esc = bytes[i + 1] as char;
                    text.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    });
                    i += 2;
                    col += 2;
                } else {
                    if d == '\n' {
                        line += 1;
                        col = 0;
                    }
                    text.push(d);
                    i += 1;
                    col += 1;
                }
            }
            if i >= bytes.len() {
                return Err(IrError::parse(tline, tcol, "unterminated string literal"));
            }
            i += 1;
            col += 1;
            tokens.push(Token {
                tok: Tok::Str(text),
                line: tline,
                col: tcol,
                end_col: col,
            });
            continue;
        }
        // punctuation, longest match first
        for punct in PUNCTS {
            if source[i..].starts_with(punct) {
                tokens.push(Token {
                    tok: Tok::Punct(punct),
                    line: tline,
                    col: tcol,
                    end_col: tcol + punct.len() as u32,
                });
                i += punct.len();
                col += punct.len() as u32;
                continue 'outer;
            }
        }
        return Err(IrError::parse(
            tline,
            tcol,
            format!("unexpected character `{c}`"),
        ));
    }
    tokens.push(Token {
        tok: Tok::Eof,
        line,
        col,
        end_col: col,
    });
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn at_end(&self) -> bool {
        matches!(self.peek().tok, Tok::Eof)
    }

    fn bump(&mut self) -> Token {
        let token = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        token
    }

    fn err(&self, message: impl Into<String>) -> IrError {
        Self::err_at(self.peek(), message)
    }

    /// An error anchored at a specific (possibly already consumed) token,
    /// carrying its full span. Error paths that detect a problem *after*
    /// consuming tokens must use this with the offending token instead of
    /// [`Parser::err`], which would blame whatever comes next.
    fn err_at(token: &Token, message: impl Into<String>) -> IrError {
        IrError::parse_span(token.line, token.col, token.end_col, message)
    }

    fn eat_punct(&mut self, punct: &str) -> bool {
        if matches!(&self.peek().tok, Tok::Punct(p) if *p == punct) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, punct: &str) -> Result<(), IrError> {
        if self.eat_punct(punct) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{punct}`")))
        }
    }

    fn ident(&mut self) -> Result<String, IrError> {
        match &self.peek().tok {
            Tok::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    /// Returns the declared type if the next tokens form one; consumes them.
    fn try_type(&mut self) -> Option<Option<Type>> {
        let name = match &self.peek().tok {
            Tok::Ident(name) => name.clone(),
            _ => return None,
        };
        let ty = match name.as_str() {
            "void" => None,
            "int" | "long" => Some(Type::Int),
            "double" => Some(Type::F64),
            "float" => Some(Type::F32),
            other => {
                // floatN custom precision, e.g. float16 means 16 mantissa bits
                if let Some(bits) = other
                    .strip_prefix("float")
                    .and_then(|s| s.parse::<u8>().ok())
                {
                    if (1..=52).contains(&bits) {
                        Some(Type::FCustom(bits))
                    } else {
                        return None;
                    }
                } else {
                    return None;
                }
            }
        };
        self.bump();
        Some(ty)
    }

    fn is_type_ahead(&self) -> bool {
        match &self.peek().tok {
            Tok::Ident(name) => {
                matches!(name.as_str(), "void" | "int" | "long" | "double" | "float")
                    || name
                        .strip_prefix("float")
                        .and_then(|s| s.parse::<u8>().ok())
                        .is_some_and(|b| (1..=52).contains(&b))
            }
            _ => false,
        }
    }

    fn function(&mut self) -> Result<Function, IrError> {
        let ret = self
            .try_type()
            .ok_or_else(|| self.err("expected return type"))?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let ty_token = self.peek().clone();
                let ty = self
                    .try_type()
                    .ok_or_else(|| self.err("expected parameter type"))?
                    .ok_or_else(|| Self::err_at(&ty_token, "parameters cannot be void"))?;
                let pname = self.ident()?;
                let is_array = if self.eat_punct("[") {
                    self.expect_punct("]")?;
                    true
                } else {
                    false
                };
                params.push(Param {
                    name: pname,
                    ty,
                    is_array,
                });
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(Function::new(name, ret, params, body))
    }

    fn block(&mut self) -> Result<Block, IrError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_end() {
                return Err(self.err("unexpected end of input, expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, IrError> {
        if matches!(&self.peek().tok, Tok::Punct("{")) {
            // flatten lexical blocks into If(true) to keep Block = Vec<Stmt>
            let inner = self.block()?;
            return Ok(Stmt::If {
                cond: Expr::Int(1),
                then_branch: inner,
                else_branch: None,
            });
        }
        if let Tok::Ident(kw) = &self.peek().tok {
            match kw.as_str() {
                "if" => return self.if_stmt(),
                "for" => return self.for_stmt(),
                "while" => return self.while_stmt(),
                "return" => {
                    self.bump();
                    if self.eat_punct(";") {
                        return Ok(Stmt::Return(None));
                    }
                    let value = self.expr()?;
                    self.expect_punct(";")?;
                    return Ok(Stmt::Return(Some(value)));
                }
                _ => {}
            }
        }
        if self.is_type_ahead() && matches!(self.peek2(), Tok::Ident(_)) {
            let stmt = self.decl()?;
            self.expect_punct(";")?;
            return Ok(stmt);
        }
        let stmt = self.simple_stmt()?;
        self.expect_punct(";")?;
        Ok(stmt)
    }

    fn decl(&mut self) -> Result<Stmt, IrError> {
        let ty_token = self.peek().clone();
        let ty = self
            .try_type()
            .ok_or_else(|| self.err("expected type"))?
            .ok_or_else(|| Self::err_at(&ty_token, "cannot declare a void variable"))?;
        let name = self.ident()?;
        if self.eat_punct("[") {
            let size_token = self.bump();
            let size = match size_token.tok {
                Tok::Int(n) if n >= 0 => n as usize,
                _ => {
                    return Err(Self::err_at(
                        &size_token,
                        "array size must be a non-negative integer literal",
                    ))
                }
            };
            self.expect_punct("]")?;
            return Ok(Stmt::ArrayDecl { name, ty, size });
        }
        let init = if self.eat_punct("=") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Decl { name, ty, init })
    }

    /// Assignment (incl. compound and ++/--) or expression statement,
    /// without the trailing semicolon.
    fn simple_stmt(&mut self) -> Result<Stmt, IrError> {
        // Try to parse an lvalue-led assignment by lookahead.
        if let Tok::Ident(name) = &self.peek().tok {
            let name = name.clone();
            match self.peek2() {
                Tok::Punct("=") => {
                    self.bump();
                    self.bump();
                    let value = self.expr()?;
                    return Ok(Stmt::Assign {
                        target: LValue::Var(name),
                        value,
                    });
                }
                Tok::Punct(op @ ("+=" | "-=" | "*=" | "/=")) => {
                    let bin = compound_op(op);
                    self.bump();
                    self.bump();
                    let rhs = self.expr()?;
                    return Ok(Stmt::Assign {
                        target: LValue::Var(name.clone()),
                        value: Expr::binary(bin, Expr::Var(name), rhs),
                    });
                }
                Tok::Punct(op @ ("++" | "--")) => {
                    let bin = if *op == "++" { BinOp::Add } else { BinOp::Sub };
                    self.bump();
                    self.bump();
                    return Ok(Stmt::Assign {
                        target: LValue::Var(name.clone()),
                        value: Expr::binary(bin, Expr::Var(name), Expr::Int(1)),
                    });
                }
                Tok::Punct("[") => {
                    // Could be a[i] = ... or an expression like a[i] + 1;
                    let save = self.pos;
                    self.bump(); // ident
                    self.bump(); // [
                    let index = self.expr()?;
                    if self.expect_punct("]").is_ok() {
                        if self.eat_punct("=") {
                            let value = self.expr()?;
                            return Ok(Stmt::Assign {
                                target: LValue::Index(name, Box::new(index)),
                                value,
                            });
                        }
                        if let Tok::Punct(op @ ("+=" | "-=" | "*=" | "/=")) = &self.peek().tok {
                            let bin = compound_op(op);
                            self.bump();
                            let rhs = self.expr()?;
                            let read = Expr::Index(name.clone(), Box::new(index.clone()));
                            return Ok(Stmt::Assign {
                                target: LValue::Index(name, Box::new(index)),
                                value: Expr::binary(bin, read, rhs),
                            });
                        }
                    }
                    self.pos = save;
                }
                _ => {}
            }
        }
        let expr = self.expr()?;
        Ok(Stmt::ExprStmt(expr))
    }

    fn if_stmt(&mut self) -> Result<Stmt, IrError> {
        self.bump(); // if
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let then_branch = self.stmt_or_block()?;
        let else_branch = if matches!(&self.peek().tok, Tok::Ident(kw) if kw == "else") {
            self.bump();
            Some(self.stmt_or_block()?)
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn stmt_or_block(&mut self) -> Result<Block, IrError> {
        if matches!(&self.peek().tok, Tok::Punct("{")) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, IrError> {
        self.bump(); // for
        self.expect_punct("(")?;
        // init: `int i = e` or `i = e`
        let (var, init) = if self.is_type_ahead() {
            let ty_token = self.peek().clone();
            let ty = self.try_type().unwrap();
            if ty != Some(Type::Int) {
                return Err(Self::err_at(&ty_token, "loop variables must be integers"));
            }
            let name = self.ident()?;
            self.expect_punct("=")?;
            (name, self.expr()?)
        } else {
            let name = self.ident()?;
            self.expect_punct("=")?;
            (name, self.expr()?)
        };
        self.expect_punct(";")?;
        let cond = self.expr()?;
        self.expect_punct(";")?;
        // step: `i = e`, `i += e`, `i++`, `i--`
        let step_token = self.peek().clone();
        let step_stmt = self.simple_stmt()?;
        let step = match step_stmt {
            Stmt::Assign {
                target: LValue::Var(name),
                value,
            } if name == var => value,
            _ => {
                return Err(Self::err_at(
                    &step_token,
                    format!("for-step must assign loop variable `{var}`"),
                ))
            }
        };
        self.expect_punct(")")?;
        let body = self.stmt_or_block()?;
        Ok(Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, IrError> {
        self.bump(); // while
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let body = self.stmt_or_block()?;
        Ok(Stmt::While { cond, body })
    }

    // ---- expressions, precedence climbing ----

    fn expr(&mut self) -> Result<Expr, IrError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_punct("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match &self.peek().tok {
                Tok::Punct("==") => BinOp::Eq,
                Tok::Punct("!=") => BinOp::Ne,
                Tok::Punct("<=") => BinOp::Le,
                Tok::Punct(">=") => BinOp::Ge,
                Tok::Punct("<") => BinOp::Lt,
                Tok::Punct(">") => BinOp::Gt,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match &self.peek().tok {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match &self.peek().tok {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, IrError> {
        if self.eat_punct("-") {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner)));
        }
        if self.eat_punct("!") {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(inner)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, IrError> {
        let token = self.bump();
        match token.tok {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else if self.eat_punct("[") {
                    let index = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr::Index(name, Box::new(index)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Tok::Punct("(") => {
                let inner = self.expr()?;
                self.expect_punct(")")?;
                Ok(inner)
            }
            _ => Err(Self::err_at(&token, "expected expression")),
        }
    }
}

fn compound_op(op: &str) -> BinOp {
    match op {
        "+=" => BinOp::Add,
        "-=" => BinOp::Sub,
        "*=" => BinOp::Mul,
        "/=" => BinOp::Div,
        _ => unreachable!("not a compound assignment operator: {op}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_dot_product() {
        let program = parse_program(
            "double dot(double a[], double b[], int n) {
                 double s = 0.0;
                 for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
                 return s;
             }",
        )
        .unwrap();
        let f = program.function("dot").unwrap();
        assert_eq!(f.params.len(), 3);
        assert!(f.params[0].is_array);
        assert!(!f.params[2].is_array);
        assert_eq!(f.body.len(), 3);
        assert!(matches!(&f.body[1], Stmt::For { var, .. } if var == "i"));
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::binary(
                BinOp::Add,
                Expr::Int(1),
                Expr::binary(BinOp::Mul, Expr::Int(2), Expr::Int(3))
            )
        );
    }

    #[test]
    fn precedence_logical() {
        // a || b && c  ==  a || (b && c)
        let e = parse_expr("a || b && c").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Or, _, _)));
    }

    #[test]
    fn parentheses_override() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn unary_chains() {
        // note: `--5` would lex as the decrement operator, exactly like C
        let e = parse_expr("- -5").unwrap();
        assert_eq!(e.as_const_int(), Some(5));
        let e = parse_expr("!!x").unwrap();
        assert!(matches!(e, Expr::Unary(UnOp::Not, _)));
    }

    #[test]
    fn string_and_char_literals() {
        let e = parse_expr("f(\"hello\\n\", 'kernel')").unwrap();
        match e {
            Expr::Call(name, args) => {
                assert_eq!(name, "f");
                assert_eq!(args[0], Expr::Str("hello\n".into()));
                assert_eq!(args[1], Expr::Str("kernel".into()));
            }
            _ => panic!("expected call"),
        }
    }

    #[test]
    fn float_literals_with_exponent() {
        assert_eq!(parse_expr("1.5e3").unwrap(), Expr::Float(1500.0));
        assert_eq!(parse_expr("2e-2").unwrap(), Expr::Float(0.02));
        assert_eq!(parse_expr(".5").unwrap(), Expr::Float(0.5));
    }

    #[test]
    fn compound_assignments_desugar() {
        let program = parse_program("void f(int x) { x += 2; x *= 3; x--; }").unwrap();
        let f = program.function("f").unwrap();
        assert!(matches!(
            &f.body[0],
            Stmt::Assign {
                value: Expr::Binary(BinOp::Add, _, _),
                ..
            }
        ));
        assert!(matches!(
            &f.body[2],
            Stmt::Assign {
                value: Expr::Binary(BinOp::Sub, _, _),
                ..
            }
        ));
    }

    #[test]
    fn array_element_compound_assignment() {
        let program = parse_program("void f(double a[]) { a[3] += 1.0; }").unwrap();
        let f = program.function("f").unwrap();
        match &f.body[0] {
            Stmt::Assign {
                target: LValue::Index(name, _),
                value: Expr::Binary(BinOp::Add, lhs, _),
            } => {
                assert_eq!(name, "a");
                assert!(matches!(&**lhs, Expr::Index(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_else_chains() {
        let program = parse_program(
            "int sign(int x) { if (x > 0) return 1; else if (x < 0) return -1; else return 0; }",
        )
        .unwrap();
        let f = program.function("sign").unwrap();
        match &f.body[0] {
            Stmt::If {
                else_branch: Some(else_branch),
                ..
            } => {
                assert!(matches!(&else_branch[0], Stmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn while_loop_and_local_arrays() {
        let program = parse_program(
            "int f() { int acc[8]; int i = 0; while (i < 8) { acc[i] = i; i++; } return acc[7]; }",
        )
        .unwrap();
        let f = program.function("f").unwrap();
        assert!(matches!(&f.body[0], Stmt::ArrayDecl { size: 8, .. }));
        assert!(matches!(&f.body[2], Stmt::While { .. }));
    }

    #[test]
    fn custom_precision_type_parses() {
        let program = parse_program("float16 f(float16 x) { return x; }").unwrap();
        let f = program.function("f").unwrap();
        assert_eq!(f.ret, Some(Type::FCustom(16)));
        assert_eq!(f.params[0].ty, Type::FCustom(16));
    }

    #[test]
    fn comments_are_skipped() {
        let program =
            parse_program("// leading\nint f() { /* inner\n comment */ return 1; } // trailing")
                .unwrap();
        assert!(program.contains("f"));
    }

    #[test]
    fn void_function_with_bare_return() {
        let program = parse_program("void f() { return; }").unwrap();
        assert_eq!(program.function("f").unwrap().ret, None);
    }

    #[test]
    fn errors_carry_location() {
        let err = parse_program("int f() {\n  return 1 +;\n}").unwrap_err();
        match err {
            IrError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn for_step_must_touch_loop_var() {
        let err = parse_program("void f() { for (int i = 0; i < 4; j++) {} }").unwrap_err();
        assert!(err.to_string().contains("for-step"));
    }

    /// Slices the token a parse error blames out of the source line.
    fn blamed(source: &str, err: &IrError) -> String {
        let (line, col, end_col) = err.span().expect("parse error with a span");
        let text = source.lines().nth(line as usize - 1).unwrap();
        text.chars()
            .skip(col as usize - 1)
            .take((end_col - col) as usize)
            .collect()
    }

    #[test]
    fn span_points_at_offending_token() {
        // previously these paths blamed the *next* token (or reported a
        // position past the construct); each must now blame the cause
        let src = "void f() { for (double i = 0; i < 4; i++) {} }";
        let err = parse_program(src).unwrap_err();
        assert_eq!(blamed(src, &err), "double", "{err}");

        let src = "void f() { void x = 1; }";
        let err = parse_program(src).unwrap_err();
        assert_eq!(blamed(src, &err), "void", "{err}");

        let src = "void f(void x) { }";
        let err = parse_program(src).unwrap_err();
        assert_eq!(blamed(src, &err), "void", "{err}");

        let src = "void f() { int a[n]; }";
        let err = parse_program(src).unwrap_err();
        assert_eq!(blamed(src, &err), "n", "{err}");

        let src = "void f() { for (int i = 0; i < 4; j++) {} }";
        let err = parse_program(src).unwrap_err();
        assert_eq!(blamed(src, &err), "j", "{err}");
    }

    #[test]
    fn span_covers_multi_column_tokens() {
        let src = "int f() {\n  return 1 + wrong_name(;\n}";
        let err = parse_program(src).unwrap_err();
        // the `;` where an expression was expected, on line 2
        let (line, _, _) = err.span().unwrap();
        assert_eq!(line, 2);
        assert_eq!(blamed(src, &err), ";");
    }

    #[test]
    fn lexical_block_statement() {
        let program = parse_program("void f() { { int x = 1; } }").unwrap();
        let f = program.function("f").unwrap();
        assert!(matches!(
            &f.body[0],
            Stmt::If {
                cond: Expr::Int(1),
                ..
            }
        ));
    }

    #[test]
    fn parse_stmt_entry_point() {
        let stmt = parse_stmt("profile_args(\"kernel\", 3);").unwrap();
        assert!(matches!(stmt, Stmt::ExprStmt(Expr::Call(_, _))));
        assert!(parse_stmt("x = 1; y = 2;").is_err());
    }

    #[test]
    fn trailing_input_rejected_for_expr() {
        assert!(parse_expr("1 + 2 3").is_err());
    }
}
