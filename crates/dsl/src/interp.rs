//! The static weaver: executes aspects against a program.
//!
//! An aspect runs as a sequence of items: `call` statements invoke other
//! aspects or built-in weaver actions; a `select` establishes the current
//! pointcut; the following `apply` fires its actions once per join point
//! that satisfies the attached `condition` (which may appear before or
//! after the `apply`, as in the paper's listings).
//!
//! `apply dynamic` bodies are *not* executed here: they are captured as
//! [`crate::dynamic::DynamicPlan`]s together with their
//! environment, and enacted at runtime by a
//! [`DynamicWeaver`](crate::dynamic::DynamicWeaver) — the paper's split
//! compilation: offline preparation, online binding.

use crate::ast::{Action, Apply, AspectLibrary, CallAspect, DExpr, Filter, Item, SelLink, Select};
use crate::dynamic::DynamicPlan;
use crate::error::DslError;
use crate::expr::{attr_of, bind_join_point, eval, Env};
use crate::template::render;
use crate::value::DslValue;
use antarex_ir::joinpoint::{collect_join_points, JoinPoint};
use antarex_ir::{parse_stmts, Program};
use antarex_weaver::transform::specialize::specialize;
use antarex_weaver::transform::unroll::{unroll_by_factor, unroll_full};
use antarex_weaver::{insert_after, insert_before, VersionStore};
use std::cell::RefCell;
use std::rc::Rc;

/// Host of weaver actions (`do X(...)` and built-in `call`s).
///
/// The [`StandardActions`] implementation provides the paper's action set
/// (`LoopUnroll`, `Specialize`, `PrepareSpecialize`, `AddVersion`);
/// embedders can wrap or replace it to add domain-specific actions.
pub trait ActionHost {
    /// Invokes action `name` with evaluated arguments, optionally targeted
    /// at a join point, possibly mutating the program.
    ///
    /// # Errors
    ///
    /// Returns [`DslError::Unresolved`] for unknown actions or
    /// [`DslError::Action`] when the transformation fails.
    fn invoke(
        &mut self,
        name: &str,
        args: &[DslValue],
        target: Option<&JoinPoint>,
        program: &mut Program,
    ) -> Result<DslValue, DslError>;
}

/// The built-in weaver actions from the paper's listings.
#[derive(Debug, Clone)]
pub struct StandardActions {
    store: Rc<RefCell<VersionStore>>,
}

impl StandardActions {
    /// Creates the standard action set with a fresh version store.
    pub fn new() -> Self {
        StandardActions {
            store: Rc::new(RefCell::new(VersionStore::new())),
        }
    }

    /// Creates the standard action set sharing an existing version store.
    pub fn with_store(store: Rc<RefCell<VersionStore>>) -> Self {
        StandardActions { store }
    }

    /// The shared multi-version dispatch store.
    pub fn store(&self) -> Rc<RefCell<VersionStore>> {
        Rc::clone(&self.store)
    }

    fn function_name_of(value: &DslValue) -> Result<String, DslError> {
        match value {
            DslValue::Jp(JoinPoint::Call { callee, .. }) => Ok(callee.clone()),
            DslValue::Record(fields) => fields
                .get("function")
                .or_else(|| fields.get("name"))
                .and_then(|v| v.as_str().map(str::to_string))
                .ok_or_else(|| DslError::Eval("record has no `function` or `name` field".into())),
            other => other
                .as_func_name()
                .map(str::to_string)
                .ok_or_else(|| DslError::Eval(format!("{other} does not name a function"))),
        }
    }
}

impl Default for StandardActions {
    fn default() -> Self {
        Self::new()
    }
}

impl ActionHost for StandardActions {
    fn invoke(
        &mut self,
        name: &str,
        args: &[DslValue],
        target: Option<&JoinPoint>,
        program: &mut Program,
    ) -> Result<DslValue, DslError> {
        match name {
            "LoopUnroll" => {
                let Some(JoinPoint::Loop { function, path, .. }) = target else {
                    return Err(DslError::action(name, "target join point is not a loop"));
                };
                let mode = args
                    .first()
                    .cloned()
                    .unwrap_or(DslValue::Str("full".into()));
                let factor = match (&mode, args.get(1)) {
                    (DslValue::Str(s), _) if s == "full" => None,
                    (DslValue::Str(s), Some(k)) if s == "partial" => {
                        Some(k.as_i64().ok_or_else(|| {
                            DslError::action(name, "partial unroll needs an integer factor")
                        })?)
                    }
                    (DslValue::Int(k), _) => Some(*k),
                    _ => {
                        return Err(DslError::action(
                            name,
                            format!("unsupported unroll mode {mode}"),
                        ))
                    }
                };
                let mut result = Ok(());
                program
                    .edit_function(function, |f| {
                        result = match factor {
                            None => unroll_full(&mut f.body, path),
                            Some(k) => {
                                let k = u64::try_from(k).unwrap_or(0);
                                unroll_by_factor(&mut f.body, path, k)
                            }
                        };
                    })
                    .map_err(|e| DslError::action(name, e))?;
                result.map_err(|e| DslError::action(name, e))?;
                Ok(DslValue::Bool(true))
            }
            "LoopTile" => {
                let Some(JoinPoint::Loop { function, path, .. }) = target else {
                    return Err(DslError::action(name, "target join point is not a loop"));
                };
                let size = args
                    .first()
                    .and_then(DslValue::as_i64)
                    .and_then(|s| u64::try_from(s).ok())
                    .ok_or_else(|| DslError::action(name, "expects a positive tile size"))?;
                let mut result = Ok(());
                program
                    .edit_function(function, |f| {
                        result = antarex_weaver::transform::tile::tile(&mut f.body, path, size);
                    })
                    .map_err(|e| DslError::action(name, e))?;
                result.map_err(|e| DslError::action(name, e))?;
                Ok(DslValue::Bool(true))
            }
            "Inline" => {
                let callee = args
                    .first()
                    .and_then(DslValue::as_str)
                    .map(str::to_string)
                    .or_else(|| match target {
                        Some(JoinPoint::Call { callee, .. }) => Some(callee.clone()),
                        _ => None,
                    })
                    .ok_or_else(|| {
                        DslError::action(name, "expects a callee name or an fCall target")
                    })?;
                let host = target
                    .map(JoinPoint::enclosing_function)
                    .ok_or_else(|| DslError::action(name, "needs a join-point target"))?
                    .to_string();
                let snapshot = program.clone();
                let mut result = Ok(0);
                program
                    .edit_function(&host, |f| {
                        result = antarex_weaver::transform::inline::inline_calls(
                            &mut f.body,
                            &snapshot,
                            &callee,
                        );
                    })
                    .map_err(|e| DslError::action(name, e))?;
                let inlined = result.map_err(|e| DslError::action(name, e))?;
                Ok(DslValue::Int(inlined as i64))
            }
            "Specialize" => {
                let [func, param, value] = args else {
                    return Err(DslError::action(name, "expects (function, param, value)"));
                };
                let function = Self::function_name_of(func)?;
                let param = param
                    .as_str()
                    .ok_or_else(|| DslError::action(name, "param must be a string"))?;
                let ir_value = value
                    .to_ir()
                    .ok_or_else(|| DslError::action(name, "value must be scalar"))?;
                let specialized = specialize(program, &function, param, &ir_value)
                    .map_err(|e| DslError::action(name, e))?;
                let spec_name = specialized.name.clone();
                program.insert(specialized);
                Ok(DslValue::record([
                    ("$func", DslValue::FuncRef(spec_name)),
                    ("origin", DslValue::Str(function)),
                ]))
            }
            "PrepareSpecialize" => {
                let [func, param] = args else {
                    return Err(DslError::action(name, "expects (function, param)"));
                };
                let function = Self::function_name_of(func)?;
                let param = param
                    .as_str()
                    .ok_or_else(|| DslError::action(name, "param must be a string"))?;
                let index = program
                    .function(&function)
                    .ok_or_else(|| {
                        DslError::action(name, format!("unknown function `{function}`"))
                    })?
                    .param_index(param)
                    .ok_or_else(|| {
                        DslError::action(name, format!("`{function}` has no parameter `{param}`"))
                    })?;
                self.store.borrow_mut().prepare(&function, param, index);
                Ok(DslValue::record([
                    ("function", DslValue::Str(function)),
                    ("param", DslValue::Str(param.to_string())),
                    ("index", DslValue::Int(index as i64)),
                ]))
            }
            "AddVersion" => {
                let [prep, func, value] = args else {
                    return Err(DslError::action(
                        name,
                        "expects (prepared, function, value)",
                    ));
                };
                let function = Self::function_name_of(prep)?;
                let specialized = func.as_func_name().ok_or_else(|| {
                    DslError::action(name, "second argument must name a function")
                })?;
                let ir_value = value
                    .to_ir()
                    .ok_or_else(|| DslError::action(name, "dispatch value must be scalar"))?;
                let added = self
                    .store
                    .borrow_mut()
                    .add_version(&function, &ir_value, specialized);
                if !added {
                    return Err(DslError::action(
                        name,
                        format!("function `{function}` was not prepared for versioning"),
                    ));
                }
                Ok(DslValue::Bool(true))
            }
            other => Err(DslError::Unresolved(format!("action `{other}`"))),
        }
    }
}

/// The static weaver: an aspect library plus an action host.
///
/// See the [crate-level example](crate) for typical usage.
pub struct Weaver {
    library: AspectLibrary,
    actions: Box<dyn ActionHost>,
    store: Rc<RefCell<VersionStore>>,
    dynamic_plans: Vec<DynamicPlan>,
}

impl std::fmt::Debug for Weaver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Weaver")
            .field("aspects", &self.library.names())
            .field("dynamic_plans", &self.dynamic_plans.len())
            .finish_non_exhaustive()
    }
}

impl Weaver {
    /// Creates a weaver over `library` with the standard action set.
    pub fn new(library: AspectLibrary) -> Self {
        let actions = StandardActions::new();
        let store = actions.store();
        Weaver {
            library,
            actions: Box::new(actions),
            store,
            dynamic_plans: Vec::new(),
        }
    }

    /// Creates a weaver with a custom action host (the host keeps its own
    /// version store; pass one created via
    /// [`StandardActions::with_store`] to share).
    pub fn with_actions(
        library: AspectLibrary,
        actions: Box<dyn ActionHost>,
        store: Rc<RefCell<VersionStore>>,
    ) -> Self {
        Weaver {
            library,
            actions,
            store,
            dynamic_plans: Vec::new(),
        }
    }

    /// The multi-version dispatch store shared with dynamic weaving.
    pub fn store(&self) -> Rc<RefCell<VersionStore>> {
        Rc::clone(&self.store)
    }

    /// The aspect library.
    pub fn library(&self) -> &AspectLibrary {
        &self.library
    }

    /// Dynamic plans captured so far by `apply dynamic` sections.
    pub fn dynamic_plans(&self) -> &[DynamicPlan] {
        &self.dynamic_plans
    }

    /// Runs an aspect against `program` with positional inputs.
    ///
    /// Returns the aspect's outputs as a record ([`DslValue::Record`]);
    /// aspects without outputs return an empty record.
    ///
    /// # Errors
    ///
    /// Returns [`DslError`] on unknown aspects, arity mismatches, failed
    /// conditions evaluation, or action failures.
    pub fn weave(
        &mut self,
        program: &mut Program,
        aspect: &str,
        inputs: &[DslValue],
    ) -> Result<DslValue, DslError> {
        let mut exec = Exec {
            library: &self.library,
            actions: self.actions.as_mut(),
            plans: &mut self.dynamic_plans,
            depth: 0,
        };
        exec.run_aspect(aspect, inputs, program)
    }

    /// Consumes the weaver, producing the runtime half: a
    /// [`DynamicWeaver`](crate::dynamic::DynamicWeaver) that enacts the
    /// captured `apply dynamic` plans while the program runs.
    pub fn into_dynamic(self) -> crate::dynamic::DynamicWeaver {
        crate::dynamic::DynamicWeaver::new(
            self.library,
            self.actions,
            self.store,
            self.dynamic_plans,
        )
    }
}

const MAX_ASPECT_DEPTH: usize = 64;

pub(crate) struct Exec<'a> {
    pub library: &'a AspectLibrary,
    pub actions: &'a mut dyn ActionHost,
    pub plans: &'a mut Vec<DynamicPlan>,
    pub depth: usize,
}

impl Exec<'_> {
    pub fn run_aspect(
        &mut self,
        name: &str,
        inputs: &[DslValue],
        program: &mut Program,
    ) -> Result<DslValue, DslError> {
        if self.depth >= MAX_ASPECT_DEPTH {
            return Err(DslError::Eval(format!(
                "aspect call depth exceeded {MAX_ASPECT_DEPTH} (recursive aspects?)"
            )));
        }
        let aspect = self
            .library
            .get(name)
            .ok_or_else(|| DslError::Unresolved(format!("aspect `{name}`")))?
            .clone();
        if inputs.len() != aspect.inputs.len() {
            return Err(DslError::Eval(format!(
                "aspect `{name}` expects {} inputs, got {}",
                aspect.inputs.len(),
                inputs.len()
            )));
        }
        let mut env = Env::new();
        for (param, value) in aspect.inputs.iter().zip(inputs) {
            env.bind(param.clone(), value.clone());
        }
        self.depth += 1;
        let result = self.run_items(&aspect.items, &mut env, program);
        self.depth -= 1;
        result?;
        Ok(DslValue::record(aspect.outputs.iter().map(|out| {
            (out.clone(), env.get(out).cloned().unwrap_or(DslValue::Null))
        })))
    }

    fn run_items(
        &mut self,
        items: &[Item],
        env: &mut Env,
        program: &mut Program,
    ) -> Result<(), DslError> {
        let mut pending_select: Option<&Select> = None;
        let mut pending_condition: Option<&DExpr> = None;
        let mut i = 0;
        while i < items.len() {
            match &items[i] {
                Item::Call(call) => {
                    let result = self.run_call(call, env, None, program)?;
                    if let Some(label) = &call.label {
                        env.bind(label.clone(), result);
                    }
                }
                Item::Select(select) => {
                    pending_select = Some(select);
                    pending_condition = None;
                }
                Item::Condition(cond) => {
                    pending_condition = Some(cond);
                }
                Item::Apply(apply) => {
                    // condition may follow the apply (paper style)
                    let condition = if let Some(Item::Condition(cond)) = items.get(i + 1) {
                        i += 1;
                        Some(cond)
                    } else {
                        pending_condition.take()
                    };
                    let select = pending_select.ok_or_else(|| {
                        DslError::Eval("`apply` without a preceding `select`".into())
                    })?;
                    if apply.dynamic {
                        self.plans.push(DynamicPlan {
                            select: select.clone(),
                            condition: condition.cloned(),
                            actions: apply.actions.clone(),
                            env: env.clone(),
                        });
                    } else {
                        self.exec_static_apply(select, condition, apply, env, program)?;
                    }
                }
            }
            i += 1;
        }
        Ok(())
    }

    fn exec_static_apply(
        &mut self,
        select: &Select,
        condition: Option<&DExpr>,
        apply: &Apply,
        env: &Env,
        program: &mut Program,
    ) -> Result<(), DslError> {
        let mut matches = self.eval_select(select, env, program)?;
        // Reverse document order so structural edits (inserts, unrolls) do
        // not invalidate the paths of matches processed later.
        matches.sort_by(|a, b| {
            let ka = (a.0.enclosing_function().to_string(), a.0.path().cloned());
            let kb = (b.0.enclosing_function().to_string(), b.0.path().cloned());
            kb.cmp(&ka)
        });
        for (jp, jp_env) in matches {
            if let Some(cond) = condition {
                if !eval(cond, &jp_env)?.truthy() {
                    continue;
                }
            }
            for action in &apply.actions {
                self.exec_action(action, &jp_env, Some(&jp), program)?;
            }
        }
        Ok(())
    }

    pub fn exec_action(
        &mut self,
        action: &Action,
        env: &Env,
        target: Option<&JoinPoint>,
        program: &mut Program,
    ) -> Result<(), DslError> {
        match action {
            Action::Insert { before, template } => {
                let jp = target.ok_or_else(|| {
                    DslError::Eval("`insert` requires a join-point target".into())
                })?;
                let path = jp.path().ok_or_else(|| {
                    DslError::Eval(format!(
                        "`insert` target `{}` has no statement position",
                        jp.kind_name()
                    ))
                })?;
                let code = render(template, env)?;
                let stmts = parse_stmts(&code)?;
                let function = jp.enclosing_function().to_string();
                let mut result = Ok(());
                program
                    .edit_function(&function, |f| {
                        result = if *before {
                            insert_before(&mut f.body, path, stmts)
                        } else {
                            insert_after(&mut f.body, path, stmts)
                        };
                    })
                    .map_err(DslError::from)?;
                result.map_err(DslError::from)
            }
            Action::Do { name, args } => {
                let args = args
                    .iter()
                    .map(|a| eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                self.actions.invoke(name, &args, target, program)?;
                Ok(())
            }
            Action::Call(call) => {
                let result = self.run_call(call, env, target, program)?;
                // labels inside apply bodies bind into a scratch copy; the
                // only consumer is subsequent actions of the same apply,
                // which receive the same env — so we cannot bind here.
                // Dynamic bodies (the Fig. 4 pattern) are executed by the
                // dynamic weaver, which threads labels properly.
                let _ = result;
                Ok(())
            }
        }
    }

    /// Executes the actions of one apply body sequentially, threading label
    /// bindings (used for dynamic plans, where `call spOut: ...` results
    /// feed later actions).
    pub fn exec_actions_threaded(
        &mut self,
        actions: &[Action],
        env: &mut Env,
        target: Option<&JoinPoint>,
        program: &mut Program,
    ) -> Result<(), DslError> {
        for action in actions {
            match action {
                Action::Call(call) => {
                    let result = self.run_call(call, env, target, program)?;
                    if let Some(label) = &call.label {
                        env.bind(label.clone(), result);
                    }
                }
                other => self.exec_action(other, env, target, program)?,
            }
        }
        Ok(())
    }

    fn run_call(
        &mut self,
        call: &CallAspect,
        env: &Env,
        target: Option<&JoinPoint>,
        program: &mut Program,
    ) -> Result<DslValue, DslError> {
        let args = call
            .args
            .iter()
            .map(|a| eval(a, env))
            .collect::<Result<Vec<_>, _>>()?;
        if self.library.contains(&call.name) {
            self.run_aspect(&call.name, &args, program)
        } else {
            self.actions.invoke(&call.name, &args, target, program)
        }
    }

    pub fn eval_select(
        &mut self,
        select: &Select,
        env: &Env,
        program: &Program,
    ) -> Result<Vec<(JoinPoint, Env)>, DslError> {
        let scope: Option<String> = match &select.root {
            Some(var) => {
                let value = env
                    .get(var)
                    .ok_or_else(|| DslError::Unresolved(var.clone()))?;
                Some(
                    value
                        .as_func_name()
                        .ok_or_else(|| {
                            DslError::Eval(format!("`{var}` does not designate a function"))
                        })?
                        .to_string(),
                )
            }
            None => None,
        };
        let all = collect_join_points(program);
        for link in &select.links {
            if !known_kind(&link.kind) {
                return Err(DslError::Eval(format!(
                    "unknown join-point kind `{}` in select",
                    link.kind
                )));
            }
        }
        let first = select
            .links
            .first()
            .ok_or_else(|| DslError::Eval("empty selector".into()))?;
        let mut current: Vec<(JoinPoint, Env)> = Vec::new();
        for jp in &all {
            if jp.kind_name() != kind_of(&first.kind) {
                continue;
            }
            if let Some(scope) = &scope {
                let in_scope = match jp {
                    JoinPoint::Function { name } => name == scope,
                    other => other.enclosing_function() == scope,
                };
                if !in_scope {
                    continue;
                }
            }
            if self.filter_passes(first, jp, env)? {
                let mut jp_env = env.clone();
                bind_join_point(&mut jp_env, jp);
                current.push((jp.clone(), jp_env));
            }
        }
        for link in &select.links[1..] {
            let mut next = Vec::new();
            for (parent, parent_env) in &current {
                for jp in &all {
                    if jp.kind_name() != kind_of(&link.kind) {
                        continue;
                    }
                    if !related(parent, jp) {
                        continue;
                    }
                    if self.filter_passes(link, jp, parent_env)? {
                        let mut jp_env = parent_env.clone();
                        bind_join_point(&mut jp_env, jp);
                        next.push((jp.clone(), jp_env));
                    }
                }
            }
            current = next;
        }
        Ok(current)
    }

    fn filter_passes(&self, link: &SelLink, jp: &JoinPoint, env: &Env) -> Result<bool, DslError> {
        match &link.filter {
            None => Ok(true),
            Some(Filter::Name(name)) => Ok(matches!(
                attr_of(&DslValue::Jp(jp.clone()), "name"),
                DslValue::Str(s) if &s == name
            )),
            Some(Filter::Expr(expr)) => {
                let env = env.with_candidate(DslValue::Jp(jp.clone()));
                Ok(eval(expr, &env)?.truthy())
            }
        }
    }
}

/// Maps selector link names to join-point kind names (`function` and
/// `func` are synonyms, matching common LARA usage).
fn kind_of(link_kind: &str) -> &str {
    match link_kind {
        "func" | "function" => "function",
        "call" | "fCall" => "fCall",
        other => other,
    }
}

/// Returns `true` for join-point kinds the selector language knows.
fn known_kind(link_kind: &str) -> bool {
    matches!(kind_of(link_kind), "function" | "fCall" | "loop" | "arg")
}

/// Structural relation between a parent join point and a candidate child.
fn related(parent: &JoinPoint, child: &JoinPoint) -> bool {
    match (parent, child) {
        // anything inside a function
        (JoinPoint::Function { name }, other) => other.enclosing_function() == name,
        // an argument of a specific call site
        (
            JoinPoint::Call {
                function: pf,
                path: pp,
                callee: pc,
                ..
            },
            JoinPoint::Arg {
                function,
                path,
                callee,
                ..
            },
        ) => pf == function && pp == path && pc == callee,
        // statements nested inside a loop
        (
            JoinPoint::Loop {
                function: pf,
                path: pp,
                ..
            },
            other,
        ) => other.enclosing_function() == pf && other.path().is_some_and(|p| p.is_inside(pp)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{FIG2_PROFILE_ARGUMENTS, FIG3_UNROLL_INNERMOST_LOOPS};
    use crate::parser::parse_aspects;
    use antarex_ir::interp::{ExecEnv, Interp};
    use antarex_ir::parse_program;
    use antarex_ir::printer::print_program;
    use antarex_ir::value::Value as IrValue;
    use std::cell::RefCell;

    #[test]
    fn fig2_weaves_profiling_calls() {
        let lib = parse_aspects(FIG2_PROFILE_ARGUMENTS).unwrap();
        let mut program = parse_program(
            "double kernel(double a[], int size) { return a[0] + size; }
             void main_loop(double buf[]) {
                 kernel(buf, 64);
                 other(buf);
                 kernel(buf, 128);
             }",
        )
        .unwrap();
        let mut weaver = Weaver::new(lib);
        weaver
            .weave(
                &mut program,
                "ProfileArguments",
                &[DslValue::from("kernel")],
            )
            .unwrap();
        let text = print_program(&program);
        assert_eq!(
            text.matches("profile_args(").count(),
            2,
            "both kernel call sites instrumented, `other` untouched:\n{text}"
        );
        assert!(
            text.contains("\"kernel\""),
            "funcName spliced inside quotes"
        );
        assert!(text.contains("buf, 64"), "argList spliced raw");
    }

    #[test]
    fn fig2_woven_program_profiles_at_runtime() {
        let lib = parse_aspects(FIG2_PROFILE_ARGUMENTS).unwrap();
        let mut program = parse_program(
            "double kernel(double a[], int size) { return a[0] + size; }
             double main_loop(double buf[]) {
                 double x = kernel(buf, 64);
                 return x + kernel(buf, 128);
             }",
        )
        .unwrap();
        Weaver::new(lib)
            .weave(
                &mut program,
                "ProfileArguments",
                &[DslValue::from("kernel")],
            )
            .unwrap();
        let mut interp = Interp::new(program);
        let seen = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        interp.register_host(
            "profile_args",
            Box::new(move |args| {
                sink.borrow_mut().push(args.to_vec());
                Ok(IrValue::Unit)
            }),
        );
        interp
            .call(
                "main_loop",
                &[IrValue::from(vec![1.0])],
                &mut ExecEnv::new(),
            )
            .unwrap();
        let seen = seen.borrow();
        assert_eq!(seen.len(), 2);
        // name, location, then the actual argument values (array + int)
        assert_eq!(seen[0][0], IrValue::Str("kernel".into()));
        assert!(matches!(seen[0][2], IrValue::Array(_)));
        assert_eq!(seen[0][3], IrValue::Int(64));
        assert_eq!(seen[1][3], IrValue::Int(128));
    }

    #[test]
    fn fig3_unrolls_only_eligible_loops() {
        let lib = parse_aspects(FIG3_UNROLL_INNERMOST_LOOPS).unwrap();
        let mut program = parse_program(
            "int f(int n) {
                 int s = 0;
                 for (int i = 0; i < 8; i++) {           // innermost, 8 <= 16: unrolled
                     s += i;
                 }
                 for (int i = 0; i < 100; i++) {          // 100 > 16: kept
                     s += i;
                 }
                 for (int i = 0; i < 4; i++) {            // not innermost: kept
                     for (int j = 0; j < 2; j++) { s += j; }  // innermost, 2 <= 16: unrolled
                 }
                 for (int i = 0; i < n; i++) { s += i; }  // unknown count: kept
                 return s;
             }",
        )
        .unwrap();
        let mut weaver = Weaver::new(lib);
        weaver
            .weave(
                &mut program,
                "UnrollInnermostLoops",
                &[DslValue::FuncRef("f".into()), DslValue::Int(16)],
            )
            .unwrap();
        let loops = antarex_ir::analysis::loops(&program.function("f").unwrap().body);
        assert_eq!(loops.len(), 3, "8-iter and inner 2-iter loops unrolled");
        // result unchanged
        let mut interp = Interp::new(program);
        let v = interp
            .call("f", &[IrValue::Int(3)], &mut ExecEnv::new())
            .unwrap();
        let expected: i64 = (0..8).sum::<i64>()
            + (0..100).sum::<i64>()
            + 4 * (0..2).sum::<i64>()
            + (0..3).sum::<i64>();
        assert_eq!(v, IrValue::Int(expected));
    }

    #[test]
    fn condition_before_apply_also_works() {
        let lib = parse_aspects(
            "aspectdef A
               select fCall end
               condition $fCall.name == 'kernel' end
               apply
                 insert before %{probe();}%;
               end
             end",
        )
        .unwrap();
        let mut program = parse_program("void f() { kernel(); other(); }").unwrap();
        Weaver::new(lib).weave(&mut program, "A", &[]).unwrap();
        let text = print_program(&program);
        assert_eq!(text.matches("probe();").count(), 1);
    }

    #[test]
    fn insert_after_works() {
        let lib = parse_aspects(
            "aspectdef A select fCall{'kernel'} end apply insert after %{post();}%; end end",
        )
        .unwrap();
        let mut program = parse_program("void f() { kernel(); tail(); }").unwrap();
        Weaver::new(lib).weave(&mut program, "A", &[]).unwrap();
        let f = program.function("f").unwrap();
        let printed = print_program(&program);
        let kernel_pos = printed.find("kernel();").unwrap();
        let post_pos = printed.find("post();").unwrap();
        let tail_pos = printed.find("tail();").unwrap();
        assert!(kernel_pos < post_pos && post_pos < tail_pos);
        assert_eq!(f.body.len(), 3);
    }

    #[test]
    fn multiple_inserts_in_one_block_do_not_clobber() {
        let lib =
            parse_aspects("aspectdef A select fCall end apply insert before %{p();}%; end end")
                .unwrap();
        let mut program = parse_program("void f() { a(); b(); c(); }").unwrap();
        Weaver::new(lib).weave(&mut program, "A", &[]).unwrap();
        let text = print_program(&program);
        // probes also match nothing new; each original call gets one probe
        assert_eq!(text.matches("p();").count(), 3);
        let order: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| l.ends_with("();"))
            .collect();
        assert_eq!(order, vec!["p();", "a();", "p();", "b();", "p();", "c();"]);
    }

    #[test]
    fn apply_without_select_is_an_error() {
        let lib = parse_aspects("aspectdef A apply do X(); end end").unwrap();
        let mut program = parse_program("void f() { }").unwrap();
        let err = Weaver::new(lib).weave(&mut program, "A", &[]).unwrap_err();
        assert!(err.to_string().contains("without a preceding `select`"));
    }

    #[test]
    fn unknown_aspect_and_arity_errors() {
        let lib = parse_aspects("aspectdef A input x end end").unwrap();
        let mut program = parse_program("void f() { }").unwrap();
        let mut weaver = Weaver::new(lib);
        assert!(matches!(
            weaver.weave(&mut program, "Ghost", &[]),
            Err(DslError::Unresolved(_))
        ));
        assert!(weaver.weave(&mut program, "A", &[]).is_err(), "arity");
    }

    #[test]
    fn aspect_outputs_returned_as_record() {
        let lib = parse_aspects(
            "aspectdef A
               input f end
               output prep end
               call prep: PrepareSpecialize(f, 'size');
             end",
        )
        .unwrap();
        let mut program =
            parse_program("double kernel(double a[], int size) { return size; }").unwrap();
        let out = Weaver::new(lib)
            .weave(&mut program, "A", &[DslValue::from("kernel")])
            .unwrap();
        let DslValue::Record(fields) = out else {
            panic!()
        };
        let DslValue::Record(prep) = &fields["prep"] else {
            panic!()
        };
        assert_eq!(prep["function"], DslValue::Str("kernel".into()));
        assert_eq!(prep["index"], DslValue::Int(1));
    }

    #[test]
    fn dynamic_apply_captures_plan_without_executing() {
        let lib = parse_aspects(crate::figures::FIG4_SPECIALIZE_KERNEL).unwrap();
        let mut program = parse_program(
            "double kernel(double a[], int size) {
                 double s = 0.0;
                 for (int i = 0; i < size; i++) { s += a[i]; }
                 return s;
             }
             void run(double buf[]) { kernel(buf, 8); }",
        )
        .unwrap();
        let before = program.len();
        let mut weaver = Weaver::new(lib);
        weaver
            .weave(
                &mut program,
                "SpecializeKernel",
                &[DslValue::Int(4), DslValue::Int(64)],
            )
            .unwrap();
        assert_eq!(program.len(), before, "no specialization at design time");
        assert_eq!(weaver.dynamic_plans().len(), 1);
        assert!(weaver.store().borrow().is_prepared("kernel"));
    }

    #[test]
    fn aspect_can_call_aspect() {
        let lib = parse_aspects(&format!(
            "{FIG3_UNROLL_INNERMOST_LOOPS}
             aspectdef Driver
               input $func end
               call UnrollInnermostLoops($func, 32);
             end"
        ))
        .unwrap();
        let mut program = parse_program(
            "int f() { int s = 0; for (int i = 0; i < 4; i++) { s += i; } return s; }",
        )
        .unwrap();
        Weaver::new(lib)
            .weave(&mut program, "Driver", &[DslValue::FuncRef("f".into())])
            .unwrap();
        assert!(antarex_ir::analysis::loops(&program.function("f").unwrap().body).is_empty());
    }

    #[test]
    fn loop_tile_action_from_aspect() {
        let lib = parse_aspects(
            "aspectdef TileLoops
               input $func, size end
               select $func.loop{type=='for'} end
               apply do LoopTile(size); end
               condition $loop.numIter >= 16 end
             end",
        )
        .unwrap();
        let mut program = parse_program(
            "int f() { int s = 0; for (int i = 0; i < 32; i++) { s += i; } return s; }",
        )
        .unwrap();
        Weaver::new(lib)
            .weave(
                &mut program,
                "TileLoops",
                &[DslValue::FuncRef("f".into()), DslValue::Int(8)],
            )
            .unwrap();
        // the loop is now a tile nest
        let loops = antarex_ir::analysis::loops(&program.function("f").unwrap().body);
        assert_eq!(loops.len(), 2, "outer tile loop + inner intra-tile loop");
        let out = Interp::new(program)
            .call("f", &[], &mut ExecEnv::new())
            .unwrap();
        assert_eq!(out, IrValue::Int((0..32).sum()));
    }

    #[test]
    fn inline_action_from_aspect() {
        let lib = parse_aspects(
            "aspectdef InlineHelpers
               select fCall{'sq'} end
               apply do Inline(); end
             end",
        )
        .unwrap();
        let mut program = parse_program(
            "double sq(double x) { return x * x; }
             double f(double u) { return sq(u) + sq(3.0); }",
        )
        .unwrap();
        Weaver::new(lib)
            .weave(&mut program, "InlineHelpers", &[])
            .unwrap();
        let text = print_program(&program);
        let f_text = text.split("double f").nth(1).unwrap();
        assert!(!f_text.contains("sq("), "calls inlined:\n{text}");
        let out = Interp::new(program)
            .call("f", &[IrValue::Float(2.0)], &mut ExecEnv::new())
            .unwrap();
        assert_eq!(out, IrValue::Float(13.0));
    }

    #[test]
    fn unknown_action_is_unresolved() {
        let lib = parse_aspects("aspectdef A select fCall end apply do Warp(); end end").unwrap();
        let mut program = parse_program("void f() { g(); }").unwrap();
        let err = Weaver::new(lib).weave(&mut program, "A", &[]).unwrap_err();
        assert!(matches!(err, DslError::Unresolved(_)));
    }

    #[test]
    fn unknown_selector_kind_is_an_error() {
        let lib = parse_aspects("aspectdef A select warp end apply do X(); end end").unwrap();
        let mut program = parse_program("void f() { g(); }").unwrap();
        let err = Weaver::new(lib).weave(&mut program, "A", &[]).unwrap_err();
        assert!(err.to_string().contains("unknown join-point kind"), "{err}");
    }

    #[test]
    fn selector_loop_filter_by_expr() {
        let lib = parse_aspects(
            "aspectdef A
               input $func end
               select $func.loop{numIter >= 10} end
               apply do LoopUnroll('full'); end
             end",
        )
        .unwrap();
        let mut program = parse_program(
            "int f() {
                 int s = 0;
                 for (int i = 0; i < 4; i++) { s += i; }
                 for (int i = 0; i < 12; i++) { s += i; }
                 return s;
             }",
        )
        .unwrap();
        Weaver::new(lib)
            .weave(&mut program, "A", &[DslValue::FuncRef("f".into())])
            .unwrap();
        let loops = antarex_ir::analysis::loops(&program.function("f").unwrap().body);
        assert_eq!(loops.len(), 1, "only the 12-iteration loop unrolled");
    }
}
