//! Abstract syntax of the aspect language.

use std::collections::BTreeMap;

/// A parsed aspect definition (`aspectdef ... end`).
#[derive(Debug, Clone, PartialEq)]
pub struct AspectDef {
    /// Aspect name.
    pub name: String,
    /// Input parameter names (may be `$`-prefixed, e.g. `$func`).
    pub inputs: Vec<String>,
    /// Output names returned as a record after execution.
    pub outputs: Vec<String>,
    /// Body items in source order.
    pub items: Vec<Item>,
}

/// One top-level item of an aspect body.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `select ... end` — establishes the current pointcut.
    Select(Select),
    /// `apply [dynamic] ... end` — actions over the current pointcut.
    Apply(Apply),
    /// `condition ... end` — guard attached to the nearest apply.
    Condition(DExpr),
    /// `call [label:] Aspect(args);` — run another aspect or built-in action.
    Call(CallAspect),
}

/// A pointcut expression, e.g. `fCall{'kernel'}.arg{'size'}` or
/// `$func.loop{type=='for'}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Scope variable the chain is rooted at (`$func` in Fig. 3), or `None`
    /// for program-wide selection.
    pub root: Option<String>,
    /// The chain of join-point links.
    pub links: Vec<SelLink>,
}

/// One link of a pointcut chain: a join-point kind plus optional filter.
#[derive(Debug, Clone, PartialEq)]
pub struct SelLink {
    /// Join-point kind (`fCall`, `loop`, `arg`, `function`).
    pub kind: String,
    /// Filter over the candidate join points.
    pub filter: Option<Filter>,
}

/// A `{...}` filter on a pointcut link.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// `{'kernel'}` — shorthand for `name == 'kernel'`.
    Name(String),
    /// `{type=='for'}` — arbitrary predicate over candidate attributes.
    Expr(DExpr),
}

/// An `apply` section.
#[derive(Debug, Clone, PartialEq)]
pub struct Apply {
    /// `true` for `apply dynamic` (deferred to runtime weaving).
    pub dynamic: bool,
    /// Actions executed per selected join point.
    pub actions: Vec<Action>,
}

/// A weaving action inside `apply`.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `insert before|after %{...}%;`
    Insert {
        /// Splice position relative to the join point.
        before: bool,
        /// Code template with `[[expr]]` holes.
        template: Template,
    },
    /// `do ActionName(args);` — a weaver action on the current join point.
    Do {
        /// Action name (e.g. `LoopUnroll`).
        name: String,
        /// Argument expressions.
        args: Vec<DExpr>,
    },
    /// `call [label:] Aspect(args);`
    Call(CallAspect),
}

/// An aspect (or built-in action) invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CallAspect {
    /// Binding for the invocation result (`spOut` in Fig. 4).
    pub label: Option<String>,
    /// Aspect or built-in action name.
    pub name: String,
    /// Argument expressions.
    pub args: Vec<DExpr>,
}

/// A code template: literal text with expression splices.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// Parts in order.
    pub parts: Vec<TplPart>,
}

/// One part of a [`Template`].
#[derive(Debug, Clone, PartialEq)]
pub enum TplPart {
    /// Literal text.
    Text(String),
    /// `[[expr]]` splice.
    Splice(DExpr),
}

/// Unary operators of the aspect expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DUnOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
}

/// Binary operators of the aspect expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// An aspect expression.
#[derive(Debug, Clone, PartialEq)]
pub enum DExpr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// Variable reference (`threshold`, `$fCall`, `spOut`).
    Var(String),
    /// Attribute access (`$fCall.name`, `spOut.$func`).
    Attr(Box<DExpr>, String),
    /// Unary operation.
    Unary(DUnOp, Box<DExpr>),
    /// Binary operation.
    Binary(DBinOp, Box<DExpr>, Box<DExpr>),
}

impl DExpr {
    /// Builds an attribute access.
    pub fn attr(base: DExpr, name: impl Into<String>) -> DExpr {
        DExpr::Attr(Box::new(base), name.into())
    }

    /// Builds a binary expression.
    pub fn binary(op: DBinOp, lhs: DExpr, rhs: DExpr) -> DExpr {
        DExpr::Binary(op, Box::new(lhs), Box::new(rhs))
    }
}

/// A named collection of aspect definitions, as loaded from one or more DSL
/// source files.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AspectLibrary {
    aspects: BTreeMap<String, AspectDef>,
}

impl AspectLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) an aspect definition.
    pub fn insert(&mut self, aspect: AspectDef) -> Option<AspectDef> {
        self.aspects.insert(aspect.name.clone(), aspect)
    }

    /// Looks up an aspect by name.
    pub fn get(&self, name: &str) -> Option<&AspectDef> {
        self.aspects.get(name)
    }

    /// Returns `true` if the library defines this aspect.
    pub fn contains(&self, name: &str) -> bool {
        self.aspects.contains_key(name)
    }

    /// Aspect names in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.aspects.keys().map(String::as_str).collect()
    }

    /// Number of aspects in the library.
    pub fn len(&self) -> usize {
        self.aspects.len()
    }

    /// Returns `true` if the library is empty.
    pub fn is_empty(&self) -> bool {
        self.aspects.is_empty()
    }

    /// Merges another library into this one (later definitions win).
    pub fn merge(&mut self, other: AspectLibrary) {
        self.aspects.extend(other.aspects);
    }
}

impl FromIterator<AspectDef> for AspectLibrary {
    fn from_iter<I: IntoIterator<Item = AspectDef>>(iter: I) -> Self {
        let mut library = AspectLibrary::new();
        for aspect in iter {
            library.insert(aspect);
        }
        library
    }
}

impl Extend<AspectDef> for AspectLibrary {
    fn extend<I: IntoIterator<Item = AspectDef>>(&mut self, iter: I) {
        for aspect in iter {
            self.insert(aspect);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aspect(name: &str) -> AspectDef {
        AspectDef {
            name: name.into(),
            inputs: vec![],
            outputs: vec![],
            items: vec![],
        }
    }

    #[test]
    fn library_insert_lookup_merge() {
        let mut lib: AspectLibrary = [aspect("A"), aspect("B")].into_iter().collect();
        assert_eq!(lib.names(), vec!["A", "B"]);
        assert!(lib.contains("A"));
        let mut other = AspectLibrary::new();
        let mut b2 = aspect("B");
        b2.inputs.push("x".into());
        other.insert(b2);
        other.insert(aspect("C"));
        lib.merge(other);
        assert_eq!(lib.len(), 3);
        assert_eq!(lib.get("B").unwrap().inputs, vec!["x".to_string()]);
    }
}
