//! Code templates: `%{ ... }%` bodies with `[[expr]]` splices.
//!
//! Rendering follows the conventions the paper's Fig. 2 template relies on:
//!
//! * a splice *inside* a string literal (`'[[funcName]]'`) inserts the raw
//!   text of the value, so the quotes in the template win;
//! * a splice *outside* any literal inserts a C literal: strings are quoted
//!   (`[[$fCall.location]]` becomes `"main_loop:0"`), numbers appear
//!   textually;
//! * [`DslValue::Code`] fragments always splice raw — that is how
//!   `[[$fCall.argList]]` re-emits the actual argument expressions so the
//!   profiling call receives the runtime argument *values*.

use crate::ast::{Template, TplPart};
use crate::error::DslError;
use crate::expr::{eval, Env};
use crate::value::DslValue;

/// Parses a raw template body (the text between `%{` and `}%`) into parts.
///
/// # Errors
///
/// Returns [`DslError::Parse`] if a `[[` splice is unterminated or its
/// expression does not parse.
pub fn parse_template(body: &str) -> Result<Template, DslError> {
    let mut parts = Vec::new();
    let mut rest = body;
    while let Some(open) = rest.find("[[") {
        if !rest[..open].is_empty() {
            parts.push(TplPart::Text(rest[..open].to_string()));
        }
        let after = &rest[open + 2..];
        let close = after
            .find("]]")
            .ok_or_else(|| DslError::parse(0, 0, "unterminated `[[` splice in template"))?;
        let expr = crate::parser::parse_dsl_expr(after[..close].trim())?;
        parts.push(TplPart::Splice(expr));
        rest = &after[close + 2..];
    }
    if !rest.is_empty() {
        parts.push(TplPart::Text(rest.to_string()));
    }
    Ok(Template { parts })
}

/// Renders a template against an environment, producing mini-C source text.
///
/// # Errors
///
/// Propagates expression-evaluation errors; splicing [`DslValue::Null`]
/// is an error (the aspect referenced a missing attribute).
pub fn render(template: &Template, env: &Env) -> Result<String, DslError> {
    let mut out = String::new();
    let mut in_single = false;
    let mut in_double = false;
    for part in &template.parts {
        match part {
            TplPart::Text(text) => {
                for c in text.chars() {
                    match c {
                        '\'' if !in_double => in_single = !in_single,
                        '"' if !in_single => in_double = !in_double,
                        _ => {}
                    }
                    out.push(c);
                }
            }
            TplPart::Splice(expr) => {
                let value = eval(expr, env)?;
                let rendered = splice_text(&value, in_single || in_double)?;
                out.push_str(&rendered);
            }
        }
    }
    Ok(out)
}

fn splice_text(value: &DslValue, in_quotes: bool) -> Result<String, DslError> {
    Ok(match value {
        DslValue::Null => {
            return Err(DslError::Eval(
                "cannot splice null into a code template".into(),
            ))
        }
        DslValue::Code(code) => code.clone(),
        DslValue::Str(s) => {
            if in_quotes {
                s.clone()
            } else {
                format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
            }
        }
        DslValue::Int(v) => v.to_string(),
        DslValue::Float(v) => {
            let text = format!("{v}");
            if text.contains('.') || text.contains('e') {
                text
            } else {
                format!("{text}.0")
            }
        }
        DslValue::Bool(b) => i64::from(*b).to_string(),
        other => {
            return Err(DslError::Eval(format!(
                "cannot splice {other} into a code template"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with(pairs: &[(&str, DslValue)]) -> Env {
        let mut env = Env::new();
        for (name, value) in pairs {
            env.bind(*name, value.clone());
        }
        env
    }

    #[test]
    fn parse_splits_text_and_splices() {
        let t = parse_template("a [[x]] b [[y + 1]] c").unwrap();
        assert_eq!(t.parts.len(), 5);
        assert!(matches!(&t.parts[0], TplPart::Text(s) if s == "a "));
        assert!(matches!(&t.parts[1], TplPart::Splice(_)));
    }

    #[test]
    fn unterminated_splice_is_an_error() {
        assert!(parse_template("a [[x b").is_err());
    }

    #[test]
    fn splice_inside_quotes_is_raw() {
        let t = parse_template("f('[[name]]');").unwrap();
        let out = render(&t, &env_with(&[("name", DslValue::Str("kernel".into()))])).unwrap();
        assert_eq!(out, "f('kernel');");
    }

    #[test]
    fn splice_outside_quotes_is_a_literal() {
        let t = parse_template("f([[loc]], [[n]]);").unwrap();
        let out = render(
            &t,
            &env_with(&[
                ("loc", DslValue::Str("main:0".into())),
                ("n", DslValue::Int(4)),
            ]),
        )
        .unwrap();
        assert_eq!(out, "f(\"main:0\", 4);");
    }

    #[test]
    fn code_fragments_splice_raw() {
        let t = parse_template("f([[args]]);").unwrap();
        let out = render(&t, &env_with(&[("args", DslValue::Code("buf, 64".into()))])).unwrap();
        assert_eq!(out, "f(buf, 64);");
    }

    #[test]
    fn fig2_template_renders_parseable_code() {
        let t = parse_template("profile_args('[[funcName]]',\n[[loc]],\n[[args]]);\n").unwrap();
        let out = render(
            &t,
            &env_with(&[
                ("funcName", DslValue::Str("kernel".into())),
                ("loc", DslValue::Str("main_loop:1/0.0".into())),
                ("args", DslValue::Code("buf, 64".into())),
            ]),
        )
        .unwrap();
        let stmts = antarex_ir::parse_stmts(&out).unwrap();
        assert_eq!(stmts.len(), 1);
    }

    #[test]
    fn null_splice_is_an_error() {
        let t = parse_template("f([[x]]);").unwrap();
        assert!(render(&t, &env_with(&[("x", DslValue::Null)])).is_err());
    }

    #[test]
    fn float_splices_relex_as_floats() {
        let t = parse_template("double x = [[v]];").unwrap();
        let out = render(&t, &env_with(&[("v", DslValue::Float(2.0))])).unwrap();
        assert_eq!(out, "double x = 2.0;");
    }
}
