//! Dynamic weaving: enacting `apply dynamic` plans at runtime.
//!
//! A [`DynamicPlan`] is the design-time residue of an `apply dynamic`
//! section (paper Fig. 4): the pointcut, the condition over runtime values
//! (`$arg.runtimeValue >= lowT && ...`), the action body, and the captured
//! environment. A [`DynamicWeaver`] holds the plans and plugs into the
//! mini-C interpreter as a [`Dispatcher`]: before every call it checks the
//! multi-version table (fast path), and on a miss evaluates the plans —
//! possibly specializing the callee for the observed argument value,
//! unrolling it, and registering the new version. This is the paper's
//! split compilation: complexity was offloaded offline, the online step
//! binds code variants using runtime information.

use crate::ast::{Action, AspectLibrary, DExpr, Filter, Select};
use crate::error::DslError;
use crate::expr::{eval, Env};
use crate::interp::{ActionHost, Exec};
use crate::value::DslValue;
use antarex_ir::interp::Dispatcher;
use antarex_ir::value::Value as IrValue;
use antarex_ir::{IrError, Program};
use antarex_weaver::VersionStore;
use std::cell::RefCell;
use std::rc::Rc;

/// A captured `apply dynamic` section awaiting runtime enactment.
#[derive(Debug, Clone)]
pub struct DynamicPlan {
    /// The pointcut (e.g. `fCall{'kernel'}.arg{'size'}`).
    pub select: Select,
    /// Runtime condition guarding the actions.
    pub condition: Option<DExpr>,
    /// Actions to run when the condition holds.
    pub actions: Vec<Action>,
    /// Environment captured at weave time (aspect inputs, labels like
    /// `spCall`).
    pub env: Env,
}

/// Runtime statistics of the dynamic weaver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynamicStats {
    /// Calls redirected via the version table without running any plan.
    pub fast_hits: u64,
    /// Plan bodies executed (specializations performed).
    pub specializations: u64,
    /// Plan condition evaluations that declined to specialize.
    pub declined: u64,
}

/// The runtime half of the weaver: resolves calls against the version
/// table and runs `apply dynamic` plans on misses.
pub struct DynamicWeaver {
    library: AspectLibrary,
    actions: Box<dyn ActionHost>,
    store: Rc<RefCell<VersionStore>>,
    plans: Vec<DynamicPlan>,
    stats: DynamicStats,
}

impl std::fmt::Debug for DynamicWeaver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicWeaver")
            .field("plans", &self.plans.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl DynamicWeaver {
    /// Assembles a dynamic weaver; normally obtained via
    /// [`Weaver::into_dynamic`](crate::interp::Weaver::into_dynamic).
    pub fn new(
        library: AspectLibrary,
        actions: Box<dyn ActionHost>,
        store: Rc<RefCell<VersionStore>>,
        plans: Vec<DynamicPlan>,
    ) -> Self {
        DynamicWeaver {
            library,
            actions,
            store,
            plans,
            stats: DynamicStats::default(),
        }
    }

    /// Runtime statistics so far.
    pub fn stats(&self) -> DynamicStats {
        self.stats
    }

    /// The shared version store.
    pub fn store(&self) -> Rc<RefCell<VersionStore>> {
        Rc::clone(&self.store)
    }

    /// Number of captured plans.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    fn try_plans(
        &mut self,
        callee: &str,
        args: &[IrValue],
        program: &mut Program,
    ) -> Result<(), DslError> {
        let plans = self.plans.clone();
        for plan in &plans {
            let Some(mut env) = match_plan(plan, callee, args, program)? else {
                continue;
            };
            if let Some(cond) = &plan.condition {
                if !eval(cond, &env)?.truthy() {
                    self.stats.declined += 1;
                    continue;
                }
            }
            let mut scratch = Vec::new();
            let mut exec = Exec {
                library: &self.library,
                actions: self.actions.as_mut(),
                plans: &mut scratch,
                depth: 0,
            };
            exec.exec_actions_threaded(&plan.actions, &mut env, None, program)?;
            self.stats.specializations += 1;
        }
        Ok(())
    }
}

/// Matches a plan's pointcut against a concrete call, binding `$fCall` and
/// (for `arg` links) `$arg` with its `runtimeValue`.
fn match_plan(
    plan: &DynamicPlan,
    callee: &str,
    args: &[IrValue],
    program: &Program,
) -> Result<Option<Env>, DslError> {
    let mut links = plan.select.links.iter();
    let Some(call_link) = links.next() else {
        return Ok(None);
    };
    if !matches!(call_link.kind.as_str(), "fCall" | "call") {
        return Ok(None);
    }
    let fcall = DslValue::record([
        ("name", DslValue::Str(callee.to_string())),
        ("numArgs", DslValue::Int(args.len() as i64)),
    ]);
    match &call_link.filter {
        None => {}
        Some(Filter::Name(name)) if name != callee => return Ok(None),
        Some(Filter::Name(_)) => {}
        Some(Filter::Expr(expr)) => {
            let probe = plan.env.with_candidate(fcall.clone());
            if !eval(expr, &probe)?.truthy() {
                return Ok(None);
            }
        }
    }
    let mut env = plan.env.clone();
    env.bind("$fCall", fcall);

    if let Some(arg_link) = links.next() {
        if arg_link.kind != "arg" {
            return Ok(None);
        }
        let function = program.function(callee);
        let mut matched = None;
        for (index, value) in args.iter().enumerate() {
            let formal = function
                .and_then(|f| f.params.get(index))
                .map(|p| p.name.clone())
                .unwrap_or_default();
            let candidate = DslValue::record([
                ("name", DslValue::Str(formal.clone())),
                ("index", DslValue::Int(index as i64)),
                ("runtimeValue", DslValue::from_ir(value)),
            ]);
            let passes = match &arg_link.filter {
                None => true,
                Some(Filter::Name(name)) => name == &formal,
                Some(Filter::Expr(expr)) => {
                    eval(expr, &env.with_candidate(candidate.clone()))?.truthy()
                }
            };
            if passes {
                matched = Some(candidate);
                break;
            }
        }
        match matched {
            Some(candidate) => {
                env.bind("$arg", candidate);
            }
            None => return Ok(None),
        }
    }
    Ok(Some(env))
}

impl Dispatcher for DynamicWeaver {
    fn resolve(
        &mut self,
        callee: &str,
        args: &[IrValue],
        program: &mut Program,
    ) -> Result<Option<String>, IrError> {
        // fast path: an already-registered version
        if let Some(name) = self.store.borrow_mut().resolve(callee, args) {
            self.stats.fast_hits += 1;
            return Ok(Some(name.to_string()));
        }
        if self.plans.is_empty() {
            return Ok(None);
        }
        self.try_plans(callee, args, program)
            .map_err(|e| IrError::Eval(format!("dynamic weaving failed: {e}")))?;
        Ok(self
            .store
            .borrow_mut()
            .resolve(callee, args)
            .map(str::to_string))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{FIG3_UNROLL_INNERMOST_LOOPS, FIG4_SPECIALIZE_KERNEL};
    use crate::interp::Weaver;
    use crate::parser::parse_aspects;
    use antarex_ir::interp::{ExecEnv, Interp};
    use antarex_ir::parse_program;

    const APP: &str = "double kernel(double a[], int size) {
        double s = 0.0;
        for (int i = 0; i < size; i++) { s += a[i] * a[i]; }
        return s;
    }
    double run(double buf[], int n) { return kernel(buf, n); }";

    fn woven_weaver() -> (Weaver, Program) {
        let lib = parse_aspects(&format!(
            "{FIG4_SPECIALIZE_KERNEL}\n{FIG3_UNROLL_INNERMOST_LOOPS}"
        ))
        .unwrap();
        let mut program = parse_program(APP).unwrap();
        let mut weaver = Weaver::new(lib);
        weaver
            .weave(
                &mut program,
                "SpecializeKernel",
                &[DslValue::Int(4), DslValue::Int(64)],
            )
            .unwrap();
        (weaver, program)
    }

    #[test]
    fn fig4_end_to_end_specializes_in_range() {
        let (weaver, program) = woven_weaver();
        let store = weaver.store();
        let mut interp = Interp::new(program);
        interp.set_dispatcher(Box::new(weaver.into_dynamic()));

        let buf = IrValue::from(vec![0.5; 64]);
        let mut env = ExecEnv::new();
        // size 8 in [4, 64]: triggers specialization on first call
        let v1 = interp
            .call("run", &[buf.clone(), IrValue::Int(8)], &mut env)
            .unwrap();
        assert!(interp.program().contains("kernel__size_8"));
        assert_eq!(store.borrow().version_count("kernel"), 1);
        // specialized version is fully unrolled: no loops
        let spec = interp.program().function("kernel__size_8").unwrap();
        assert!(antarex_ir::analysis::loops(&spec.body).is_empty());
        // result identical to generic computation
        let expected = IrValue::Float(0.25 * 8.0);
        assert_eq!(v1, expected);
    }

    #[test]
    fn fig4_out_of_range_values_not_specialized() {
        let (weaver, program) = woven_weaver();
        let mut interp = Interp::new(program);
        interp.set_dispatcher(Box::new(weaver.into_dynamic()));
        let buf = IrValue::from(vec![1.0; 128]);
        interp
            .call("run", &[buf, IrValue::Int(128)], &mut ExecEnv::new())
            .unwrap();
        assert!(
            !interp.program().contains("kernel__size_128"),
            "128 > highT=64"
        );
    }

    #[test]
    fn fig4_second_call_hits_version_cache() {
        let (weaver, program) = woven_weaver();
        let mut interp = Interp::new(program);
        interp.set_dispatcher(Box::new(weaver.into_dynamic()));
        let buf = IrValue::from(vec![1.0; 16]);
        for _ in 0..3 {
            interp
                .call("run", &[buf.clone(), IrValue::Int(16)], &mut ExecEnv::new())
                .unwrap();
        }
        let dispatcher = interp.take_dispatcher().unwrap();
        // we cannot downcast the box easily; re-check via program state:
        // exactly one specialized version despite three calls
        let names: Vec<&str> = interp
            .program()
            .function_names()
            .into_iter()
            .filter(|n| n.starts_with("kernel__"))
            .collect();
        assert_eq!(names, vec!["kernel__size_16"]);
        drop(dispatcher);
    }

    #[test]
    fn specialized_version_is_cheaper() {
        let (weaver, program) = woven_weaver();
        let mut interp = Interp::new(program.clone());
        interp.set_dispatcher(Box::new(weaver.into_dynamic()));
        let buf = IrValue::from(vec![0.25; 32]);

        // warm up: create the version
        interp
            .call("run", &[buf.clone(), IrValue::Int(32)], &mut ExecEnv::new())
            .unwrap();
        // measure specialized
        let mut env_spec = ExecEnv::new();
        interp
            .call("run", &[buf.clone(), IrValue::Int(32)], &mut env_spec)
            .unwrap();
        // measure generic (no dispatcher)
        let mut plain = Interp::new(program);
        let mut env_gen = ExecEnv::new();
        plain
            .call("run", &[buf, IrValue::Int(32)], &mut env_gen)
            .unwrap();
        assert!(
            env_spec.stats.cost < env_gen.stats.cost,
            "specialized {} !< generic {}",
            env_spec.stats.cost,
            env_gen.stats.cost
        );
    }

    #[test]
    fn distinct_values_get_distinct_versions() {
        let (weaver, program) = woven_weaver();
        let mut interp = Interp::new(program);
        interp.set_dispatcher(Box::new(weaver.into_dynamic()));
        for size in [4i64, 8, 12] {
            let buf = IrValue::from(vec![1.0; size as usize]);
            interp
                .call("run", &[buf, IrValue::Int(size)], &mut ExecEnv::new())
                .unwrap();
        }
        let versions = interp
            .program()
            .function_names()
            .into_iter()
            .filter(|n| n.starts_with("kernel__"))
            .count();
        assert_eq!(versions, 3);
    }

    #[test]
    fn plan_with_expr_filters_matches() {
        let lib = parse_aspects(
            "aspectdef A
               select fCall{name == 'kernel'}.arg{index == 1} end
               apply dynamic
                 call spOut: Specialize($fCall, $arg.name, $arg.runtimeValue);
                 call AddVersion(prep, spOut.$func, $arg.runtimeValue);
               end
               condition $arg.runtimeValue > 0 end
             end",
        )
        .unwrap();
        let mut program = parse_program(APP).unwrap();
        let mut weaver = Weaver::new(lib);
        // bind `prep` via a custom pre-step: prepare manually through store
        weaver.store().borrow_mut().prepare("kernel", "size", 1);
        // `prep` must resolve inside the plan env: weave a wrapper aspect
        // that binds it is overkill here; instead exercise the error path:
        weaver.weave(&mut program, "A", &[]).unwrap();
        let mut interp = Interp::new(program);
        interp.set_dispatcher(Box::new(weaver.into_dynamic()));
        let buf = IrValue::from(vec![1.0; 4]);
        // `prep` is unbound -> dynamic weaving fails loudly, not silently
        let err = interp
            .call("run", &[buf, IrValue::Int(4)], &mut ExecEnv::new())
            .unwrap_err();
        assert!(err.to_string().contains("dynamic weaving failed"));
    }

    #[test]
    fn no_plans_is_a_no_op_dispatcher() {
        let lib =
            parse_aspects("aspectdef A select fCall end apply insert before %{p();}%; end end")
                .unwrap();
        let weaver = Weaver::new(lib);
        let mut dynamic = weaver.into_dynamic();
        let mut program = parse_program(APP).unwrap();
        let resolved = dynamic
            .resolve("kernel", &[IrValue::Int(1)], &mut program)
            .unwrap();
        assert_eq!(resolved, None);
        assert_eq!(dynamic.stats(), DynamicStats::default());
    }
}
