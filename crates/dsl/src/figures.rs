//! The verbatim LARA listings from the paper (Figs. 2–4).
//!
//! These constants reproduce the aspect code printed in Silvano et al.,
//! DATE 2016, character-for-character (modulo the two-column line breaks).
//! They are used throughout the workspace: the DSL test suite proves they
//! parse, the integration tests prove they weave, and the benchmark harness
//! measures their effect.

/// Paper Fig. 2: *"Example of LARA aspect for profiling."*
///
/// Injects a call to an external C profiling library before every call to
/// the function named by the `funcName` input, passing the callee name, the
/// call location, and the actual argument values.
pub const FIG2_PROFILE_ARGUMENTS: &str = "aspectdef ProfileArguments
input funcName end
select fCall end
apply
insert before %{profile_args('[[funcName]]',
[[$fCall.location]],
[[$fCall.argList]]);
}%;
end
condition $fCall.name == funcName end
end";

/// Paper Fig. 3: *"Example of LARA aspect for loop unrolling."*
///
/// Fully unrolls innermost `for` loops whose iteration count is statically
/// known and no greater than the `threshold` input.
pub const FIG3_UNROLL_INNERMOST_LOOPS: &str = "aspectdef UnrollInnermostLoops
input $func, threshold end
select $func.loop{type=='for'} end
apply
do LoopUnroll('full');
end
condition
$loop.isInnermost && $loop.numIter <= threshold
end
end";

/// Paper Fig. 4: *"Example of LARA aspect with dynamic weaving."*
///
/// Statically prepares calls to `kernel` for multi-versioning, then — at
/// runtime — specializes the function for the observed value of its `size`
/// argument whenever that value falls within `[lowT, highT]`, unrolls the
/// now-constant loops of the specialized clone, and registers the clone as
/// a dispatchable version.
pub const FIG4_SPECIALIZE_KERNEL: &str = "aspectdef SpecializeKernel
input lowT, highT end

call spCall: PrepareSpecialize('kernel','size');

select fCall{'kernel'}.arg{'size'} end
apply dynamic
call spOut : Specialize($fCall, $arg.name,
$arg.runtimeValue);
call UnrollInnermostLoops(spOut.$func,
$arg.runtimeValue);
call AddVersion(spCall, spOut.$func,
$arg.runtimeValue);
end
condition
$arg.runtimeValue >= lowT &&
$arg.runtimeValue <= highT
end
end";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_aspects;

    #[test]
    fn all_three_figures_parse() {
        let all = format!(
            "{FIG2_PROFILE_ARGUMENTS}\n{FIG3_UNROLL_INNERMOST_LOOPS}\n{FIG4_SPECIALIZE_KERNEL}"
        );
        let lib = parse_aspects(&all).unwrap();
        assert_eq!(
            lib.names(),
            vec![
                "ProfileArguments",
                "SpecializeKernel",
                "UnrollInnermostLoops"
            ]
        );
    }
}
