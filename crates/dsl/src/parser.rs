//! Parser for the aspect language.
//!
//! Grammar (aligned with the LARA listings in the paper, Figs. 2–4):
//!
//! ```text
//! file      := aspectdef*
//! aspectdef := 'aspectdef' IDENT item* 'end'
//! item      := 'input' names 'end' | 'output' names 'end'
//!            | 'select' selector 'end'
//!            | 'apply' 'dynamic'? action* 'end'
//!            | 'condition' expr 'end'
//!            | callstmt
//! selector  := ['$'IDENT '.'] link ('.' link)*
//! link      := IDENT ['{' (STRING | expr) '}']
//! action    := 'insert' ('before'|'after') TEMPLATE ';'
//!            | 'do' IDENT '(' args ')' ';'
//!            | callstmt
//! callstmt  := 'call' [IDENT ':'] IDENT '(' args ')' ';'
//! expr      := JavaScript-like expression over inputs, join-point
//!              attributes and call results
//! ```

use crate::ast::{
    Action, Apply, AspectDef, CallAspect, DBinOp, DExpr, DUnOp, Filter, Item, SelLink, Select,
};
use crate::error::DslError;
use crate::lexer::{lex, Tok, Token};
use crate::template::parse_template;

/// Parses one or more `aspectdef`s into a library.
///
/// # Errors
///
/// Returns [`DslError::Parse`] with position information on syntax errors.
///
/// # Examples
///
/// ```
/// use antarex_dsl::parse_aspects;
///
/// # fn main() -> Result<(), antarex_dsl::DslError> {
/// let lib = parse_aspects(
///     "aspectdef UnrollInnermostLoops
///        input $func, threshold end
///        select $func.loop{type=='for'} end
///        apply
///          do LoopUnroll('full');
///        end
///        condition
///          $loop.isInnermost && $loop.numIter <= threshold
///        end
///      end",
/// )?;
/// assert!(lib.contains("UnrollInnermostLoops"));
/// # Ok(())
/// # }
/// ```
pub fn parse_aspects(source: &str) -> Result<crate::ast::AspectLibrary, DslError> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let mut library = crate::ast::AspectLibrary::new();
    while !parser.at_end() {
        library.insert(parser.aspectdef()?);
    }
    Ok(library)
}

/// Parses a single aspect expression (used by templates and tests).
///
/// # Errors
///
/// Returns [`DslError::Parse`] on syntax errors or trailing input.
pub fn parse_dsl_expr(source: &str) -> Result<DExpr, DslError> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.expr()?;
    if !parser.at_end() {
        return Err(parser.err("trailing input after expression"));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn at_end(&self) -> bool {
        matches!(self.peek().tok, Tok::Eof)
    }

    fn bump(&mut self) -> Token {
        let token = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        token
    }

    fn err(&self, message: impl Into<String>) -> DslError {
        let token = self.peek();
        DslError::parse(token.line, token.col, message)
    }

    fn eat_punct(&mut self, punct: &str) -> bool {
        if matches!(&self.peek().tok, Tok::Punct(p) if *p == punct) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, punct: &str) -> Result<(), DslError> {
        if self.eat_punct(punct) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{punct}`")))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(name) if name == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), DslError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn ident(&mut self) -> Result<String, DslError> {
        match &self.peek().tok {
            Tok::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn aspectdef(&mut self) -> Result<AspectDef, DslError> {
        self.expect_keyword("aspectdef")?;
        let name = self.ident()?;
        let mut aspect = AspectDef {
            name,
            inputs: vec![],
            outputs: vec![],
            items: vec![],
        };
        loop {
            if self.eat_keyword("end") {
                return Ok(aspect);
            }
            if self.at_end() {
                return Err(self.err("unexpected end of input inside aspectdef"));
            }
            if self.eat_keyword("input") {
                aspect.inputs = self.name_list()?;
                continue;
            }
            if self.eat_keyword("output") {
                aspect.outputs = self.name_list()?;
                continue;
            }
            if self.eat_keyword("select") {
                aspect.items.push(Item::Select(self.selector()?));
                self.expect_keyword("end")?;
                continue;
            }
            if self.eat_keyword("apply") {
                let dynamic = self.eat_keyword("dynamic");
                let mut actions = Vec::new();
                while !self.eat_keyword("end") {
                    if self.at_end() {
                        return Err(self.err("unexpected end of input inside apply"));
                    }
                    actions.push(self.action()?);
                }
                aspect.items.push(Item::Apply(Apply { dynamic, actions }));
                continue;
            }
            if self.eat_keyword("condition") {
                let expr = self.expr()?;
                self.expect_keyword("end")?;
                aspect.items.push(Item::Condition(expr));
                continue;
            }
            if self.at_keyword("call") {
                let call = self.call_stmt()?;
                aspect.items.push(Item::Call(call));
                continue;
            }
            return Err(self.err(
                "expected `input`, `output`, `select`, `apply`, `condition`, `call` or `end`",
            ));
        }
    }

    fn name_list(&mut self) -> Result<Vec<String>, DslError> {
        let mut names = vec![self.ident()?];
        while self.eat_punct(",") {
            names.push(self.ident()?);
        }
        self.expect_keyword("end")?;
        Ok(names)
    }

    fn selector(&mut self) -> Result<Select, DslError> {
        let first = self.ident()?;
        let (root, first_kind) = if first.starts_with('$') {
            self.expect_punct(".")?;
            (Some(first), self.ident()?)
        } else {
            (None, first)
        };
        let mut links = vec![SelLink {
            kind: first_kind,
            filter: self.filter()?,
        }];
        while self.eat_punct(".") {
            let kind = self.ident()?;
            links.push(SelLink {
                kind,
                filter: self.filter()?,
            });
        }
        Ok(Select { root, links })
    }

    fn filter(&mut self) -> Result<Option<Filter>, DslError> {
        if !self.eat_punct("{") {
            return Ok(None);
        }
        // `{'kernel'}` name shorthand
        if let Tok::Str(name) = &self.peek().tok {
            if matches!(self.peek2(), Tok::Punct("}")) {
                let name = name.clone();
                self.bump();
                self.bump();
                return Ok(Some(Filter::Name(name)));
            }
        }
        let expr = self.expr()?;
        self.expect_punct("}")?;
        Ok(Some(Filter::Expr(expr)))
    }

    fn action(&mut self) -> Result<Action, DslError> {
        if self.eat_keyword("insert") {
            let before = if self.eat_keyword("before") {
                true
            } else if self.eat_keyword("after") {
                false
            } else {
                return Err(self.err("expected `before` or `after`"));
            };
            let template = match self.bump().tok {
                Tok::Template(body) => parse_template(&body)?,
                _ => return Err(self.err("expected a `%{...}%` template")),
            };
            self.expect_punct(";")?;
            return Ok(Action::Insert { before, template });
        }
        if self.eat_keyword("do") {
            let name = self.ident()?;
            let args = self.arg_list()?;
            self.expect_punct(";")?;
            return Ok(Action::Do { name, args });
        }
        if self.at_keyword("call") {
            return Ok(Action::Call(self.call_stmt()?));
        }
        Err(self.err("expected `insert`, `do` or `call`"))
    }

    fn call_stmt(&mut self) -> Result<CallAspect, DslError> {
        self.expect_keyword("call")?;
        let first = self.ident()?;
        let (label, name) = if self.eat_punct(":") {
            (Some(first), self.ident()?)
        } else {
            (None, first)
        };
        let args = self.arg_list()?;
        self.expect_punct(";")?;
        Ok(CallAspect { label, name, args })
    }

    fn arg_list(&mut self) -> Result<Vec<DExpr>, DslError> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if self.eat_punct(")") {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat_punct(")") {
                return Ok(args);
            }
            self.expect_punct(",")?;
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<DExpr, DslError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<DExpr, DslError> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct("||") {
            let rhs = self.and_expr()?;
            lhs = DExpr::binary(DBinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<DExpr, DslError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_punct("&&") {
            let rhs = self.cmp_expr()?;
            lhs = DExpr::binary(DBinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<DExpr, DslError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match &self.peek().tok {
                Tok::Punct("==") => DBinOp::Eq,
                Tok::Punct("!=") => DBinOp::Ne,
                Tok::Punct("<=") => DBinOp::Le,
                Tok::Punct(">=") => DBinOp::Ge,
                Tok::Punct("<") => DBinOp::Lt,
                Tok::Punct(">") => DBinOp::Gt,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = DExpr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<DExpr, DslError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match &self.peek().tok {
                Tok::Punct("+") => DBinOp::Add,
                Tok::Punct("-") => DBinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = DExpr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<DExpr, DslError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match &self.peek().tok {
                Tok::Punct("*") => DBinOp::Mul,
                Tok::Punct("/") => DBinOp::Div,
                Tok::Punct("%") => DBinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = DExpr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<DExpr, DslError> {
        if self.eat_punct("-") {
            let inner = self.unary_expr()?;
            return Ok(DExpr::Unary(DUnOp::Neg, Box::new(inner)));
        }
        if self.eat_punct("!") {
            let inner = self.unary_expr()?;
            return Ok(DExpr::Unary(DUnOp::Not, Box::new(inner)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<DExpr, DslError> {
        let mut expr = self.primary_expr()?;
        while self.eat_punct(".") {
            let attr = self.ident()?;
            expr = DExpr::attr(expr, attr);
        }
        Ok(expr)
    }

    fn primary_expr(&mut self) -> Result<DExpr, DslError> {
        let token = self.bump();
        match token.tok {
            Tok::Int(v) => Ok(DExpr::Int(v)),
            Tok::Float(v) => Ok(DExpr::Float(v)),
            Tok::Str(s) => Ok(DExpr::Str(s)),
            Tok::Ident(name) => match name.as_str() {
                "true" => Ok(DExpr::Bool(true)),
                "false" => Ok(DExpr::Bool(false)),
                "null" => Ok(DExpr::Null),
                _ => Ok(DExpr::Var(name)),
            },
            Tok::Punct("(") => {
                let inner = self.expr()?;
                self.expect_punct(")")?;
                Ok(inner)
            }
            _ => Err(DslError::parse(
                token.line,
                token.col,
                "expected expression",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::figures::{
        FIG2_PROFILE_ARGUMENTS as FIG2, FIG3_UNROLL_INNERMOST_LOOPS as FIG3,
        FIG4_SPECIALIZE_KERNEL as FIG4,
    };

    #[test]
    fn fig2_parses_verbatim() {
        let lib = parse_aspects(FIG2).unwrap();
        let aspect = lib.get("ProfileArguments").unwrap();
        assert_eq!(aspect.inputs, vec!["funcName"]);
        assert_eq!(aspect.items.len(), 3);
        let Item::Select(select) = &aspect.items[0] else {
            panic!()
        };
        assert_eq!(select.root, None);
        assert_eq!(select.links[0].kind, "fCall");
        let Item::Apply(apply) = &aspect.items[1] else {
            panic!()
        };
        assert!(!apply.dynamic);
        let Action::Insert { before, template } = &apply.actions[0] else {
            panic!()
        };
        assert!(*before);
        // 3 splices: funcName, location, argList
        let splices = template
            .parts
            .iter()
            .filter(|p| matches!(p, crate::ast::TplPart::Splice(_)))
            .count();
        assert_eq!(splices, 3);
        assert!(matches!(&aspect.items[2], Item::Condition(_)));
    }

    #[test]
    fn fig3_parses_verbatim() {
        let lib = parse_aspects(FIG3).unwrap();
        let aspect = lib.get("UnrollInnermostLoops").unwrap();
        assert_eq!(aspect.inputs, vec!["$func", "threshold"]);
        let Item::Select(select) = &aspect.items[0] else {
            panic!()
        };
        assert_eq!(select.root.as_deref(), Some("$func"));
        assert_eq!(select.links[0].kind, "loop");
        assert!(matches!(&select.links[0].filter, Some(Filter::Expr(_))));
        let Item::Apply(apply) = &aspect.items[1] else {
            panic!()
        };
        assert!(matches!(&apply.actions[0], Action::Do { name, args }
            if name == "LoopUnroll" && args == &[DExpr::Str("full".into())]));
    }

    #[test]
    fn fig4_parses_verbatim() {
        let lib = parse_aspects(FIG4).unwrap();
        let aspect = lib.get("SpecializeKernel").unwrap();
        assert_eq!(aspect.inputs, vec!["lowT", "highT"]);
        // top-level call with label
        let Item::Call(call) = &aspect.items[0] else {
            panic!()
        };
        assert_eq!(call.label.as_deref(), Some("spCall"));
        assert_eq!(call.name, "PrepareSpecialize");
        // chained selector with name filters
        let Item::Select(select) = &aspect.items[1] else {
            panic!()
        };
        assert_eq!(select.links.len(), 2);
        assert!(matches!(&select.links[0].filter, Some(Filter::Name(n)) if n == "kernel"));
        assert!(matches!(&select.links[1].filter, Some(Filter::Name(n)) if n == "size"));
        // dynamic apply with three calls
        let Item::Apply(apply) = &aspect.items[2] else {
            panic!()
        };
        assert!(apply.dynamic);
        assert_eq!(apply.actions.len(), 3);
        let Action::Call(second) = &apply.actions[1] else {
            panic!()
        };
        assert_eq!(second.name, "UnrollInnermostLoops");
        // spOut.$func — attribute whose name is $-prefixed
        assert_eq!(
            second.args[0],
            DExpr::attr(DExpr::Var("spOut".into()), "$func")
        );
    }

    #[test]
    fn expression_precedence() {
        let e = parse_dsl_expr("a + b * c == d && !e").unwrap();
        // ((a + (b*c)) == d) && (!e)
        let DExpr::Binary(DBinOp::And, lhs, rhs) = e else {
            panic!()
        };
        assert!(matches!(*lhs, DExpr::Binary(DBinOp::Eq, _, _)));
        assert!(matches!(*rhs, DExpr::Unary(DUnOp::Not, _)));
    }

    #[test]
    fn literals() {
        assert_eq!(parse_dsl_expr("true").unwrap(), DExpr::Bool(true));
        assert_eq!(parse_dsl_expr("null").unwrap(), DExpr::Null);
        assert_eq!(parse_dsl_expr("3.5").unwrap(), DExpr::Float(3.5));
        assert_eq!(parse_dsl_expr("'s'").unwrap(), DExpr::Str("s".into()));
    }

    #[test]
    fn attribute_chains() {
        let e = parse_dsl_expr("$fCall.args.count").unwrap();
        assert_eq!(
            e,
            DExpr::attr(DExpr::attr(DExpr::Var("$fCall".into()), "args"), "count")
        );
    }

    #[test]
    fn multiple_aspects_in_one_file() {
        let lib = parse_aspects(&format!("{FIG2}\n{FIG3}")).unwrap();
        assert_eq!(lib.len(), 2);
    }

    #[test]
    fn errors_are_located() {
        let err = parse_aspects("aspectdef X\nselect fCall\napply end end").unwrap_err();
        let DslError::Parse { line, .. } = err else {
            panic!()
        };
        assert_eq!(line, 3, "missing `end` after select detected at `apply`");
    }

    #[test]
    fn unterminated_aspect() {
        assert!(parse_aspects("aspectdef X select fCall end").is_err());
    }

    #[test]
    fn filter_expr_with_comparison() {
        let lib = parse_aspects("aspectdef A select loop{numIter >= 4} end apply do X(); end end")
            .unwrap();
        let aspect = lib.get("A").unwrap();
        let Item::Select(select) = &aspect.items[0] else {
            panic!()
        };
        assert!(matches!(
            &select.links[0].filter,
            Some(Filter::Expr(DExpr::Binary(DBinOp::Ge, _, _)))
        ));
    }
}
