//! Runtime values of the aspect language.

use antarex_ir::joinpoint::{JoinPoint, JpAttr};
use antarex_ir::value::Value as IrValue;
use std::collections::BTreeMap;
use std::fmt;

/// A value manipulated by aspect expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum DslValue {
    /// Absence of a value; all comparisons with `Null` except `== null`
    /// are false, so missing attributes fail conditions gracefully.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// A source-code fragment; templates splice it raw.
    Code(String),
    /// A join point in the program under weaving.
    Jp(JoinPoint),
    /// Reference to a mini-C function by name (e.g. the `$func` output of
    /// `Specialize`).
    FuncRef(String),
    /// A record of named fields (aspect outputs, action results).
    Record(BTreeMap<String, DslValue>),
}

impl DslValue {
    /// Builds a record value from field pairs.
    pub fn record<I, K>(fields: I) -> DslValue
    where
        I: IntoIterator<Item = (K, DslValue)>,
        K: Into<String>,
    {
        DslValue::Record(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Truthiness for `condition` evaluation.
    pub fn truthy(&self) -> bool {
        match self {
            DslValue::Null => false,
            DslValue::Bool(b) => *b,
            DslValue::Int(v) => *v != 0,
            DslValue::Float(v) => *v != 0.0,
            DslValue::Str(s) | DslValue::Code(s) => !s.is_empty(),
            DslValue::Jp(_) | DslValue::FuncRef(_) | DslValue::Record(_) => true,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            DslValue::Int(v) => Some(*v as f64),
            DslValue::Float(v) => Some(*v),
            DslValue::Bool(b) => Some(f64::from(*b)),
            _ => None,
        }
    }

    /// Integer view (floats truncate).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            DslValue::Int(v) => Some(*v),
            DslValue::Float(v) => Some(*v as i64),
            DslValue::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// String view for `Str` and `Code`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            DslValue::Str(s) | DslValue::Code(s) => Some(s),
            _ => None,
        }
    }

    /// The function name this value designates, if any: a `FuncRef`, a
    /// function join point, or a record carrying a `$func` field.
    pub fn as_func_name(&self) -> Option<&str> {
        match self {
            DslValue::FuncRef(name) => Some(name),
            DslValue::Jp(JoinPoint::Function { name }) => Some(name),
            DslValue::Str(s) => Some(s),
            DslValue::Record(fields) => fields.get("$func").and_then(DslValue::as_func_name),
            _ => None,
        }
    }

    /// Converts to a mini-C runtime value if scalar.
    pub fn to_ir(&self) -> Option<IrValue> {
        match self {
            DslValue::Int(v) => Some(IrValue::Int(*v)),
            DslValue::Float(v) => Some(IrValue::Float(*v)),
            DslValue::Bool(b) => Some(IrValue::Int(i64::from(*b))),
            DslValue::Str(s) => Some(IrValue::Str(s.clone())),
            _ => None,
        }
    }

    /// Converts a mini-C runtime value into a DSL value.
    pub fn from_ir(value: &IrValue) -> DslValue {
        match value {
            IrValue::Int(v) => DslValue::Int(*v),
            IrValue::Float(v) => DslValue::Float(*v),
            IrValue::Str(s) => DslValue::Str(s.clone()),
            IrValue::Array(_) | IrValue::Unit => DslValue::Null,
        }
    }
}

impl From<JpAttr> for DslValue {
    fn from(attr: JpAttr) -> Self {
        match attr {
            JpAttr::Int(v) => DslValue::Int(v),
            JpAttr::Bool(b) => DslValue::Bool(b),
            JpAttr::Str(s) => DslValue::Str(s),
            JpAttr::Code(s) => DslValue::Code(s),
        }
    }
}

impl From<bool> for DslValue {
    fn from(v: bool) -> Self {
        DslValue::Bool(v)
    }
}

impl From<i64> for DslValue {
    fn from(v: i64) -> Self {
        DslValue::Int(v)
    }
}

impl From<f64> for DslValue {
    fn from(v: f64) -> Self {
        DslValue::Float(v)
    }
}

impl From<&str> for DslValue {
    fn from(v: &str) -> Self {
        DslValue::Str(v.to_string())
    }
}

impl fmt::Display for DslValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslValue::Null => write!(f, "null"),
            DslValue::Bool(b) => write!(f, "{b}"),
            DslValue::Int(v) => write!(f, "{v}"),
            DslValue::Float(v) => write!(f, "{v}"),
            DslValue::Str(s) | DslValue::Code(s) => write!(f, "{s}"),
            DslValue::Jp(jp) => write!(f, "<{}>", jp.kind_name()),
            DslValue::FuncRef(name) => write!(f, "<func {name}>"),
            DslValue::Record(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!DslValue::Null.truthy());
        assert!(DslValue::Int(3).truthy());
        assert!(!DslValue::Int(0).truthy());
        assert!(DslValue::FuncRef("f".into()).truthy());
        assert!(!DslValue::Str(String::new()).truthy());
    }

    #[test]
    fn func_name_resolution_through_records() {
        let rec = DslValue::record([("$func", DslValue::FuncRef("kernel__size_8".into()))]);
        assert_eq!(rec.as_func_name(), Some("kernel__size_8"));
        assert_eq!(DslValue::Int(3).as_func_name(), None);
    }

    #[test]
    fn ir_round_trip_scalars() {
        for v in [
            DslValue::Int(4),
            DslValue::Float(1.5),
            DslValue::Str("x".into()),
        ] {
            let ir = v.to_ir().unwrap();
            assert_eq!(DslValue::from_ir(&ir), v);
        }
        assert_eq!(DslValue::from_ir(&IrValue::Unit), DslValue::Null);
    }

    #[test]
    fn attr_conversion() {
        assert_eq!(DslValue::from(JpAttr::Bool(true)), DslValue::Bool(true));
        assert_eq!(
            DslValue::from(JpAttr::Code("a, b".into())),
            DslValue::Code("a, b".into())
        );
    }

    #[test]
    fn display_record_is_sorted() {
        let rec = DslValue::record([("b", DslValue::Int(2)), ("a", DslValue::Int(1))]);
        assert_eq!(rec.to_string(), "{a: 1, b: 2}");
    }
}
