//! Error type of the DSL front end and weaver.

use antarex_ir::IrError;
use std::fmt;

/// Error produced while parsing or executing aspects.
#[derive(Debug, Clone, PartialEq)]
pub enum DslError {
    /// Syntax error in aspect source.
    Parse {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// What went wrong.
        message: String,
    },
    /// An aspect, variable or action name could not be resolved.
    Unresolved(String),
    /// A DSL expression evaluated to an unusable value.
    Eval(String),
    /// An action failed while transforming the program.
    Action {
        /// The action name (`LoopUnroll`, `Specialize`, ...).
        action: String,
        /// Failure description.
        message: String,
    },
    /// Underlying IR error (template parsing, path resolution, ...).
    Ir(IrError),
}

impl DslError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: u32, col: u32, message: impl Into<String>) -> Self {
        DslError::Parse {
            line,
            col,
            message: message.into(),
        }
    }

    /// Convenience constructor for action failures.
    pub fn action(action: impl Into<String>, message: impl fmt::Display) -> Self {
        DslError::Action {
            action: action.into(),
            message: message.to_string(),
        }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Parse { line, col, message } => {
                write!(f, "aspect parse error at {line}:{col}: {message}")
            }
            DslError::Unresolved(name) => write!(f, "unresolved name `{name}`"),
            DslError::Eval(msg) => write!(f, "aspect evaluation error: {msg}"),
            DslError::Action { action, message } => {
                write!(f, "action `{action}` failed: {message}")
            }
            DslError::Ir(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for DslError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DslError::Ir(err) => Some(err),
            _ => None,
        }
    }
}

impl From<IrError> for DslError {
    fn from(err: IrError) -> Self {
        DslError::Ir(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            DslError::parse(1, 2, "expected `end`").to_string(),
            "aspect parse error at 1:2: expected `end`"
        );
        assert_eq!(
            DslError::action("LoopUnroll", "not a loop").to_string(),
            "action `LoopUnroll` failed: not a loop"
        );
    }

    #[test]
    fn ir_errors_convert_and_chain() {
        use std::error::Error as _;
        let err: DslError = IrError::Unresolved("f".into()).into();
        assert!(err.source().is_some());
    }
}
