//! Lexer for the aspect language.
//!
//! Identifiers may carry LARA's `$` prefix (`$fCall`, `$func`); code
//! templates `%{ ... }%` are captured as single raw tokens and their
//! `[[expr]]` splices are parsed later by the [template](crate::template)
//! engine.

use crate::error::DslError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword, possibly `$`-prefixed.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single or double quoted).
    Str(String),
    /// Raw template body between `%{` and `}%`.
    Template(String),
    /// Punctuation.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

const PUNCTS: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "(", ")", "{", "}", ",", ";", ":", ".", "<", ">", "+", "-",
    "*", "/", "%", "!", "=",
];

/// Tokenizes aspect source text.
///
/// # Errors
///
/// Returns [`DslError::Parse`] on malformed literals or stray characters.
pub fn lex(source: &str) -> Result<Vec<Token>, DslError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;
    let advance = |i: &mut usize, line: &mut u32, col: &mut u32, n: usize| {
        for _ in 0..n {
            if *i < bytes.len() && bytes[*i] == b'\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        }
    };
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            advance(&mut i, &mut line, &mut col, 1);
            continue;
        }
        // line comments
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                advance(&mut i, &mut line, &mut col, 1);
            }
            continue;
        }
        // block comments
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let (sline, scol) = (line, col);
            advance(&mut i, &mut line, &mut col, 2);
            loop {
                if i + 1 >= bytes.len() {
                    return Err(DslError::parse(sline, scol, "unterminated block comment"));
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    advance(&mut i, &mut line, &mut col, 2);
                    continue 'outer;
                }
                advance(&mut i, &mut line, &mut col, 1);
            }
        }
        let (tline, tcol) = (line, col);
        // template %{ ... }%
        if c == '%' && i + 1 < bytes.len() && bytes[i + 1] == b'{' {
            advance(&mut i, &mut line, &mut col, 2);
            let start = i;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(DslError::parse(tline, tcol, "unterminated template `%{`"));
                }
                if bytes[i] == b'}' && bytes[i + 1] == b'%' {
                    break;
                }
                advance(&mut i, &mut line, &mut col, 1);
            }
            let body = source[start..i].to_string();
            advance(&mut i, &mut line, &mut col, 2);
            tokens.push(Token {
                tok: Tok::Template(body),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // identifiers (with optional $ prefix)
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            advance(&mut i, &mut line, &mut col, 1);
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                advance(&mut i, &mut line, &mut col, 1);
            }
            let text = &source[start..i];
            if text == "$" {
                return Err(DslError::parse(
                    tline,
                    tcol,
                    "`$` must prefix an identifier",
                ));
            }
            tokens.push(Token {
                tok: Tok::Ident(text.to_string()),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // numbers
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() {
                let d = bytes[i] as char;
                if d.is_ascii_digit() {
                    advance(&mut i, &mut line, &mut col, 1);
                } else if d == '.'
                    && !is_float
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    advance(&mut i, &mut line, &mut col, 1);
                } else {
                    break;
                }
            }
            let text = &source[start..i];
            let tok =
                if is_float {
                    Tok::Float(text.parse().map_err(|_| {
                        DslError::parse(tline, tcol, format!("invalid float `{text}`"))
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        DslError::parse(tline, tcol, format!("invalid integer `{text}`"))
                    })?)
                };
            tokens.push(Token {
                tok,
                line: tline,
                col: tcol,
            });
            continue;
        }
        // strings, ' or "
        if c == '\'' || c == '"' {
            let quote = c;
            advance(&mut i, &mut line, &mut col, 1);
            let mut text = String::new();
            while i < bytes.len() && bytes[i] as char != quote {
                let d = bytes[i] as char;
                if d == '\\' && i + 1 < bytes.len() {
                    let esc = bytes[i + 1] as char;
                    text.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    });
                    advance(&mut i, &mut line, &mut col, 2);
                } else {
                    text.push(d);
                    advance(&mut i, &mut line, &mut col, 1);
                }
            }
            if i >= bytes.len() {
                return Err(DslError::parse(tline, tcol, "unterminated string literal"));
            }
            advance(&mut i, &mut line, &mut col, 1);
            tokens.push(Token {
                tok: Tok::Str(text),
                line: tline,
                col: tcol,
            });
            continue;
        }
        for punct in PUNCTS {
            if source[i..].starts_with(punct) {
                tokens.push(Token {
                    tok: Tok::Punct(punct),
                    line: tline,
                    col: tcol,
                });
                advance(&mut i, &mut line, &mut col, punct.len());
                continue 'outer;
            }
        }
        return Err(DslError::parse(
            tline,
            tcol,
            format!("unexpected character `{c}`"),
        ));
    }
    tokens.push(Token {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_with_dollar() {
        assert_eq!(
            toks("$fCall.name == funcName"),
            vec![
                Tok::Ident("$fCall".into()),
                Tok::Punct("."),
                Tok::Ident("name".into()),
                Tok::Punct("=="),
                Tok::Ident("funcName".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn template_captured_raw() {
        let t = toks("insert before %{profile_args('[[funcName]]', [[$fCall.argList]]);\n}%;");
        assert!(matches!(&t[2], Tok::Template(body)
            if body.contains("[[funcName]]") && body.contains("[[$fCall.argList]]")));
        assert_eq!(t[3], Tok::Punct(";"));
    }

    #[test]
    fn strings_both_quotes() {
        assert_eq!(
            toks("'kernel' \"size\""),
            vec![Tok::Str("kernel".into()), Tok::Str("size".into()), Tok::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.5"),
            vec![Tok::Int(42), Tok::Float(3.5), Tok::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("// c\n1 /* b */ 2"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("%{ never closed").is_err());
        assert!(lex("'open").is_err());
        assert!(lex("@").is_err());
        assert!(lex("$ alone").is_err());
    }

    #[test]
    fn positions_tracked() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }
}
