//! # antarex-dsl — the ANTAREX aspect DSL (LARA dialect)
//!
//! The ANTAREX project (Silvano et al., DATE 2016) expresses extra-functional
//! concerns — instrumentation, adaptivity, autotuning strategies — in a DSL
//! inspired by aspect-oriented programming and built on LARA. This crate
//! implements that DSL for the mini-C substrate of [`antarex_ir`]:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — the aspect language
//!   (`aspectdef` / `input` / `select` / `apply` / `condition`, code
//!   templates `%{ ... }%` with `[[expr]]` splices, weaver actions `do`,
//!   aspect composition `call`, and `apply dynamic` for runtime weaving);
//! * [`interp`] — the static weaver: runs aspects against a program,
//!   selecting join points and firing actions;
//! * [`dynamic`] — the runtime half: `apply dynamic` bodies become a
//!   [`DynamicWeaver`](dynamic::DynamicWeaver) that plugs into the mini-C
//!   interpreter as a call dispatcher and weaves specialized versions while
//!   the application runs (split compilation).
//!
//! All three aspect listings from the paper (Figs. 2–4) parse and execute
//! verbatim; see this crate's tests and the workspace-level integration
//! tests.
//!
//! # Examples
//!
//! ```
//! use antarex_dsl::{parse_aspects, interp::Weaver, value::DslValue};
//! use antarex_ir::parse_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let aspects = parse_aspects(
//!     "aspectdef AddProbe
//!        select fCall end
//!        apply
//!          insert before %{probe();}%;
//!        end
//!        condition $fCall.name == 'kernel' end
//!      end",
//! )?;
//! let mut program = parse_program("void run() { kernel(); other(); }")?;
//! let mut weaver = Weaver::new(aspects);
//! weaver.weave(&mut program, "AddProbe", &[])?;
//! let text = antarex_ir::printer::print_program(&program);
//! assert_eq!(text.matches("probe();").count(), 1);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod dynamic;
pub mod error;
pub mod expr;
pub mod figures;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod template;
pub mod value;

pub use ast::{Action, AspectDef, AspectLibrary};
pub use error::DslError;
pub use interp::Weaver;
pub use parser::parse_aspects;
pub use value::DslValue;
