//! Evaluation of aspect expressions.
//!
//! Expressions run against an [`Env`] of bound variables (aspect inputs,
//! join-point bindings like `$fCall`, labelled call results like `spOut`)
//! plus an optional *candidate* value whose attributes resolve as bare
//! identifiers — that is how `{type=='for'}` filters see the loop under
//! test.

use crate::ast::{DBinOp, DExpr, DUnOp};
use crate::error::DslError;
use crate::value::DslValue;
use antarex_ir::joinpoint::JoinPoint;
use std::collections::HashMap;

/// Variable bindings for expression evaluation.
#[derive(Debug, Clone, Default)]
pub struct Env {
    vars: HashMap<String, DslValue>,
    candidate: Option<DslValue>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a variable, returning the previous value if shadowed.
    pub fn bind(&mut self, name: impl Into<String>, value: DslValue) -> Option<DslValue> {
        self.vars.insert(name.into(), value)
    }

    /// Looks up a variable.
    pub fn get(&self, name: &str) -> Option<&DslValue> {
        self.vars.get(name)
    }

    /// Returns a copy with the filter candidate installed: bare identifiers
    /// that are not bound variables resolve to the candidate's attributes.
    pub fn with_candidate(&self, candidate: DslValue) -> Env {
        let mut env = self.clone();
        env.candidate = Some(candidate);
        env
    }

    /// Bound variable names (for diagnostics).
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.vars.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

/// Evaluates an aspect expression.
///
/// # Errors
///
/// Returns [`DslError::Unresolved`] for unknown variables and
/// [`DslError::Eval`] for type errors and division by zero. Missing join
/// point *attributes* are not errors: they evaluate to
/// [`DslValue::Null`], which fails comparisons, so conditions like
/// `$loop.numIter <= threshold` are simply false for loops with unknown
/// trip counts.
pub fn eval(expr: &DExpr, env: &Env) -> Result<DslValue, DslError> {
    match expr {
        DExpr::Int(v) => Ok(DslValue::Int(*v)),
        DExpr::Float(v) => Ok(DslValue::Float(*v)),
        DExpr::Str(s) => Ok(DslValue::Str(s.clone())),
        DExpr::Bool(b) => Ok(DslValue::Bool(*b)),
        DExpr::Null => Ok(DslValue::Null),
        DExpr::Var(name) => {
            if let Some(value) = env.get(name) {
                return Ok(value.clone());
            }
            if let Some(candidate) = &env.candidate {
                let attr = attr_of(candidate, name);
                if attr != DslValue::Null {
                    return Ok(attr);
                }
            }
            Err(DslError::Unresolved(name.clone()))
        }
        DExpr::Attr(base, name) => {
            let base = eval(base, env)?;
            Ok(attr_of(&base, name))
        }
        DExpr::Unary(op, inner) => {
            let value = eval(inner, env)?;
            match op {
                DUnOp::Not => Ok(DslValue::Bool(!value.truthy())),
                DUnOp::Neg => match value {
                    DslValue::Int(v) => Ok(DslValue::Int(-v)),
                    DslValue::Float(v) => Ok(DslValue::Float(-v)),
                    other => Err(DslError::Eval(format!("cannot negate {other}"))),
                },
            }
        }
        DExpr::Binary(op, lhs, rhs) => {
            if *op == DBinOp::And {
                let l = eval(lhs, env)?;
                if !l.truthy() {
                    return Ok(DslValue::Bool(false));
                }
                return Ok(DslValue::Bool(eval(rhs, env)?.truthy()));
            }
            if *op == DBinOp::Or {
                let l = eval(lhs, env)?;
                if l.truthy() {
                    return Ok(DslValue::Bool(true));
                }
                return Ok(DslValue::Bool(eval(rhs, env)?.truthy()));
            }
            let l = eval(lhs, env)?;
            let r = eval(rhs, env)?;
            binary(*op, &l, &r)
        }
    }
}

/// Resolves an attribute on a value: join points expose their static
/// attributes, records their fields, function references their name.
/// Unknown attributes yield [`DslValue::Null`].
pub fn attr_of(value: &DslValue, name: &str) -> DslValue {
    match value {
        DslValue::Jp(jp) => jp
            .attribute(name)
            .map(DslValue::from)
            .unwrap_or(DslValue::Null),
        DslValue::Record(fields) => fields.get(name).cloned().unwrap_or(DslValue::Null),
        DslValue::FuncRef(func) => match name {
            "name" => DslValue::Str(func.clone()),
            _ => DslValue::Null,
        },
        _ => DslValue::Null,
    }
}

fn binary(op: DBinOp, l: &DslValue, r: &DslValue) -> Result<DslValue, DslError> {
    use DBinOp::*;
    match op {
        Eq => return Ok(DslValue::Bool(values_equal(l, r))),
        Ne => return Ok(DslValue::Bool(!values_equal(l, r))),
        _ => {}
    }
    // string concatenation and comparison
    if let (Some(a), Some(b)) = (l.as_str(), r.as_str()) {
        return match op {
            Add => Ok(DslValue::Str(format!("{a}{b}"))),
            Lt => Ok(DslValue::Bool(a < b)),
            Le => Ok(DslValue::Bool(a <= b)),
            Gt => Ok(DslValue::Bool(a > b)),
            Ge => Ok(DslValue::Bool(a >= b)),
            _ => Err(DslError::Eval(
                "operator not defined on strings".to_string(),
            )),
        };
    }
    // Null poisons ordering comparisons to false, arithmetic to Null
    if matches!(l, DslValue::Null) || matches!(r, DslValue::Null) {
        return match op {
            Lt | Le | Gt | Ge => Ok(DslValue::Bool(false)),
            _ => Ok(DslValue::Null),
        };
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(DslError::Eval(format!(
                "operands {l} and {r} are not comparable"
            )))
        }
    };
    let both_int = matches!(l, DslValue::Int(_) | DslValue::Bool(_))
        && matches!(r, DslValue::Int(_) | DslValue::Bool(_));
    let arith = |v: f64| -> DslValue {
        if both_int {
            DslValue::Int(v as i64)
        } else {
            DslValue::Float(v)
        }
    };
    match op {
        Add => Ok(arith(a + b)),
        Sub => Ok(arith(a - b)),
        Mul => Ok(arith(a * b)),
        Div => {
            if b == 0.0 {
                Err(DslError::Eval("division by zero".into()))
            } else if both_int {
                Ok(DslValue::Int((a as i64) / (b as i64)))
            } else {
                Ok(DslValue::Float(a / b))
            }
        }
        Rem => {
            if both_int {
                let bi = b as i64;
                if bi == 0 {
                    Err(DslError::Eval("remainder by zero".into()))
                } else {
                    Ok(DslValue::Int((a as i64) % bi))
                }
            } else {
                Err(DslError::Eval("`%` requires integers".into()))
            }
        }
        Lt => Ok(DslValue::Bool(a < b)),
        Le => Ok(DslValue::Bool(a <= b)),
        Gt => Ok(DslValue::Bool(a > b)),
        Ge => Ok(DslValue::Bool(a >= b)),
        Eq | Ne | And | Or => unreachable!("handled above"),
    }
}

fn values_equal(l: &DslValue, r: &DslValue) -> bool {
    if let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) {
        return a == b;
    }
    if let (Some(a), Some(b)) = (l.as_str(), r.as_str()) {
        return a == b;
    }
    matches!((l, r), (DslValue::Null, DslValue::Null))
}

/// Binds a join point under its canonical variable name (`$fCall`, `$loop`,
/// `$arg`, `$func`).
pub fn bind_join_point(env: &mut Env, jp: &JoinPoint) {
    let var = match jp.kind_name() {
        "fCall" => "$fCall",
        "loop" => "$loop",
        "arg" => "$arg",
        "function" => "$func",
        other => other,
    };
    env.bind(var, DslValue::Jp(jp.clone()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dsl_expr;

    fn eval_str(src: &str, env: &Env) -> DslValue {
        eval(&parse_dsl_expr(src).unwrap(), env).unwrap()
    }

    #[test]
    fn arithmetic_and_types() {
        let env = Env::new();
        assert_eq!(eval_str("1 + 2 * 3", &env), DslValue::Int(7));
        assert_eq!(eval_str("7 / 2", &env), DslValue::Int(3));
        assert_eq!(eval_str("7.0 / 2", &env), DslValue::Float(3.5));
        assert_eq!(eval_str("7 % 3", &env), DslValue::Int(1));
        assert_eq!(eval_str("-3 + 1", &env), DslValue::Int(-2));
    }

    #[test]
    fn string_operations() {
        let env = Env::new();
        assert_eq!(eval_str("'a' + 'b'", &env), DslValue::Str("ab".into()));
        assert_eq!(eval_str("'a' < 'b'", &env), DslValue::Bool(true));
        assert_eq!(eval_str("'x' == 'x'", &env), DslValue::Bool(true));
    }

    #[test]
    fn logic_short_circuits() {
        let env = Env::new();
        // `1/0` on the right of || must not evaluate
        assert_eq!(eval_str("true || 1 / 0 > 0", &env), DslValue::Bool(true));
        assert_eq!(eval_str("false && 1 / 0 > 0", &env), DslValue::Bool(false));
        assert_eq!(eval_str("!null", &env), DslValue::Bool(true));
    }

    #[test]
    fn null_comparisons_fail_closed() {
        let env = Env::new();
        assert_eq!(eval_str("null <= 4", &env), DslValue::Bool(false));
        assert_eq!(eval_str("null >= 4", &env), DslValue::Bool(false));
        assert_eq!(eval_str("null == null", &env), DslValue::Bool(true));
        assert_eq!(eval_str("null == 4", &env), DslValue::Bool(false));
    }

    #[test]
    fn variables_and_attrs() {
        let mut env = Env::new();
        env.bind("threshold", DslValue::Int(32));
        env.bind(
            "spOut",
            DslValue::record([("$func", DslValue::FuncRef("kernel__size_8".into()))]),
        );
        assert_eq!(eval_str("threshold + 1", &env), DslValue::Int(33));
        assert_eq!(
            eval_str("spOut.$func", &env),
            DslValue::FuncRef("kernel__size_8".into())
        );
        assert_eq!(
            eval_str("spOut.$func.name", &env),
            DslValue::Str("kernel__size_8".into())
        );
        assert_eq!(eval_str("spOut.missing", &env), DslValue::Null);
    }

    #[test]
    fn unresolved_variable_is_an_error() {
        let err = eval(&parse_dsl_expr("ghost + 1").unwrap(), &Env::new()).unwrap_err();
        assert_eq!(err, DslError::Unresolved("ghost".into()));
    }

    #[test]
    fn candidate_attributes_resolve_bare() {
        use antarex_ir::joinpoint::{JoinPoint, LoopKind};
        let jp = JoinPoint::Loop {
            function: "f".into(),
            path: antarex_ir::NodePath::root(0),
            kind: LoopKind::For,
            num_iter: Some(8),
            is_innermost: true,
        };
        let env = Env::new().with_candidate(DslValue::Jp(jp));
        assert_eq!(eval_str("type == 'for'", &env), DslValue::Bool(true));
        assert_eq!(eval_str("numIter >= 4", &env), DslValue::Bool(true));
    }

    #[test]
    fn join_point_condition_from_fig3() {
        use antarex_ir::joinpoint::{JoinPoint, LoopKind};
        let mut env = Env::new();
        env.bind("threshold", DslValue::Int(32));
        let mut bindable = Env::new();
        bindable.bind("threshold", DslValue::Int(32));
        let jp = JoinPoint::Loop {
            function: "f".into(),
            path: antarex_ir::NodePath::root(0),
            kind: LoopKind::For,
            num_iter: None, // dynamic bound
            is_innermost: true,
        };
        bind_join_point(&mut bindable, &jp);
        // numIter is Null -> condition is false, not an error
        assert_eq!(
            eval_str("$loop.isInnermost && $loop.numIter <= threshold", &bindable),
            DslValue::Bool(false)
        );
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(eval(&parse_dsl_expr("1 / 0").unwrap(), &Env::new()).is_err());
        assert!(eval(&parse_dsl_expr("1 % 0").unwrap(), &Env::new()).is_err());
    }
}
