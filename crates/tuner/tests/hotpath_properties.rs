//! Property suite for the indexed hot path.
//!
//! The knowledge base's indexed `best()` and the parallel explorer are
//! optimizations that promise *bit-identical* results to their retained
//! reference implementations (`best_linear()`, single-worker
//! exploration). These tests hammer that promise with randomized
//! workloads: metric values include NaN, `-0.0` and missing entries,
//! and mutation sequences interleave `push`, `upsert` and `learn` —
//! every code path the incremental indexes must keep in sync.

use antarex_tuner::dse::explore_parallel;
use antarex_tuner::goal::{Constraint, Objective};
use antarex_tuner::knob::{Knob, KnobValue};
use antarex_tuner::search::batch::{BatchTechnique, ExhaustiveBatch, GeneticBatch, RandomBatch};
use antarex_tuner::space::{Configuration, DesignSpace};
use antarex_tuner::{KnowledgeBase, OperatingPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const METRICS: [&str; 4] = ["time", "energy", "quality", "power"];

fn random_config(rng: &mut StdRng) -> Configuration {
    let mut config = Configuration::new();
    // a small grid so random points collide and exercise find/upsert
    config.set("x", KnobValue::Int(rng.gen_range(0..4)));
    config.set("y", KnobValue::Int(rng.gen_range(0..4)));
    config
}

fn random_value(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..20) {
        0 => f64::NAN,
        1 => -0.0,
        2 => 0.0,
        3 => -rng.gen::<f64>() * 10.0,
        _ => rng.gen::<f64>() * 10.0,
    }
}

fn random_point(rng: &mut StdRng) -> OperatingPoint {
    let config = random_config(rng);
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for name in METRICS {
        // metrics are present ~3 times out of 4, so some points lack
        // the objective metric entirely
        if rng.gen_range(0..4) < 3 {
            metrics.push((name.to_string(), random_value(rng)));
        }
    }
    OperatingPoint::new(config, metrics)
}

fn random_constraints(rng: &mut StdRng) -> Vec<Constraint> {
    (0..rng.gen_range(0..3))
        .map(|_| {
            let metric = METRICS[rng.gen_range(0..METRICS.len())];
            let bound = rng.gen::<f64>() * 8.0;
            if rng.gen_bool(0.5) {
                Constraint::at_most(metric, bound)
            } else {
                Constraint::at_least(metric, bound)
            }
        })
        .collect()
}

/// Debug output is the equivalence notion: it is total (NaN prints as
/// `NaN`, where `==` on a NaN-metric point is false even reflexively)
/// and covers config and every metric.
fn debug_of(point: Option<&OperatingPoint>) -> String {
    format!("{point:?}")
}

#[test]
fn indexed_best_equals_linear_reference_under_random_mutation() {
    for seed in 0..24 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kb = KnowledgeBase::new();
        for step in 0..120 {
            match rng.gen_range(0..3) {
                0 => kb.push(random_point(&mut rng)),
                1 => kb.upsert(random_point(&mut rng)),
                _ => {
                    let point = random_point(&mut rng);
                    let alpha = rng.gen::<f64>();
                    kb.learn(point, alpha);
                }
            }
            if step % 5 != 0 {
                continue;
            }
            for metric in METRICS {
                let objective = if rng.gen_bool(0.5) {
                    Objective::minimize(metric)
                } else {
                    Objective::maximize(metric)
                };
                let constraints = random_constraints(&mut rng);
                assert_eq!(
                    debug_of(kb.best(&objective, &constraints)),
                    debug_of(kb.best_linear(&objective, &constraints)),
                    "seed {seed} step {step}: indexed best diverged from the \
                     linear reference for {objective} under {constraints:?}"
                );
            }
        }
    }
}

#[test]
fn indexed_best_equals_linear_on_adversarial_ties() {
    // many points sharing exact metric values: the tie-break (earliest
    // insertion wins) must survive the index round-trip
    let mut kb = KnowledgeBase::new();
    for i in 0..30i64 {
        let mut config = Configuration::new();
        config.set("x", KnobValue::Int(i));
        kb.push(OperatingPoint::new(
            config,
            [("time".to_string(), (i % 3) as f64)],
        ));
    }
    for objective in [Objective::minimize("time"), Objective::maximize("time")] {
        assert_eq!(
            debug_of(kb.best(&objective, &[])),
            debug_of(kb.best_linear(&objective, &[])),
            "tie-break diverged for {objective}"
        );
    }
}

fn surface(config: &Configuration) -> BTreeMap<String, f64> {
    let x = config.get_int("x").unwrap_or(0) as f64;
    let y = config.get_int("y").unwrap_or(0) as f64;
    [
        ("time".to_string(), (x - 5.0).powi(2) + (y - 2.0).powi(2)),
        ("energy".to_string(), x + y),
    ]
    .into()
}

#[test]
fn parallel_exploration_is_worker_count_invariant() {
    let space = DesignSpace::new(vec![Knob::int("x", 0, 9, 1), Knob::int("y", 0, 9, 1)]);
    type Make = fn() -> Box<dyn BatchTechnique>;
    let techniques: Vec<(&str, Make)> = vec![
        ("exhaustive", || Box::new(ExhaustiveBatch::new())),
        ("random", || Box::new(RandomBatch::new(6))),
        ("genetic", || Box::new(GeneticBatch::with_params(6, 0.25))),
    ];
    for (name, make) in techniques {
        for seed in 0..6 {
            let baseline = format!(
                "{:?}",
                explore_parallel(
                    &space,
                    make(),
                    &Objective::minimize("time"),
                    40,
                    seed,
                    1,
                    surface,
                )
            );
            for workers in [2, 3, 4, 8] {
                let report = format!(
                    "{:?}",
                    explore_parallel(
                        &space,
                        make(),
                        &Objective::minimize("time"),
                        40,
                        seed,
                        workers,
                        surface,
                    )
                );
                assert_eq!(
                    report, baseline,
                    "{name} seed {seed}: {workers} workers diverged from 1 worker"
                );
            }
        }
    }
}
