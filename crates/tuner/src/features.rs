//! Input-feature-aware operating-point selection.
//!
//! The best configuration usually depends on the *input*: docking a
//! 12-atom fragment and a 120-atom macrocycle want different pose counts;
//! a cross-town route and a two-block hop want different search effort.
//! mARGOt (the autotuner ANTAREX built, §IV) handles this with *data
//! features*: the knowledge base is clustered by input features, and the
//! runtime selects within the cluster nearest to the current input.
//! [`FeatureManager`] implements that scheme on top of
//! [`crate::point::KnowledgeBase`].

use crate::goal::{Constraint, Objective};
use crate::point::{KnowledgeBase, OperatingPoint};
use crate::space::Configuration;

/// A feature cluster: a centroid in feature space plus the operating
/// points measured for inputs like it.
#[derive(Debug, Clone)]
pub struct FeatureCluster {
    centroid: Vec<f64>,
    knowledge: KnowledgeBase,
}

impl FeatureCluster {
    /// The cluster centroid.
    pub fn centroid(&self) -> &[f64] {
        &self.centroid
    }

    /// The cluster's knowledge base.
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.knowledge
    }
}

/// Feature-aware runtime selection.
///
/// # Examples
///
/// ```
/// use antarex_tuner::features::FeatureManager;
/// use antarex_tuner::goal::Objective;
/// use antarex_tuner::{Configuration, KnobValue, KnowledgeBase, OperatingPoint};
///
/// let mut fast = Configuration::new();
/// fast.set("poses", KnobValue::Int(4));
/// let mut thorough = Configuration::new();
/// thorough.set("poses", KnobValue::Int(64));
///
/// let mut manager = FeatureManager::new(Objective::minimize("time"), 1);
/// // small inputs: few poses suffice
/// manager.add_cluster(
///     vec![15.0],
///     [OperatingPoint::new(fast.clone(), [("time".into(), 1.0)])].into_iter().collect(),
/// );
/// // large inputs: only many poses produce usable scores
/// manager.add_cluster(
///     vec![100.0],
///     [OperatingPoint::new(thorough.clone(), [("time".into(), 9.0)])].into_iter().collect(),
/// );
/// let (config, _) = manager.select(&[20.0]).unwrap();
/// assert_eq!(config.get_int("poses"), Some(4));
/// let (config, _) = manager.select(&[90.0]).unwrap();
/// assert_eq!(config.get_int("poses"), Some(64));
/// ```
#[derive(Debug)]
pub struct FeatureManager {
    objective: Objective,
    constraints: Vec<Constraint>,
    dimensions: usize,
    clusters: Vec<FeatureCluster>,
    scale: Vec<f64>,
    learn_alpha: f64,
}

impl FeatureManager {
    /// Creates a manager for feature vectors of `dimensions` entries.
    ///
    /// # Panics
    ///
    /// Panics if `dimensions` is zero.
    pub fn new(objective: Objective, dimensions: usize) -> Self {
        assert!(dimensions > 0, "need at least one feature dimension");
        FeatureManager {
            objective,
            constraints: Vec::new(),
            dimensions,
            clusters: Vec::new(),
            scale: vec![1.0; dimensions],
            learn_alpha: 0.4,
        }
    }

    /// Sets per-dimension scale factors used in distance computation
    /// (features with larger natural ranges should get smaller scales).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-positive scales.
    pub fn with_scale(mut self, scale: Vec<f64>) -> Self {
        assert_eq!(scale.len(), self.dimensions, "scale dimension mismatch");
        assert!(scale.iter().all(|&s| s > 0.0), "scales must be positive");
        self.scale = scale;
        self
    }

    /// Adds an SLA constraint (applies across clusters).
    pub fn add_constraint(&mut self, constraint: Constraint) {
        self.constraints.push(constraint);
    }

    /// Registers a feature cluster with its design-time knowledge.
    ///
    /// # Panics
    ///
    /// Panics if the centroid dimension does not match.
    pub fn add_cluster(&mut self, centroid: Vec<f64>, knowledge: KnowledgeBase) {
        assert_eq!(
            centroid.len(),
            self.dimensions,
            "centroid dimension mismatch"
        );
        self.clusters.push(FeatureCluster {
            centroid,
            knowledge,
        });
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The clusters.
    pub fn clusters(&self) -> &[FeatureCluster] {
        &self.clusters
    }

    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .zip(&self.scale)
            .map(|((x, y), s)| ((x - y) * s).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    /// Index of the cluster nearest to the given feature vector.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn nearest_cluster(&self, features: &[f64]) -> Option<usize> {
        assert_eq!(
            features.len(),
            self.dimensions,
            "feature dimension mismatch"
        );
        self.clusters
            .iter()
            .enumerate()
            .min_by(|a, b| {
                self.distance(&a.1.centroid, features)
                    .total_cmp(&self.distance(&b.1.centroid, features))
            })
            .map(|(i, _)| i)
    }

    /// Selects the best feasible configuration for an input with the
    /// given features; returns the configuration and the cluster used.
    pub fn select(&self, features: &[f64]) -> Option<(&Configuration, usize)> {
        let cluster = self.nearest_cluster(features)?;
        self.clusters[cluster]
            .knowledge
            .best(&self.objective, &self.constraints)
            .map(|p| (&p.config, cluster))
    }

    /// Feeds a runtime measurement back into the cluster nearest to the
    /// measured input (online learning, per cluster).
    pub fn learn(&mut self, features: &[f64], point: OperatingPoint) {
        if let Some(cluster) = self.nearest_cluster(features) {
            let alpha = self.learn_alpha;
            self.clusters[cluster].knowledge.learn(point, alpha);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knob::KnobValue;

    fn config(poses: i64) -> Configuration {
        let mut c = Configuration::new();
        c.set("poses", KnobValue::Int(poses));
        c
    }

    fn point(poses: i64, time: f64, quality: f64) -> OperatingPoint {
        OperatingPoint::new(
            config(poses),
            [("time".to_string(), time), ("quality".to_string(), quality)],
        )
    }

    fn manager() -> FeatureManager {
        let mut manager = FeatureManager::new(Objective::minimize("time"), 1);
        manager.add_constraint(Constraint::at_least("quality", 0.8));
        // small molecules: 8 poses already reach quality 0.9
        manager.add_cluster(
            vec![15.0],
            [point(8, 1.0, 0.9), point(64, 8.0, 0.95)]
                .into_iter()
                .collect(),
        );
        // large molecules: 8 poses are junk; 64 needed
        manager.add_cluster(
            vec![100.0],
            [point(8, 4.0, 0.4), point(64, 30.0, 0.85)]
                .into_iter()
                .collect(),
        );
        manager
    }

    #[test]
    fn selection_depends_on_input_features() {
        let manager = manager();
        let (small, c0) = manager.select(&[12.0]).unwrap();
        assert_eq!(small.get_int("poses"), Some(8));
        assert_eq!(c0, 0);
        let (large, c1) = manager.select(&[120.0]).unwrap();
        assert_eq!(
            large.get_int("poses"),
            Some(64),
            "quality constraint forces 64"
        );
        assert_eq!(c1, 1);
    }

    #[test]
    fn infeasible_cluster_returns_none() {
        let mut manager = manager();
        manager.add_constraint(Constraint::at_least("quality", 0.99));
        assert!(manager.select(&[120.0]).is_none());
    }

    #[test]
    fn learning_routes_to_the_right_cluster() {
        let mut manager = manager();
        // a large-input measurement shows 64 poses got slower
        manager.learn(&[110.0], point(64, 60.0, 0.85));
        let large_kb = manager.clusters()[1].knowledge();
        let learned = large_kb.find(&config(64)).unwrap().metric("time").unwrap();
        assert!(learned > 30.0, "cluster 1 updated: {learned}");
        // cluster 0 untouched
        let small_kb = manager.clusters()[0].knowledge();
        assert_eq!(
            small_kb.find(&config(64)).unwrap().metric("time"),
            Some(8.0)
        );
    }

    #[test]
    fn scaling_reweights_dimensions() {
        let mut manager =
            FeatureManager::new(Objective::minimize("time"), 2).with_scale(vec![1.0, 100.0]);
        manager.add_cluster(vec![0.0, 0.0], [point(1, 1.0, 1.0)].into_iter().collect());
        manager.add_cluster(vec![10.0, 0.1], [point(2, 1.0, 1.0)].into_iter().collect());
        // feature [9, 0]: dimension 0 says cluster 1, but the scaled
        // second dimension (0.1 * 100 = 10) pushes it back to cluster 0
        assert_eq!(manager.nearest_cluster(&[9.0, 0.0]), Some(0));
    }

    #[test]
    fn empty_manager_selects_nothing() {
        let manager = FeatureManager::new(Objective::minimize("time"), 1);
        assert!(manager.select(&[1.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_rejected() {
        let manager = manager();
        let _ = manager.select(&[1.0, 2.0]);
    }
}
