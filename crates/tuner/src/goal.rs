//! Objectives and constraints over measured metrics.

use crate::intern::{intern, SymbolId};
use std::fmt;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Smaller is better.
    Minimize,
    /// Larger is better.
    Maximize,
}

/// The tuning objective: one metric plus a direction.
///
/// The metric name is interned at construction, so the per-selection
/// hot path compares a dense id instead of a string.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    metric: SymbolId,
    direction: Direction,
}

impl Objective {
    /// Minimizes `metric`.
    pub fn minimize(metric: impl AsRef<str>) -> Self {
        Objective {
            metric: intern(metric.as_ref()),
            direction: Direction::Minimize,
        }
    }

    /// Maximizes `metric`.
    pub fn maximize(metric: impl AsRef<str>) -> Self {
        Objective {
            metric: intern(metric.as_ref()),
            direction: Direction::Maximize,
        }
    }

    /// The metric name.
    pub fn metric(&self) -> &str {
        self.metric.name()
    }

    /// The interned metric id.
    pub fn metric_id(&self) -> SymbolId {
        self.metric
    }

    /// The direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Maps a metric value to a score where larger is always better.
    pub fn score(&self, value: f64) -> f64 {
        match self.direction {
            Direction::Minimize => -value,
            Direction::Maximize => value,
        }
    }

    /// Returns `true` if `candidate` improves on `incumbent`.
    pub fn improves(&self, candidate: f64, incumbent: f64) -> bool {
        self.score(candidate) > self.score(incumbent)
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.direction {
            Direction::Minimize => write!(f, "minimize {}", self.metric),
            Direction::Maximize => write!(f, "maximize {}", self.metric),
        }
    }
}

/// A feasibility constraint on one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    metric: SymbolId,
    bound: f64,
    upper: bool,
}

impl Constraint {
    /// Requires `metric <= bound`.
    pub fn at_most(metric: impl AsRef<str>, bound: f64) -> Self {
        Constraint {
            metric: intern(metric.as_ref()),
            bound,
            upper: true,
        }
    }

    /// Requires `metric >= bound`.
    pub fn at_least(metric: impl AsRef<str>, bound: f64) -> Self {
        Constraint {
            metric: intern(metric.as_ref()),
            bound,
            upper: false,
        }
    }

    /// The constrained metric.
    pub fn metric(&self) -> &str {
        self.metric.name()
    }

    /// The interned metric id.
    pub fn metric_id(&self) -> SymbolId {
        self.metric
    }

    /// The bound.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Adjusts the bound (runtime SLA renegotiation).
    pub fn set_bound(&mut self, bound: f64) {
        self.bound = bound;
    }

    /// Returns `true` if `value` satisfies the constraint.
    pub fn satisfied_by(&self, value: f64) -> bool {
        if self.upper {
            value <= self.bound
        } else {
            value >= self.bound
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = if self.upper { "<=" } else { ">=" };
        write!(f, "{} {op} {}", self.metric, self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_scores() {
        let min = Objective::minimize("time");
        assert!(min.improves(1.0, 2.0));
        assert!(!min.improves(2.0, 1.0));
        let max = Objective::maximize("throughput");
        assert!(max.improves(2.0, 1.0));
        assert_eq!(min.to_string(), "minimize time");
    }

    #[test]
    fn constraint_directions() {
        let upper = Constraint::at_most("power", 200.0);
        assert!(upper.satisfied_by(150.0));
        assert!(upper.satisfied_by(200.0));
        assert!(!upper.satisfied_by(250.0));
        let lower = Constraint::at_least("quality", 0.9);
        assert!(lower.satisfied_by(0.95));
        assert!(!lower.satisfied_by(0.8));
        assert_eq!(upper.to_string(), "power <= 200");
    }

    #[test]
    fn renegotiation() {
        let mut c = Constraint::at_most("latency", 1.0);
        c.set_bound(2.0);
        assert!(c.satisfied_by(1.5));
    }

    #[test]
    fn metric_ids_are_interned_once() {
        let a = Objective::minimize("goal-test-metric");
        let b = Constraint::at_most("goal-test-metric", 1.0);
        assert_eq!(a.metric_id(), b.metric_id());
        assert_eq!(a.metric(), "goal-test-metric");
    }
}
