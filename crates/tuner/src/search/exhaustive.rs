//! Exhaustive enumeration — ground truth for small spaces.

use super::SearchTechnique;
use crate::space::{Configuration, DesignSpace};
use rand::RngCore;

/// Enumerates every configuration exactly once, then stops.
#[derive(Debug, Clone, Default)]
pub struct Exhaustive {
    cursor: u128,
}

impl Exhaustive {
    /// Creates an exhaustive enumerator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SearchTechnique for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn propose(&mut self, space: &DesignSpace, _rng: &mut dyn RngCore) -> Option<Configuration> {
        if self.cursor >= space.size() {
            return None;
        }
        let config = space.config_at(self.cursor);
        self.cursor += 1;
        Some(config)
    }

    fn feedback(&mut self, _config: &Configuration, _cost: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_support::*;
    use crate::search::Tuner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_exact_optimum() {
        let mut tuner = Tuner::new(quadratic_space(), Box::new(Exhaustive::new()));
        let mut rng = StdRng::seed_from_u64(0);
        let (config, cost) = tuner.run(10_000, &mut rng, quadratic_cost).unwrap();
        assert_eq!(cost, 0.0);
        assert_eq!(config.get_int("x"), Some(7));
        assert_eq!(config.get_int("y"), Some(3));
        assert_eq!(tuner.history().len(), 256, "16 x 16 cells, then stop");
    }

    #[test]
    fn stops_after_exhaustion() {
        let mut technique = Exhaustive::new();
        let space = quadratic_space();
        let mut rng = StdRng::seed_from_u64(0);
        let mut count = 0;
        while technique.propose(&space, &mut rng).is_some() {
            count += 1;
        }
        assert_eq!(count, 256);
        assert!(technique.propose(&space, &mut rng).is_none());
    }
}
