//! Greedy hill climbing with random restarts.

use super::SearchTechnique;
use crate::space::{Configuration, DesignSpace};
use rand::seq::SliceRandom;
use rand::RngCore;

#[derive(Debug, Clone, PartialEq)]
enum Phase {
    /// Need a fresh random starting point.
    Restart,
    /// Waiting for the cost of the starting point.
    AwaitStart(Configuration),
    /// Exploring the neighbour queue of the current incumbent.
    Exploring,
}

/// First-improvement hill climbing: evaluate neighbours of the incumbent
/// in random order; move to the first that improves; restart from a random
/// point when no neighbour does.
#[derive(Debug, Clone)]
pub struct HillClimb {
    phase: Phase,
    current: Option<(Configuration, f64)>,
    queue: Vec<Configuration>,
    pending: Option<Configuration>,
    restarts: u64,
}

impl HillClimb {
    /// Creates a hill climber.
    pub fn new() -> Self {
        HillClimb {
            phase: Phase::Restart,
            current: None,
            queue: Vec::new(),
            pending: None,
            restarts: 0,
        }
    }

    /// Number of random restarts performed.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    fn refill_queue(&mut self, space: &DesignSpace, rng: &mut dyn RngCore) {
        let (config, _) = self.current.as_ref().expect("incumbent set");
        // reuse the queue's allocations across refills
        space.neighbors_into(config, &mut self.queue);
        self.queue.shuffle(&mut CoreRng(rng));
    }
}

impl Default for HillClimb {
    fn default() -> Self {
        Self::new()
    }
}

/// Adapter: `&mut dyn RngCore` itself implements `RngCore`, but
/// `SliceRandom::shuffle` needs a sized `Rng`; this wrapper provides it.
struct CoreRng<'a>(&'a mut dyn RngCore);

impl RngCore for CoreRng<'_> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

impl SearchTechnique for HillClimb {
    fn name(&self) -> &'static str {
        "hill-climb"
    }

    fn propose(&mut self, space: &DesignSpace, rng: &mut dyn RngCore) -> Option<Configuration> {
        match &self.phase {
            Phase::Restart => {
                let start = space.sample(&mut CoreRng(rng));
                self.phase = Phase::AwaitStart(start.clone());
                self.pending = Some(start.clone());
                Some(start)
            }
            Phase::AwaitStart(start) => {
                // feedback not yet received (cached duplicate): repropose
                Some(start.clone())
            }
            Phase::Exploring => {
                if self.queue.is_empty() {
                    self.refill_queue(space, rng);
                }
                match self.queue.pop() {
                    Some(next) => {
                        self.pending = Some(next.clone());
                        Some(next)
                    }
                    None => {
                        // isolated point: restart
                        self.restarts += 1;
                        self.phase = Phase::Restart;
                        self.propose(space, rng)
                    }
                }
            }
        }
    }

    fn feedback(&mut self, config: &Configuration, cost: f64) {
        if self.pending.as_ref() != Some(config) {
            return;
        }
        self.pending = None;
        match &self.phase {
            Phase::AwaitStart(_) => {
                self.current = Some((config.clone(), cost));
                self.queue.clear();
                self.phase = Phase::Exploring;
            }
            Phase::Exploring => {
                let improved = self
                    .current
                    .as_ref()
                    .is_none_or(|(_, incumbent)| cost < *incumbent);
                if improved {
                    self.current = Some((config.clone(), cost));
                    self.queue.clear(); // re-derive neighbours of new incumbent
                } else if self.queue.is_empty() {
                    // local optimum exhausted
                    self.restarts += 1;
                    self.phase = Phase::Restart;
                }
            }
            Phase::Restart => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_support::*;
    use crate::search::Tuner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn descends_convex_bowl_to_optimum() {
        let mut tuner = Tuner::new(quadratic_space(), Box::new(HillClimb::new()));
        let mut rng = StdRng::seed_from_u64(5);
        let (config, cost) = tuner.run(200, &mut rng, quadratic_cost).unwrap();
        assert_eq!(cost, 0.0, "convex surface must reach the optimum");
        assert_eq!(config.get_int("x"), Some(7));
    }

    #[test]
    fn restarts_escape_local_optimum() {
        let mut tuner = Tuner::new(quadratic_space(), Box::new(HillClimb::new()));
        let mut rng = StdRng::seed_from_u64(9);
        let (_, cost) = tuner.run(400, &mut rng, multimodal_cost).unwrap();
        assert_eq!(
            cost, 0.0,
            "restarts should eventually find the global basin"
        );
    }

    #[test]
    fn converges_faster_than_random_on_convex() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut hill = Tuner::new(quadratic_space(), Box::new(HillClimb::new()));
        hill.run(100, &mut rng, quadratic_cost);
        let mut rng = StdRng::seed_from_u64(13);
        let mut random = Tuner::new(
            quadratic_space(),
            Box::new(crate::search::random::RandomSearch::new()),
        );
        random.run(100, &mut rng, quadratic_cost);
        let hill_hit = hill.evaluations_to_reach(0.0, 0.0);
        let rand_hit = random.evaluations_to_reach(0.0, 0.0);
        match (hill_hit, rand_hit) {
            (Some(h), Some(r)) => assert!(h <= r, "hill {h} vs random {r}"),
            (Some(_), None) => {}
            other => panic!("hill climbing failed to converge: {other:?}"),
        }
    }
}
