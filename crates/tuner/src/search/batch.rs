//! Batch-capable search techniques for parallel DSE.
//!
//! A [`BatchTechnique`] proposes a whole *round* of configurations at
//! once; the explorer evaluates the round across worker threads and
//! feeds every result back in proposal order. Each round draws its
//! randomness from a fresh `StdRng` seeded by the explorer's
//! deterministic seed-split, so the proposal stream is a pure function
//! of `(base seed, round index)` — never of worker scheduling. That is
//! what lets [`crate::dse::explore_parallel`] promise a byte-identical
//! report at any worker count.

use crate::space::{Configuration, DesignSpace};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A search technique that proposes configurations a round at a time.
pub trait BatchTechnique {
    /// Human-readable technique name.
    fn name(&self) -> &'static str;

    /// Proposes the next round of at most `limit` configurations.
    /// `round_seed` is the explorer's deterministic per-round seed; all
    /// randomness for the round must derive from it. An empty round
    /// means the technique is exhausted.
    fn propose_batch(
        &mut self,
        space: &DesignSpace,
        round_seed: u64,
        limit: usize,
    ) -> Vec<Configuration>;

    /// Reports measured costs (smaller is better) for the round, in
    /// proposal order. Entries whose evaluation produced no cost for
    /// the steering metric are omitted.
    fn feedback_batch(&mut self, results: &[(Configuration, f64)]);
}

/// Enumerates the space in index order, `limit` configurations per
/// round. The batched counterpart of
/// [`Exhaustive`](crate::search::exhaustive::Exhaustive).
#[derive(Debug, Clone, Default)]
pub struct ExhaustiveBatch {
    cursor: u128,
}

impl ExhaustiveBatch {
    /// Creates a batched exhaustive enumerator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BatchTechnique for ExhaustiveBatch {
    fn name(&self) -> &'static str {
        "exhaustive-batch"
    }

    fn propose_batch(
        &mut self,
        space: &DesignSpace,
        _round_seed: u64,
        limit: usize,
    ) -> Vec<Configuration> {
        let mut out = Vec::new();
        while self.cursor < space.size() && out.len() < limit {
            out.push(space.config_at(self.cursor));
            self.cursor += 1;
        }
        out
    }

    fn feedback_batch(&mut self, _results: &[(Configuration, f64)]) {}
}

/// Uniform random sampling, `batch_size` draws per round.
#[derive(Debug, Clone)]
pub struct RandomBatch {
    batch_size: usize,
}

impl RandomBatch {
    /// Creates a random sampler proposing `batch_size` configurations
    /// per round.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        RandomBatch { batch_size }
    }
}

impl BatchTechnique for RandomBatch {
    fn name(&self) -> &'static str {
        "random-batch"
    }

    fn propose_batch(
        &mut self,
        space: &DesignSpace,
        round_seed: u64,
        limit: usize,
    ) -> Vec<Configuration> {
        let mut rng = StdRng::seed_from_u64(round_seed);
        (0..self.batch_size.min(limit))
            .map(|_| space.sample(&mut rng))
            .collect()
    }

    fn feedback_batch(&mut self, _results: &[(Configuration, f64)]) {}
}

/// A generational genetic algorithm: every round breeds one full
/// generation (tournament selection, uniform crossover, per-knob
/// mutation), and survivor selection keeps the best `population_size`
/// of parents and children. Generations are what make a GA batchable —
/// the children of one generation are independent of each other, so
/// they can be evaluated concurrently.
#[derive(Debug, Clone)]
pub struct GeneticBatch {
    population_size: usize,
    mutation_rate: f64,
    population: Vec<(Configuration, f64)>,
}

impl GeneticBatch {
    /// Creates a generational GA with population 16 and mutation rate
    /// 0.15.
    pub fn new() -> Self {
        Self::with_params(16, 0.15)
    }

    /// Creates a generational GA with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `population_size < 2` or `mutation_rate` not in `[0, 1]`.
    pub fn with_params(population_size: usize, mutation_rate: f64) -> Self {
        assert!(population_size >= 2, "population must hold at least 2");
        assert!(
            (0.0..=1.0).contains(&mutation_rate),
            "mutation rate must be in [0, 1]"
        );
        GeneticBatch {
            population_size,
            mutation_rate,
            population: Vec::new(),
        }
    }

    /// Current evaluated population size.
    pub fn population_len(&self) -> usize {
        self.population.len()
    }

    fn tournament<'a>(&'a self, rng: &mut dyn RngCore) -> &'a Configuration {
        let a = &self.population[rng.gen_range(0..self.population.len())];
        let b = &self.population[rng.gen_range(0..self.population.len())];
        if a.1 <= b.1 {
            &a.0
        } else {
            &b.0
        }
    }

    fn breed(&self, space: &DesignSpace, rng: &mut dyn RngCore) -> Configuration {
        let a = self.tournament(rng).clone();
        let b = self.tournament(rng).clone();
        let mut child = Configuration::with_capacity(space.knobs().len());
        for (knob, id) in space.knobs().iter().zip(space.knob_ids()) {
            let parent = if rng.gen_bool(0.5) { &a } else { &b };
            let value = parent
                .get_id(*id)
                .cloned()
                .unwrap_or_else(|| knob.value_at(0));
            child.set_id(*id, value);
        }
        for (knob, id) in space.knobs().iter().zip(space.knob_ids()) {
            if rng.gen::<f64>() < self.mutation_rate {
                let index = rng.gen_range(0..knob.cardinality());
                child.set_id(*id, knob.value_at(index));
            }
        }
        child
    }
}

impl Default for GeneticBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchTechnique for GeneticBatch {
    fn name(&self) -> &'static str {
        "genetic-batch"
    }

    fn propose_batch(
        &mut self,
        space: &DesignSpace,
        round_seed: u64,
        limit: usize,
    ) -> Vec<Configuration> {
        let mut rng = StdRng::seed_from_u64(round_seed);
        let generation = self.population_size.min(limit);
        if self.population.is_empty() {
            (0..generation).map(|_| space.sample(&mut rng)).collect()
        } else {
            (0..generation)
                .map(|_| self.breed(space, &mut rng))
                .collect()
        }
    }

    fn feedback_batch(&mut self, results: &[(Configuration, f64)]) {
        self.population
            .extend(results.iter().map(|(c, cost)| (c.clone(), *cost)));
        // survivor selection: best `population_size`, parents winning
        // ties by the stable sort (keeps selection deterministic)
        self.population.sort_by(|a, b| a.1.total_cmp(&b.1));
        self.population.truncate(self.population_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_support::*;

    #[test]
    fn exhaustive_batch_covers_the_space_once() {
        let space = quadratic_space();
        let mut technique = ExhaustiveBatch::new();
        let mut seen = Vec::new();
        loop {
            let round = technique.propose_batch(&space, 0, 60);
            if round.is_empty() {
                break;
            }
            seen.extend(round);
        }
        assert_eq!(seen.len(), 256, "16 x 16 cells exactly once");
        assert_eq!(seen[0], space.config_at(0));
        assert!(technique.propose_batch(&space, 0, 60).is_empty());
    }

    #[test]
    fn random_batch_is_a_pure_function_of_the_round_seed() {
        let space = quadratic_space();
        let mut a = RandomBatch::new(8);
        let mut b = RandomBatch::new(8);
        assert_eq!(
            a.propose_batch(&space, 42, 100),
            b.propose_batch(&space, 42, 100)
        );
        assert_ne!(
            a.propose_batch(&space, 1, 100),
            b.propose_batch(&space, 2, 100),
            "different round seeds should diverge on a 256-point space"
        );
    }

    #[test]
    fn genetic_batch_breeds_after_the_first_generation() {
        let space = quadratic_space();
        let mut ga = GeneticBatch::with_params(8, 0.2);
        let round = ga.propose_batch(&space, 7, 100);
        assert_eq!(round.len(), 8);
        let results: Vec<(Configuration, f64)> = round
            .into_iter()
            .map(|c| (c.clone(), quadratic_cost(&c)))
            .collect();
        ga.feedback_batch(&results);
        assert_eq!(ga.population_len(), 8);
        let next = ga.propose_batch(&space, 8, 100);
        assert_eq!(next.len(), 8);
        // survivor selection keeps the population bounded
        let results: Vec<(Configuration, f64)> = next
            .into_iter()
            .map(|c| (c.clone(), quadratic_cost(&c)))
            .collect();
        ga.feedback_batch(&results);
        assert_eq!(ga.population_len(), 8);
    }

    #[test]
    fn genetic_batch_improves_across_generations() {
        let space = quadratic_space();
        let mut ga = GeneticBatch::with_params(12, 0.15);
        let mut best = f64::INFINITY;
        for round in 0..20u64 {
            let generation = ga.propose_batch(&space, round, 100);
            let results: Vec<(Configuration, f64)> = generation
                .into_iter()
                .map(|c| (c.clone(), quadratic_cost(&c)))
                .collect();
            for (_, cost) in &results {
                best = best.min(*cost);
            }
            ga.feedback_batch(&results);
        }
        assert!(best <= 2.0, "generational GA should approach 0, got {best}");
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        let _ = RandomBatch::new(0);
    }
}
