//! Simulated annealing.

use super::SearchTechnique;
use crate::space::{Configuration, DesignSpace};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

/// Metropolis-accept simulated annealing with geometric cooling.
#[derive(Debug, Clone)]
pub struct Annealing {
    temperature: f64,
    cooling: f64,
    current: Option<(Configuration, f64)>,
    pending: Option<Configuration>,
    accept_draw: f64,
    scratch: Vec<Configuration>,
}

impl Annealing {
    /// Creates an annealer with initial temperature 10 and cooling 0.98.
    pub fn new() -> Self {
        Self::with_schedule(10.0, 0.98)
    }

    /// Creates an annealer with an explicit schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `temperature > 0` and `0 < cooling < 1`.
    pub fn with_schedule(temperature: f64, cooling: f64) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        assert!(
            (0.0..1.0).contains(&cooling) && cooling > 0.0,
            "cooling must be in (0, 1)"
        );
        Annealing {
            temperature,
            cooling,
            current: None,
            pending: None,
            accept_draw: 0.5,
            scratch: Vec::new(),
        }
    }

    /// Current temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }
}

impl Default for Annealing {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchTechnique for Annealing {
    fn name(&self) -> &'static str {
        "annealing"
    }

    fn propose(&mut self, space: &DesignSpace, rng: &mut dyn RngCore) -> Option<Configuration> {
        // draw the acceptance coin now, while we own the rng
        self.accept_draw = rng.gen::<f64>();
        let next = match &self.current {
            None => space.sample(rng),
            Some((config, _)) => {
                // neighbour buffer reused across proposals
                space.neighbors_into(config, &mut self.scratch);
                match self.scratch.choose(rng) {
                    Some(n) => n.clone(),
                    None => space.sample(rng),
                }
            }
        };
        self.pending = Some(next.clone());
        Some(next)
    }

    fn feedback(&mut self, config: &Configuration, cost: f64) {
        if self.pending.as_ref() != Some(config) {
            return;
        }
        self.pending = None;
        let accept = match &self.current {
            None => true,
            Some((_, incumbent)) => {
                if cost <= *incumbent {
                    true
                } else {
                    let p = (-(cost - incumbent) / self.temperature).exp();
                    self.accept_draw < p
                }
            }
        };
        if accept {
            self.current = Some((config.clone(), cost));
        }
        self.temperature = (self.temperature * self.cooling).max(1e-9);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_support::*;
    use crate::search::Tuner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cools_and_converges_on_convex() {
        let mut tuner = Tuner::new(
            quadratic_space(),
            Box::new(Annealing::with_schedule(20.0, 0.95)),
        );
        let mut rng = StdRng::seed_from_u64(21);
        let (_, cost) = tuner.run(400, &mut rng, quadratic_cost).unwrap();
        assert!(
            cost <= 2.0,
            "annealing should settle near the optimum, got {cost}"
        );
    }

    #[test]
    fn escapes_local_basin_sometimes() {
        // across seeds, annealing should hit the global basin at least once
        let mut hits = 0;
        for seed in 0..8 {
            let mut tuner = Tuner::new(
                quadratic_space(),
                Box::new(Annealing::with_schedule(60.0, 0.995)),
            );
            let mut rng = StdRng::seed_from_u64(seed);
            let (_, cost) = tuner.run(600, &mut rng, multimodal_cost).unwrap();
            if cost < 5.0 {
                hits += 1;
            }
        }
        assert!(hits >= 2, "global basin found in only {hits}/8 runs");
    }

    #[test]
    fn temperature_decreases() {
        let mut annealer = Annealing::new();
        let space = quadratic_space();
        let mut rng = StdRng::seed_from_u64(2);
        let t0 = annealer.temperature();
        for _ in 0..10 {
            let c = annealer.propose(&space, &mut rng).unwrap();
            annealer.feedback(&c, 1.0);
        }
        assert!(annealer.temperature() < t0);
    }

    #[test]
    #[should_panic(expected = "cooling")]
    fn bad_schedule_rejected() {
        let _ = Annealing::with_schedule(1.0, 1.5);
    }
}
