//! Search techniques over the design space.
//!
//! The paper contrasts *black-box* autotuning (no application knowledge,
//! long convergence) with the ANTAREX *grey-box* approach (§IV). This
//! module provides the black-box arsenal — the space covered by OpenTuner:
//! [`exhaustive`], [`random`], [hill climbing](hillclimb),
//! [simulated annealing](annealing), a [genetic algorithm](genetic), and a
//! [multi-armed-bandit meta-technique](bandit) that allocates trials to
//! whichever technique is currently paying off. Grey-box tuning is the
//! same machinery run on an annotation-shrunk space (see
//! [`DesignSpace::restrict`](crate::space::DesignSpace::restrict)) —
//! benchmark A1 measures the difference.

pub mod annealing;
pub mod bandit;
pub mod batch;
pub mod exhaustive;
pub mod genetic;
pub mod hillclimb;
pub mod random;

use crate::space::{Configuration, DesignSpace};
use rand::RngCore;

/// A sequential search technique: propose a configuration, receive its
/// measured cost (smaller is better), repeat.
pub trait SearchTechnique {
    /// Human-readable technique name.
    fn name(&self) -> &'static str;

    /// Proposes the next configuration to evaluate, or `None` when the
    /// technique has exhausted its options.
    fn propose(&mut self, space: &DesignSpace, rng: &mut dyn RngCore) -> Option<Configuration>;

    /// Reports the measured cost of a previously proposed configuration.
    fn feedback(&mut self, config: &Configuration, cost: f64);
}

/// One evaluated trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Evaluated configuration.
    pub config: Configuration,
    /// Measured cost (smaller is better).
    pub cost: f64,
    /// 1-based evaluation index at which this trial ran.
    pub evaluation: usize,
}

/// Drives a [`SearchTechnique`] against an evaluation function, caching
/// repeated proposals and tracking the incumbent best.
pub struct Tuner {
    space: DesignSpace,
    technique: Box<dyn SearchTechnique>,
    history: Vec<Trial>,
    best: Option<(Configuration, f64)>,
}

impl std::fmt::Debug for Tuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tuner")
            .field("technique", &self.technique.name())
            .field("evaluations", &self.history.len())
            .field("best", &self.best)
            .finish_non_exhaustive()
    }
}

impl Tuner {
    /// Creates a tuner for `space` using `technique`.
    pub fn new(space: DesignSpace, technique: Box<dyn SearchTechnique>) -> Self {
        Tuner {
            space,
            technique,
            history: Vec::new(),
            best: None,
        }
    }

    /// The design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// All evaluated trials, in order.
    pub fn history(&self) -> &[Trial] {
        &self.history
    }

    /// The incumbent best `(configuration, cost)`.
    pub fn best(&self) -> Option<&(Configuration, f64)> {
        self.best.as_ref()
    }

    /// Runs up to `budget` evaluations of `eval`, returning the best
    /// configuration found and its cost.
    ///
    /// Proposals already evaluated are answered from cache without
    /// consuming budget (but count against a proposal cap of `10 × budget`
    /// to guarantee termination on converged techniques).
    pub fn run(
        &mut self,
        budget: usize,
        rng: &mut impl RngCore,
        mut eval: impl FnMut(&Configuration) -> f64,
    ) -> Option<(Configuration, f64)> {
        let mut evaluations = 0;
        let mut proposals = 0;
        let proposal_cap = budget.saturating_mul(10).max(budget);
        while evaluations < budget && proposals < proposal_cap {
            let Some(config) = self.technique.propose(&self.space, rng) else {
                break;
            };
            proposals += 1;
            if let Some(prior) = self.history.iter().find(|t| t.config == config) {
                let cost = prior.cost;
                self.technique.feedback(&config, cost);
                continue;
            }
            let cost = eval(&config);
            evaluations += 1;
            self.history.push(Trial {
                config: config.clone(),
                cost,
                evaluation: evaluations,
            });
            if self.best.as_ref().is_none_or(|(_, b)| cost < *b) {
                self.best = Some((config.clone(), cost));
            }
            self.technique.feedback(&config, cost);
        }
        self.best.clone()
    }

    /// Number of evaluations needed to first reach a cost within
    /// `tolerance` (relative) of `target`, if ever (convergence metric for
    /// benchmark A1).
    pub fn evaluations_to_reach(&self, target: f64, tolerance: f64) -> Option<usize> {
        let threshold = target * (1.0 + tolerance);
        let mut best = f64::INFINITY;
        for trial in &self.history {
            best = best.min(trial.cost);
            if best <= threshold {
                return Some(trial.evaluation);
            }
        }
        None
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::knob::Knob;
    use crate::space::{Configuration, DesignSpace};

    /// A 2-D integer test space with a known optimum at (7, 3).
    pub fn quadratic_space() -> DesignSpace {
        DesignSpace::new(vec![Knob::int("x", 0, 15, 1), Knob::int("y", 0, 15, 1)])
    }

    /// Convex bowl with minimum 0 at x=7, y=3.
    pub fn quadratic_cost(config: &Configuration) -> f64 {
        let x = config.get_int("x").unwrap() as f64;
        let y = config.get_int("y").unwrap() as f64;
        (x - 7.0).powi(2) + (y - 3.0).powi(2)
    }

    /// Deceptive multi-modal cost: global optimum at x=13, y=13, with a
    /// local basin near the origin.
    pub fn multimodal_cost(config: &Configuration) -> f64 {
        let x = config.get_int("x").unwrap() as f64;
        let y = config.get_int("y").unwrap() as f64;
        let local = (x - 2.0).powi(2) + (y - 2.0).powi(2) + 5.0;
        let global = (x - 13.0).powi(2) + (y - 13.0).powi(2);
        local.min(global)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tuner_tracks_best_and_history() {
        let mut tuner = Tuner::new(quadratic_space(), Box::new(random::RandomSearch::new()));
        let mut rng = StdRng::seed_from_u64(1);
        let best = tuner.run(64, &mut rng, quadratic_cost).unwrap();
        assert_eq!(tuner.history().len(), 64);
        assert!(best.1 <= quadratic_cost(&tuner.space().center()));
        // incumbent matches history minimum
        let min = tuner
            .history()
            .iter()
            .map(|t| t.cost)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(best.1, min);
    }

    #[test]
    fn repeated_proposals_do_not_burn_budget() {
        // A degenerate one-point space: random search proposes the same
        // configuration forever; only one evaluation must happen.
        let space = DesignSpace::new(vec![crate::knob::Knob::int("x", 3, 3, 1)]);
        let mut tuner = Tuner::new(space, Box::new(random::RandomSearch::new()));
        let mut rng = StdRng::seed_from_u64(2);
        let mut evals = 0;
        tuner.run(10, &mut rng, |_| {
            evals += 1;
            1.0
        });
        assert_eq!(evals, 1);
    }

    #[test]
    fn evaluations_to_reach_convergence_metric() {
        let mut tuner = Tuner::new(quadratic_space(), Box::new(exhaustive::Exhaustive::new()));
        let mut rng = StdRng::seed_from_u64(3);
        tuner.run(256, &mut rng, quadratic_cost);
        let hit = tuner.evaluations_to_reach(0.0, 0.05).unwrap();
        assert!(hit <= 256);
        assert!(tuner.evaluations_to_reach(-5.0, 0.0).is_none());
    }
}
