//! A steady-state genetic algorithm.

use super::SearchTechnique;
use crate::space::{Configuration, DesignSpace};
use rand::{Rng, RngCore};

/// Genetic search: tournament selection, uniform crossover, per-knob
/// mutation. The population is seeded randomly and evolved one evaluated
/// child at a time (steady state), replacing the current worst.
#[derive(Debug, Clone)]
pub struct Genetic {
    population_size: usize,
    mutation_rate: f64,
    population: Vec<(Configuration, f64)>,
    pending: Option<Configuration>,
}

impl Genetic {
    /// Creates a GA with population 16 and mutation rate 0.15.
    pub fn new() -> Self {
        Self::with_params(16, 0.15)
    }

    /// Creates a GA with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `population_size < 2` or `mutation_rate` not in `[0, 1]`.
    pub fn with_params(population_size: usize, mutation_rate: f64) -> Self {
        assert!(population_size >= 2, "population must hold at least 2");
        assert!(
            (0.0..=1.0).contains(&mutation_rate),
            "mutation rate must be in [0, 1]"
        );
        Genetic {
            population_size,
            mutation_rate,
            population: Vec::new(),
            pending: None,
        }
    }

    /// Current evaluated population size.
    pub fn population_len(&self) -> usize {
        self.population.len()
    }

    fn tournament<'a>(&'a self, rng: &mut dyn RngCore) -> &'a (Configuration, f64) {
        let a = &self.population[rng.gen_range(0..self.population.len())];
        let b = &self.population[rng.gen_range(0..self.population.len())];
        if a.1 <= b.1 {
            a
        } else {
            b
        }
    }

    fn crossover(
        &self,
        space: &DesignSpace,
        a: &Configuration,
        b: &Configuration,
        rng: &mut dyn RngCore,
    ) -> Configuration {
        space
            .knobs()
            .iter()
            .map(|knob| {
                let parent = if rng.gen_bool(0.5) { a } else { b };
                let value = parent
                    .get(knob.name())
                    .cloned()
                    .unwrap_or_else(|| knob.value_at(0));
                (knob.name().to_string(), value)
            })
            .collect()
    }

    fn mutate(&self, space: &DesignSpace, config: &mut Configuration, rng: &mut dyn RngCore) {
        for knob in space.knobs() {
            if rng.gen::<f64>() < self.mutation_rate {
                let index = rng.gen_range(0..knob.cardinality());
                config.set(knob.name(), knob.value_at(index));
            }
        }
    }
}

impl Default for Genetic {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchTechnique for Genetic {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn propose(&mut self, space: &DesignSpace, rng: &mut dyn RngCore) -> Option<Configuration> {
        let next = if self.population.len() < self.population_size {
            space.sample(rng)
        } else {
            let a = self.tournament(rng).0.clone();
            let b = self.tournament(rng).0.clone();
            let mut child = self.crossover(space, &a, &b, rng);
            self.mutate(space, &mut child, rng);
            child
        };
        self.pending = Some(next.clone());
        Some(next)
    }

    fn feedback(&mut self, config: &Configuration, cost: f64) {
        if self.pending.as_ref() != Some(config) {
            return;
        }
        self.pending = None;
        if self.population.len() < self.population_size {
            self.population.push((config.clone(), cost));
            return;
        }
        // steady state: replace the worst if the child is no worse
        let (worst_idx, worst_cost) = self
            .population
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .map(|(i, p)| (i, p.1))
            .expect("population non-empty");
        if cost <= worst_cost {
            self.population[worst_idx] = (config.clone(), cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_support::*;
    use crate::search::Tuner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn evolves_toward_optimum() {
        let mut tuner = Tuner::new(quadratic_space(), Box::new(Genetic::new()));
        let mut rng = StdRng::seed_from_u64(17);
        let (_, cost) = tuner.run(300, &mut rng, quadratic_cost).unwrap();
        assert!(cost <= 2.0, "GA should approach the optimum, got {cost}");
    }

    #[test]
    fn handles_multimodal_surfaces() {
        let mut hits = 0;
        for seed in 0..6 {
            let mut tuner = Tuner::new(quadratic_space(), Box::new(Genetic::new()));
            let mut rng = StdRng::seed_from_u64(seed);
            let (_, cost) = tuner.run(300, &mut rng, multimodal_cost).unwrap();
            if cost < 5.0 {
                hits += 1;
            }
        }
        assert!(hits >= 3, "global basin found in only {hits}/6 runs");
    }

    #[test]
    fn population_fills_before_breeding() {
        let mut ga = Genetic::with_params(4, 0.1);
        let space = quadratic_space();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..4 {
            let c = ga.propose(&space, &mut rng).unwrap();
            ga.feedback(&c, 1.0);
        }
        assert_eq!(ga.population_len(), 4);
        // further feedback keeps size constant
        let c = ga.propose(&space, &mut rng).unwrap();
        ga.feedback(&c, 0.5);
        assert_eq!(ga.population_len(), 4);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn tiny_population_rejected() {
        let _ = Genetic::with_params(1, 0.1);
    }
}
