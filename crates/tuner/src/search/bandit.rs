//! Multi-armed-bandit meta-technique (OpenTuner style).
//!
//! OpenTuner's key idea — adopted here as the black-box ensemble baseline —
//! is to run several search techniques side by side and let a multi-armed
//! bandit allocate evaluations to whichever is currently producing
//! improvements. Arms are scored by UCB1 over a sliding reward window,
//! where the reward of a trial is 1 when it improved the global best.

use super::SearchTechnique;
use crate::space::{Configuration, DesignSpace};
use rand::RngCore;
use std::collections::VecDeque;

struct Arm {
    technique: Box<dyn SearchTechnique>,
    rewards: VecDeque<f64>,
    pulls: u64,
    exhausted: bool,
}

impl Arm {
    fn window_mean(&self) -> f64 {
        if self.rewards.is_empty() {
            return 0.0;
        }
        self.rewards.iter().sum::<f64>() / self.rewards.len() as f64
    }
}

/// UCB1 bandit over an ensemble of techniques.
pub struct Bandit {
    arms: Vec<Arm>,
    window: usize,
    exploration: f64,
    total_pulls: u64,
    best: Option<f64>,
    last_arm: Option<usize>,
    pending: Option<Configuration>,
}

impl std::fmt::Debug for Bandit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bandit")
            .field("arms", &self.arm_names())
            .field("total_pulls", &self.total_pulls)
            .finish_non_exhaustive()
    }
}

impl Bandit {
    /// Creates a bandit over the given techniques with a 32-trial reward
    /// window and exploration constant √2.
    ///
    /// # Panics
    ///
    /// Panics if `techniques` is empty.
    pub fn new(techniques: Vec<Box<dyn SearchTechnique>>) -> Self {
        assert!(
            !techniques.is_empty(),
            "bandit needs at least one technique"
        );
        Bandit {
            arms: techniques
                .into_iter()
                .map(|technique| Arm {
                    technique,
                    rewards: VecDeque::new(),
                    pulls: 0,
                    exhausted: false,
                })
                .collect(),
            window: 32,
            exploration: std::f64::consts::SQRT_2,
            total_pulls: 0,
            best: None,
            last_arm: None,
            pending: None,
        }
    }

    /// The default ensemble: random, hill climbing, annealing, genetic.
    pub fn default_ensemble() -> Self {
        Bandit::new(vec![
            Box::new(super::random::RandomSearch::new()),
            Box::new(super::hillclimb::HillClimb::new()),
            Box::new(super::annealing::Annealing::new()),
            Box::new(super::genetic::Genetic::new()),
        ])
    }

    /// Names of the arms.
    pub fn arm_names(&self) -> Vec<&'static str> {
        self.arms.iter().map(|a| a.technique.name()).collect()
    }

    /// Pull counts per arm (diagnostics).
    pub fn arm_pulls(&self) -> Vec<u64> {
        self.arms.iter().map(|a| a.pulls).collect()
    }

    fn pick_arm(&self) -> Option<usize> {
        // any unexplored, non-exhausted arm first
        if let Some(i) = self.arms.iter().position(|a| a.pulls == 0 && !a.exhausted) {
            return Some(i);
        }
        let total = self.total_pulls.max(1) as f64;
        self.arms
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.exhausted)
            .map(|(i, a)| {
                let bonus = self.exploration * (total.ln() / a.pulls.max(1) as f64).sqrt();
                (i, a.window_mean() + bonus)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
    }
}

impl SearchTechnique for Bandit {
    fn name(&self) -> &'static str {
        "bandit"
    }

    fn propose(&mut self, space: &DesignSpace, rng: &mut dyn RngCore) -> Option<Configuration> {
        loop {
            let index = self.pick_arm()?;
            match self.arms[index].technique.propose(space, rng) {
                Some(config) => {
                    self.arms[index].pulls += 1;
                    self.total_pulls += 1;
                    self.last_arm = Some(index);
                    self.pending = Some(config.clone());
                    return Some(config);
                }
                None => {
                    self.arms[index].exhausted = true;
                }
            }
        }
    }

    fn feedback(&mut self, config: &Configuration, cost: f64) {
        let Some(index) = self.last_arm else {
            return;
        };
        if self.pending.as_ref() != Some(config) {
            // stale feedback (cache hit routed elsewhere): forward anyway
            self.arms[index].technique.feedback(config, cost);
            return;
        }
        self.pending = None;
        let improved = self.best.is_none_or(|b| cost < b);
        if improved {
            self.best = Some(cost);
        }
        let arm = &mut self.arms[index];
        arm.rewards.push_back(if improved { 1.0 } else { 0.0 });
        if arm.rewards.len() > self.window {
            arm.rewards.pop_front();
        }
        arm.technique.feedback(config, cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_support::*;
    use crate::search::Tuner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ensemble_converges() {
        let mut tuner = Tuner::new(quadratic_space(), Box::new(Bandit::default_ensemble()));
        let mut rng = StdRng::seed_from_u64(19);
        let (_, cost) = tuner.run(300, &mut rng, quadratic_cost).unwrap();
        assert!(cost <= 1.0, "bandit ensemble should converge, got {cost}");
    }

    #[test]
    fn every_arm_gets_explored() {
        let mut bandit = Bandit::default_ensemble();
        let space = quadratic_space();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let c = bandit.propose(&space, &mut rng).unwrap();
            bandit.feedback(&c, 1.0);
        }
        assert!(
            bandit.arm_pulls().iter().all(|&p| p > 0),
            "{:?}",
            bandit.arm_pulls()
        );
    }

    #[test]
    fn exhausted_arms_are_skipped() {
        // an ensemble of one exhaustive arm over a tiny space: after
        // exhaustion, propose must return None instead of looping.
        let space = crate::space::DesignSpace::new(vec![crate::knob::Knob::int("x", 0, 1, 1)]);
        let mut bandit = Bandit::new(vec![Box::new(crate::search::exhaustive::Exhaustive::new())]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = 0;
        while let Some(c) = bandit.propose(&space, &mut rng) {
            bandit.feedback(&c, 1.0);
            seen += 1;
            assert!(seen <= 2, "looped past exhaustion");
        }
        assert_eq!(seen, 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_ensemble_rejected() {
        let _ = Bandit::new(vec![]);
    }

    #[test]
    fn beats_or_matches_plain_random_on_multimodal() {
        let mut best_bandit = f64::INFINITY;
        let mut best_random = f64::INFINITY;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = Tuner::new(quadratic_space(), Box::new(Bandit::default_ensemble()));
            best_bandit = best_bandit.min(t.run(150, &mut rng, multimodal_cost).unwrap().1);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = Tuner::new(
                quadratic_space(),
                Box::new(crate::search::random::RandomSearch::new()),
            );
            best_random = best_random.min(t.run(150, &mut rng, multimodal_cost).unwrap().1);
        }
        assert!(best_bandit <= best_random + 1.0);
    }
}
