//! Uniform random search — the classic black-box baseline.

use super::SearchTechnique;
use crate::space::{Configuration, DesignSpace};
use rand::RngCore;

/// Proposes uniformly random configurations forever.
#[derive(Debug, Clone, Default)]
pub struct RandomSearch {
    proposals: u64,
}

impl RandomSearch {
    /// Creates a random-search technique.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of proposals made so far.
    pub fn proposals(&self) -> u64 {
        self.proposals
    }
}

impl SearchTechnique for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(&mut self, space: &DesignSpace, rng: &mut dyn RngCore) -> Option<Configuration> {
        self.proposals += 1;
        Some(space.sample(rng))
    }

    fn feedback(&mut self, _config: &Configuration, _cost: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_support::*;
    use crate::search::Tuner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_decent_point_on_small_space() {
        let mut tuner = Tuner::new(quadratic_space(), Box::new(RandomSearch::new()));
        let mut rng = StdRng::seed_from_u64(11);
        let (_, cost) = tuner.run(200, &mut rng, quadratic_cost).unwrap();
        assert!(
            cost <= 4.0,
            "200 samples over 256 cells should land near optimum"
        );
    }

    #[test]
    fn proposals_counted() {
        let mut technique = RandomSearch::new();
        let space = quadratic_space();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            technique.propose(&space, &mut rng);
        }
        assert_eq!(technique.proposals(), 5);
    }
}
