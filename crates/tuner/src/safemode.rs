//! CADA safe mode: fall back to the last known-good configuration.
//!
//! An online tuner explores; exploration occasionally lands on a
//! configuration that violates the SLA. Under normal conditions the
//! learner recovers on its own, but during a fault episode (degraded
//! interconnect, gray nodes, sensor loss) continued exploration can
//! chain violations. [`SafeModeGuard`] watches the per-round SLA
//! verdict and, after [`SafeModeGuard::trip_threshold`] consecutive
//! violations, *trips*: it orders the controller back to the last
//! configuration that sustained a clean streak, and holds there until
//! [`SafeModeGuard::recovery_threshold`] consecutive clean rounds pass,
//! at which point exploration resumes.
//!
//! The guard is deliberately tiny and policy-free: it neither knows the
//! design space nor measures anything — it consumes a boolean per CADA
//! round and a reference to the configuration that produced it, and
//! emits a [`SafeModeAction`]. This keeps it composable with any
//! controller ([`AppManager`](crate::manager::AppManager),
//! [`OnlineLearner`](crate::online::OnlineLearner), or the bench
//! campaign's governor loop).

use crate::space::Configuration;

/// What the controller should do after a round, as decided by the
/// guard.
#[derive(Debug, Clone, PartialEq)]
pub enum SafeModeAction {
    /// Keep exploring normally.
    Normal,
    /// Trip: switch to the embedded last-known-good configuration and
    /// stop exploring.
    Engage(Configuration),
    /// Already in safe mode: stay on the known-good configuration.
    Hold,
    /// Enough clean rounds in safe mode: resume exploration.
    Release,
}

/// Consecutive-violation trip switch with hysteresis.
#[derive(Debug, Clone, PartialEq)]
pub struct SafeModeGuard {
    /// Consecutive SLA violations that trip safe mode.
    pub trip_threshold: u32,
    /// Consecutive clean rounds (while engaged) that release it.
    pub recovery_threshold: u32,
    last_known_good: Option<Configuration>,
    good_streak: u32,
    bad_streak: u32,
    engaged: bool,
    trips: u64,
}

impl SafeModeGuard {
    /// Creates a guard tripping after `trip_threshold` consecutive
    /// violations and releasing after `recovery_threshold` consecutive
    /// clean rounds.
    ///
    /// # Panics
    ///
    /// Panics if either threshold is zero.
    pub fn new(trip_threshold: u32, recovery_threshold: u32) -> Self {
        assert!(trip_threshold > 0, "trip threshold must be positive");
        assert!(
            recovery_threshold > 0,
            "recovery threshold must be positive"
        );
        SafeModeGuard {
            trip_threshold,
            recovery_threshold,
            last_known_good: None,
            good_streak: 0,
            bad_streak: 0,
            engaged: false,
            trips: 0,
        }
    }

    /// Feeds one CADA round: whether the SLA held and which
    /// configuration was active. Returns the action the controller
    /// must take before the next round.
    pub fn record_round(&mut self, sla_ok: bool, current: &Configuration) -> SafeModeAction {
        if self.engaged {
            if sla_ok {
                self.good_streak += 1;
                if self.good_streak >= self.recovery_threshold {
                    self.engaged = false;
                    self.bad_streak = 0;
                    return SafeModeAction::Release;
                }
            } else {
                self.good_streak = 0;
            }
            return SafeModeAction::Hold;
        }
        if sla_ok {
            self.bad_streak = 0;
            self.good_streak += 1;
            // a configuration is "known good" once it sustains a clean
            // streak as long as the trip threshold — a single lucky
            // round is not a safe harbour
            if self.good_streak >= self.trip_threshold {
                self.last_known_good = Some(current.clone());
            }
            SafeModeAction::Normal
        } else {
            self.good_streak = 0;
            self.bad_streak += 1;
            if self.bad_streak >= self.trip_threshold {
                if let Some(good) = self.last_known_good.clone() {
                    self.engaged = true;
                    self.trips += 1;
                    self.good_streak = 0;
                    return SafeModeAction::Engage(good);
                }
                // nothing known good yet: keep exploring, there is no
                // safer place to go
            }
            SafeModeAction::Normal
        }
    }

    /// Is safe mode currently engaged?
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// How many times the guard has tripped.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// The configuration the guard would fall back to, if any has
    /// qualified.
    pub fn last_known_good(&self) -> Option<&Configuration> {
        self.last_known_good.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knob::KnobValue;

    fn config(v: i64) -> Configuration {
        let mut c = Configuration::new();
        c.set("unroll", KnobValue::Int(v));
        c
    }

    #[test]
    fn trips_after_consecutive_violations() {
        let mut guard = SafeModeGuard::new(3, 2);
        // qualify config 1 as known-good
        for t in 0..3 {
            assert_eq!(
                guard.record_round(true, &config(1)),
                SafeModeAction::Normal,
                "round {t}"
            );
        }
        assert_eq!(guard.last_known_good(), Some(&config(1)));
        // two violations: not yet
        assert_eq!(
            guard.record_round(false, &config(9)),
            SafeModeAction::Normal
        );
        assert_eq!(
            guard.record_round(false, &config(9)),
            SafeModeAction::Normal
        );
        assert!(!guard.engaged());
        // third trips
        assert_eq!(
            guard.record_round(false, &config(9)),
            SafeModeAction::Engage(config(1))
        );
        assert!(guard.engaged());
        assert_eq!(guard.trips(), 1);
    }

    #[test]
    fn interleaved_successes_reset_the_streak() {
        let mut guard = SafeModeGuard::new(2, 1);
        for _ in 0..2 {
            guard.record_round(true, &config(1));
        }
        for _ in 0..10 {
            assert_eq!(
                guard.record_round(false, &config(2)),
                SafeModeAction::Normal
            );
            assert_eq!(guard.record_round(true, &config(1)), SafeModeAction::Normal);
        }
        assert!(!guard.engaged(), "alternating rounds must never trip");
    }

    #[test]
    fn releases_after_recovery_streak() {
        let mut guard = SafeModeGuard::new(2, 3);
        guard.record_round(true, &config(1));
        guard.record_round(true, &config(1));
        guard.record_round(false, &config(5));
        assert!(matches!(
            guard.record_round(false, &config(5)),
            SafeModeAction::Engage(_)
        ));
        // clean, clean, violation resets, then three clean release
        assert_eq!(guard.record_round(true, &config(1)), SafeModeAction::Hold);
        assert_eq!(guard.record_round(true, &config(1)), SafeModeAction::Hold);
        assert_eq!(guard.record_round(false, &config(1)), SafeModeAction::Hold);
        assert_eq!(guard.record_round(true, &config(1)), SafeModeAction::Hold);
        assert_eq!(guard.record_round(true, &config(1)), SafeModeAction::Hold);
        assert_eq!(
            guard.record_round(true, &config(1)),
            SafeModeAction::Release
        );
        assert!(!guard.engaged());
    }

    #[test]
    fn never_trips_without_a_known_good() {
        let mut guard = SafeModeGuard::new(2, 1);
        for _ in 0..10 {
            assert_eq!(
                guard.record_round(false, &config(7)),
                SafeModeAction::Normal
            );
        }
        assert!(!guard.engaged());
        assert_eq!(guard.trips(), 0);
    }

    #[test]
    fn lucky_single_round_does_not_qualify_as_known_good() {
        let mut guard = SafeModeGuard::new(3, 1);
        guard.record_round(true, &config(1));
        assert_eq!(guard.last_known_good(), None);
        guard.record_round(true, &config(1));
        guard.record_round(true, &config(1));
        assert_eq!(guard.last_known_good(), Some(&config(1)));
    }

    #[test]
    fn can_retrip_after_release() {
        let mut guard = SafeModeGuard::new(1, 1);
        guard.record_round(true, &config(1));
        assert!(matches!(
            guard.record_round(false, &config(2)),
            SafeModeAction::Engage(_)
        ));
        assert_eq!(
            guard.record_round(true, &config(1)),
            SafeModeAction::Release
        );
        assert!(matches!(
            guard.record_round(false, &config(3)),
            SafeModeAction::Engage(_)
        ));
        assert_eq!(guard.trips(), 2);
    }

    #[test]
    #[should_panic(expected = "trip threshold")]
    fn zero_trip_threshold_rejected() {
        let _ = SafeModeGuard::new(0, 1);
    }
}
