//! # antarex-tuner — application autotuning framework
//!
//! Implements the autotuning work package of ANTAREX (Silvano et al., DATE
//! 2016, §IV): a *grey-box* application autotuner that
//!
//! * models software knobs (application parameters, code-transformation
//!   factors, code variants) as a [design space](space) shrunk by
//!   code [annotations](space::DesignSpace::restrict) — "it can rely on
//!   code annotations to shrink the search space";
//! * explores the space with pluggable [search techniques](search)
//!   (exhaustive, random, hill climbing, simulated annealing, genetic, and
//!   an OpenTuner-style multi-armed-bandit meta-technique);
//! * builds a design-time [knowledge base](point::KnowledgeBase) of
//!   operating points via [DSE](dse);
//! * manages the application at runtime — the mARGOt-style
//!   [`manager::AppManager`] filters operating points by SLA
//!   [goals](goal) and picks the best, while [online learning](online)
//!   keeps the knowledge fresh "according to the most recent operating
//!   conditions";
//! * predicts promising configurations with simple [models](model)
//!   (linear regression, k-nearest-neighbours) — "machine learning
//!   techniques are also adopted by the decision-making engine".
//!
//! # Examples
//!
//! ```
//! use antarex_tuner::knob::Knob;
//! use antarex_tuner::space::DesignSpace;
//! use antarex_tuner::search::{hillclimb::HillClimb, Tuner};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let space = DesignSpace::new(vec![
//!     Knob::int("unroll", 1, 16, 1),
//!     Knob::choice("variant", ["scalar", "blocked"]),
//! ]);
//! let mut tuner = Tuner::new(space, Box::new(HillClimb::new()));
//! let mut rng = StdRng::seed_from_u64(7);
//! let best = tuner.run(200, &mut rng, |cfg| {
//!     // pretend cost surface: bigger unroll is better up to 8
//!     let u = cfg.get_int("unroll").unwrap() as f64;
//!     (u - 8.0).abs()
//! });
//! assert_eq!(best.unwrap().0.get_int("unroll"), Some(8));
//! ```

pub mod dse;
pub mod features;
pub mod goal;
pub mod intern;
pub mod knob;
pub mod manager;
pub mod model;
pub mod online;
pub mod point;
pub mod safemode;
pub mod search;
pub mod space;

pub use goal::{Constraint, Objective};
pub use intern::SymbolId;
pub use knob::{Knob, KnobValue};
pub use manager::AppManager;
pub use point::{KnowledgeBase, OperatingPoint};
pub use safemode::{SafeModeAction, SafeModeGuard};
pub use space::{Configuration, DesignSpace};
