//! Continuous online learning over operating points.
//!
//! "Continuous on-line learning techniques are adopted to update the
//! knowledge from the data collected by the monitors, giving the
//! possibility to autotune the system according to the most recent
//! operating conditions" (§IV). [`OnlineLearner`] is an ε-greedy value
//! learner with a constant step size, which keeps tracking *non-stationary*
//! cost surfaces — exactly the changing-operating-conditions case.

use crate::space::Configuration;
use rand::Rng;

#[derive(Debug, Clone)]
struct ArmState {
    config: Configuration,
    estimate: f64,
    pulls: u64,
}

/// ε-greedy online learner over a fixed set of configurations.
#[derive(Debug, Clone)]
pub struct OnlineLearner {
    arms: Vec<ArmState>,
    epsilon: f64,
    alpha: f64,
}

impl OnlineLearner {
    /// Creates a learner over `configs` with exploration rate `epsilon`
    /// and learning step `alpha` (constant step size tracks drift).
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty, or `epsilon`/`alpha` are outside
    /// `[0, 1]` / `(0, 1]`.
    pub fn new(configs: Vec<Configuration>, epsilon: f64, alpha: f64) -> Self {
        assert!(!configs.is_empty(), "need at least one configuration");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        OnlineLearner {
            arms: configs
                .into_iter()
                .map(|config| ArmState {
                    config,
                    estimate: f64::INFINITY, // optimistic for minimization? see choose()
                    pulls: 0,
                })
                .collect(),
            epsilon,
            alpha,
        }
    }

    /// Number of arms.
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// Returns `true` if there are no arms (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// Chooses the next configuration to run: unexplored arms first, then
    /// ε-greedy over estimated cost (smaller is better).
    pub fn choose(&self, rng: &mut impl Rng) -> &Configuration {
        if let Some(arm) = self.arms.iter().find(|a| a.pulls == 0) {
            return &arm.config;
        }
        if rng.gen::<f64>() < self.epsilon {
            let i = rng.gen_range(0..self.arms.len());
            return &self.arms[i].config;
        }
        &self
            .arms
            .iter()
            .min_by(|a, b| a.estimate.total_cmp(&b.estimate))
            .expect("non-empty")
            .config
    }

    /// Reports the observed cost of running `config`.
    /// Unknown configurations are ignored.
    pub fn update(&mut self, config: &Configuration, cost: f64) {
        if let Some(arm) = self.arms.iter_mut().find(|a| &a.config == config) {
            arm.pulls += 1;
            if arm.estimate.is_infinite() {
                arm.estimate = cost;
            } else {
                arm.estimate += self.alpha * (cost - arm.estimate);
            }
        }
    }

    /// The current cost estimate of a configuration.
    pub fn estimate(&self, config: &Configuration) -> Option<f64> {
        self.arms
            .iter()
            .find(|a| &a.config == config)
            .map(|a| a.estimate)
    }

    /// The currently-best configuration by estimate.
    pub fn best(&self) -> &Configuration {
        &self
            .arms
            .iter()
            .min_by(|a, b| a.estimate.total_cmp(&b.estimate))
            .expect("non-empty")
            .config
    }

    /// Forgets everything (e.g. after detecting a regime change).
    pub fn reset(&mut self) {
        for arm in &mut self.arms {
            arm.estimate = f64::INFINITY;
            arm.pulls = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knob::KnobValue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn configs(n: i64) -> Vec<Configuration> {
        (0..n)
            .map(|i| {
                let mut c = Configuration::new();
                c.set("level", KnobValue::Int(i));
                c
            })
            .collect()
    }

    /// Simulated cost: arm `i` costs `|i - target|` plus noise.
    fn run_regime(learner: &mut OnlineLearner, target: i64, steps: usize, rng: &mut StdRng) {
        for _ in 0..steps {
            let config = learner.choose(rng).clone();
            let level = config.get_int("level").unwrap();
            let cost = (level - target).abs() as f64 + rng.gen::<f64>() * 0.1;
            learner.update(&config, cost);
        }
    }

    #[test]
    fn learns_the_best_arm() {
        let mut learner = OnlineLearner::new(configs(8), 0.1, 0.3);
        let mut rng = StdRng::seed_from_u64(42);
        run_regime(&mut learner, 5, 400, &mut rng);
        assert_eq!(learner.best().get_int("level"), Some(5));
    }

    #[test]
    fn tracks_regime_change() {
        let mut learner = OnlineLearner::new(configs(8), 0.15, 0.4);
        let mut rng = StdRng::seed_from_u64(7);
        run_regime(&mut learner, 2, 300, &mut rng);
        assert_eq!(learner.best().get_int("level"), Some(2));
        // operating conditions change: optimum moves to 6
        run_regime(&mut learner, 6, 600, &mut rng);
        assert_eq!(
            learner.best().get_int("level"),
            Some(6),
            "constant step size must track drift"
        );
    }

    #[test]
    fn explores_every_arm_first() {
        let mut learner = OnlineLearner::new(configs(5), 0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..5 {
            let c = learner.choose(&mut rng).clone();
            seen.insert(c.get_int("level").unwrap());
            learner.update(&c, 1.0);
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn reset_forgets() {
        let mut learner = OnlineLearner::new(configs(3), 0.0, 0.5);
        let c = configs(3)[0].clone();
        learner.update(&c, 5.0);
        assert_eq!(learner.estimate(&c), Some(5.0));
        learner.reset();
        assert_eq!(learner.estimate(&c), Some(f64::INFINITY));
    }

    #[test]
    fn unknown_update_ignored() {
        let mut learner = OnlineLearner::new(configs(2), 0.0, 0.5);
        let mut ghost = Configuration::new();
        ghost.set("level", KnobValue::Int(99));
        learner.update(&ghost, 1.0);
        assert_eq!(learner.estimate(&ghost), None);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_arms_rejected() {
        let _ = OnlineLearner::new(vec![], 0.1, 0.5);
    }
}

#[cfg(test)]
mod drift_integration {
    use super::*;
    use crate::knob::KnobValue;
    use antarex_monitor::drift::PageHinkley;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Online learning + drift detection: when the cost regime shifts, the
    /// Page–Hinkley detector fires and resetting the learner re-explores,
    /// adapting faster than a learner that never resets — "autotune the
    /// system according to the most recent operating conditions" (§IV).
    #[test]
    fn drift_reset_recovers_faster_after_regime_change() {
        let configs: Vec<Configuration> = (0..6)
            .map(|i| {
                let mut c = Configuration::new();
                c.set("level", KnobValue::Int(i));
                c
            })
            .collect();
        let cost = |level: i64, target: i64, rng: &mut StdRng| {
            (level - target).abs() as f64 + rng.gen::<f64>() * 0.05
        };

        let run = |reset_on_drift: bool| -> i64 {
            let mut rng = StdRng::seed_from_u64(50);
            // slow learner: tracks drift poorly on its own
            let mut learner = OnlineLearner::new(configs.clone(), 0.1, 0.02);
            let mut detector = PageHinkley::new(0.1, 3.0);
            let mut reset_done = false;
            for _ in 0..400 {
                let c = learner.choose(&mut rng).clone();
                let v = cost(c.get_int("level").unwrap(), 1, &mut rng);
                learner.update(&c, v);
                detector.observe(v);
            }
            // regime change: optimum jumps from level 1 to level 5
            for _ in 0..800 {
                let c = learner.choose(&mut rng).clone();
                let v = cost(c.get_int("level").unwrap(), 5, &mut rng);
                if detector.observe(v) && reset_on_drift && !reset_done {
                    // forget the stale regime entirely, then learn afresh
                    learner.reset();
                    reset_done = true;
                    continue;
                }
                learner.update(&c, v);
            }
            learner.best().get_int("level").unwrap()
        };

        assert_eq!(run(true), 5, "reset learner converges to the new optimum");
        // without resetting, the stale estimates keep the old optimum
        // pinned (the slow alpha cannot unlearn in time)
        assert_ne!(run(false), 5, "stale learner lags the regime change");
    }
}
