//! The application self-tuning runtime manager (mARGOt-style ASRTM).
//!
//! The manager owns the knowledge base produced at design time, the
//! application's goals (one objective + SLA constraints), and the runtime
//! monitors. Each adaptation round it (1) folds fresh measurements back
//! into the knowledge base — online learning, (2) filters operating points
//! by the constraints, (3) ranks by the objective, and (4) switches the
//! application's configuration if a better feasible point emerged. This is
//! the per-application "autotuning control loop" of the paper's Fig. 1.

use crate::goal::{Constraint, Objective};
use crate::intern::{intern, lookup, SymbolId};
use crate::point::{KnowledgeBase, OperatingPoint};
use crate::space::Configuration;
use antarex_monitor::cada::Decision;
use antarex_monitor::series::TimeSeries;
use std::collections::BTreeMap;

/// The per-application runtime autotuner.
///
/// # Examples
///
/// ```
/// use antarex_tuner::{AppManager, Configuration, KnobValue, KnowledgeBase, OperatingPoint};
/// use antarex_tuner::goal::{Constraint, Objective};
///
/// let mut quality = Configuration::new();
/// quality.set("alternatives", KnobValue::Int(8));
/// let mut fast = Configuration::new();
/// fast.set("alternatives", KnobValue::Int(1));
/// let kb: KnowledgeBase = [
///     OperatingPoint::new(quality, [("latency".into(), 0.9), ("quality".into(), 1.0)]),
///     OperatingPoint::new(fast, [("latency".into(), 0.1), ("quality".into(), 0.4)]),
/// ].into_iter().collect();
///
/// let mut manager = AppManager::new(kb, Objective::maximize("quality"));
/// manager.add_constraint(Constraint::at_most("latency", 0.5));
/// let chosen = manager.select().unwrap();
/// assert_eq!(chosen.get_int("alternatives"), Some(1), "0.9 s point violates the SLA");
/// ```
#[derive(Debug, Clone)]
pub struct AppManager {
    knowledge: KnowledgeBase,
    objective: Objective,
    constraints: Vec<Constraint>,
    current: Option<Configuration>,
    monitors: BTreeMap<SymbolId, TimeSeries>,
    learn_alpha: f64,
    switches: u64,
    last_adapt: f64,
}

impl AppManager {
    /// Creates a manager over a design-time knowledge base.
    pub fn new(knowledge: KnowledgeBase, objective: Objective) -> Self {
        AppManager {
            knowledge,
            objective,
            constraints: Vec::new(),
            current: None,
            monitors: BTreeMap::new(),
            learn_alpha: 0.4,
            switches: 0,
            last_adapt: f64::NEG_INFINITY,
        }
    }

    /// Sets the online-learning rate (default 0.4).
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` is in `(0, 1]`.
    pub fn with_learn_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        self.learn_alpha = alpha;
        self
    }

    /// Adds an SLA constraint.
    pub fn add_constraint(&mut self, constraint: Constraint) {
        self.constraints.push(constraint);
    }

    /// Renegotiates the bound of the named constraint; returns `false` if
    /// no such constraint exists.
    pub fn set_constraint_bound(&mut self, metric: &str, bound: f64) -> bool {
        match self.constraints.iter_mut().find(|c| c.metric() == metric) {
            Some(c) => {
                c.set_bound(bound);
                true
            }
            None => false,
        }
    }

    /// The active constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// The knowledge base (updated by online learning).
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.knowledge
    }

    /// The configuration currently deployed.
    pub fn current(&self) -> Option<&Configuration> {
        self.current.as_ref()
    }

    /// Number of configuration switches decided so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Selects the best feasible operating point and deploys it.
    /// Returns `None` when no point satisfies the constraints (SLA
    /// infeasible — the caller should escalate to the RTRM).
    ///
    /// When the winner is the configuration already deployed, nothing
    /// is cloned — the steady-state re-selection path only compares.
    pub fn select(&mut self) -> Option<&Configuration> {
        let best = &self
            .knowledge
            .best(&self.objective, &self.constraints)?
            .config;
        if self.current.as_ref() != Some(best) {
            let best = best.clone();
            if self.current.is_some() {
                self.switches += 1;
            }
            self.current = Some(best);
        }
        self.current.as_ref()
    }

    /// Records a runtime measurement of `metric` for the *current*
    /// configuration. Series are keyed by interned id, so the
    /// steady-state path (series already exists) allocates nothing.
    pub fn observe(&mut self, time: f64, metric: &str, value: f64) {
        self.monitors
            .entry(intern(metric))
            .or_insert_with(|| TimeSeries::with_capacity(256))
            .push(time, value);
    }

    /// The monitor series for a metric, if any measurements arrived.
    pub fn monitor(&self, metric: &str) -> Option<&TimeSeries> {
        self.monitors.get(&lookup(metric)?)
    }

    /// One adaptation round at time `now`: folds measurements since the
    /// previous round into the knowledge base (for the current
    /// configuration), re-selects, and reports the decision.
    pub fn adapt(&mut self, now: f64) -> Decision {
        let since = self.last_adapt;
        self.last_adapt = now;
        if let Some(current) = self.current.clone() {
            let learned: Vec<(SymbolId, f64)> = self
                .monitors
                .iter()
                .filter_map(|(&metric, series)| Some((metric, series.mean_since(since)?)))
                .collect();
            if !learned.is_empty() {
                self.knowledge.learn(
                    OperatingPoint::with_metric_ids(current, learned),
                    self.learn_alpha,
                );
            }
        }
        let previous = self.current.clone();
        self.select();
        match (&previous, &self.current) {
            (Some(prev), Some(next)) if prev != next => Decision::Switch(next.to_string()),
            (None, Some(next)) => Decision::Switch(next.to_string()),
            _ => Decision::Stay,
        }
    }
}

/// Adapts an [`AppManager`] plus a measurement probe into the monitor
/// crate's [`CadaController`](antarex_monitor::cada::CadaController), so a
/// [`CadaLoop`](antarex_monitor::cada::CadaLoop) can drive the
/// application's adaptation on a fixed period — the runtime layer shape
/// the paper describes in §II.
pub struct ManagedApp<P> {
    manager: AppManager,
    probe: P,
}

impl<P> ManagedApp<P>
where
    P: FnMut(f64) -> Vec<(String, f64)>,
{
    /// Wraps a manager with a collect-stage probe: `probe(time)` returns
    /// the fresh measurements (metric name, value) for the current
    /// configuration.
    pub fn new(manager: AppManager, probe: P) -> Self {
        ManagedApp { manager, probe }
    }

    /// The wrapped manager.
    pub fn manager(&self) -> &AppManager {
        &self.manager
    }

    /// Mutable access to the wrapped manager.
    pub fn manager_mut(&mut self) -> &mut AppManager {
        &mut self.manager
    }
}

impl<P> std::fmt::Debug for ManagedApp<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagedApp")
            .field("manager", &self.manager)
            .finish_non_exhaustive()
    }
}

impl<P> antarex_monitor::cada::CadaController for ManagedApp<P>
where
    P: FnMut(f64) -> Vec<(String, f64)>,
{
    type Obs = (f64, Vec<(String, f64)>);
    type Sum = f64;

    fn collect(&mut self, time: f64) -> Self::Obs {
        (time, (self.probe)(time))
    }

    fn analyse(&mut self, obs: Self::Obs) -> f64 {
        let (time, samples) = obs;
        for (metric, value) in samples {
            self.manager.observe(time, &metric, value);
        }
        time
    }

    fn decide(&mut self, time: &f64) -> Decision {
        self.manager.adapt(*time)
    }

    fn act(&mut self, _decision: &Decision) {
        // `AppManager::adapt` already enacted the switch on `current()`;
        // embedders reconfigure the application from the loop's decisions.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knob::KnobValue;

    fn config(level: i64) -> Configuration {
        let mut c = Configuration::new();
        c.set("level", KnobValue::Int(level));
        c
    }

    fn kb() -> KnowledgeBase {
        // higher level: better quality, higher latency
        (1..=4)
            .map(|l| {
                OperatingPoint::new(
                    config(l),
                    [
                        ("latency".to_string(), 0.1 * l as f64),
                        ("quality".to_string(), l as f64),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn select_honours_constraints_and_objective() {
        let mut manager = AppManager::new(kb(), Objective::maximize("quality"));
        manager.add_constraint(Constraint::at_most("latency", 0.25));
        let chosen = manager.select().unwrap().clone();
        assert_eq!(chosen.get_int("level"), Some(2), "level 3+ violate the SLA");
        // loosening the SLA upgrades the configuration
        manager.set_constraint_bound("latency", 1.0);
        assert_eq!(manager.select().unwrap().get_int("level"), Some(4));
        assert_eq!(manager.switches(), 1);
    }

    #[test]
    fn infeasible_sla_returns_none() {
        let mut manager = AppManager::new(kb(), Objective::maximize("quality"));
        manager.add_constraint(Constraint::at_most("latency", 0.01));
        assert!(manager.select().is_none());
    }

    #[test]
    fn adapt_learns_from_monitors_and_downgrades() {
        let mut manager =
            AppManager::new(kb(), Objective::maximize("quality")).with_learn_alpha(1.0);
        manager.add_constraint(Constraint::at_most("latency", 0.45));
        assert_eq!(manager.select().unwrap().get_int("level"), Some(4));

        // load spike: level 4 now measures 0.9 s latency, violating the SLA
        for t in 0..5 {
            manager.observe(t as f64, "latency", 0.9);
        }
        let decision = manager.adapt(5.0);
        assert!(matches!(decision, Decision::Switch(_)), "must downgrade");
        assert_eq!(manager.current().unwrap().get_int("level"), Some(3));
        // the knowledge base reflects the measurement
        let learned = manager
            .knowledge()
            .find(&config(4))
            .unwrap()
            .metric("latency")
            .unwrap();
        assert!((learned - 0.9).abs() < 1e-9);
    }

    #[test]
    fn adapt_without_new_data_stays() {
        let mut manager = AppManager::new(kb(), Objective::maximize("quality"));
        manager.select();
        assert_eq!(manager.adapt(1.0), Decision::Stay);
        assert_eq!(manager.adapt(2.0), Decision::Stay);
        assert_eq!(manager.switches(), 0);
    }

    #[test]
    fn adapt_only_uses_measurements_since_last_round() {
        let mut manager =
            AppManager::new(kb(), Objective::maximize("quality")).with_learn_alpha(1.0);
        manager.select();
        manager.observe(0.0, "latency", 9.9);
        manager.adapt(1.0);
        // old sample must not be re-learned at the next round
        let decision = manager.adapt(2.0);
        assert_eq!(decision, Decision::Stay);
    }

    #[test]
    fn cada_loop_drives_the_manager() {
        use antarex_monitor::cada::CadaLoop;
        let mut manager =
            AppManager::new(kb(), Objective::maximize("quality")).with_learn_alpha(1.0);
        manager.add_constraint(Constraint::at_most("latency", 0.45));
        manager.select();
        // probe: latency of the *current* level; levels above 3 now
        // measure over-SLA (a load spike)
        let managed = ManagedApp::new(manager, |_time: f64| vec![("latency".to_string(), 0.9)]);
        let mut cada = CadaLoop::new(managed, 10.0);
        let decisions = cada.advance_to(30.0);
        assert!(decisions.iter().any(|d| matches!(d, Decision::Switch(_))));
        // the manager walked down to a feasible level
        let level = cada
            .controller()
            .manager()
            .current()
            .unwrap()
            .get_int("level")
            .unwrap();
        assert!(level < 4, "downgraded from level 4, now {level}");
    }

    #[test]
    fn first_select_counts_as_switch_decision_in_adapt() {
        let mut manager = AppManager::new(kb(), Objective::maximize("quality"));
        let decision = manager.adapt(0.0);
        assert!(matches!(decision, Decision::Switch(_)));
    }

    #[test]
    fn empty_knowledge_base_selects_nothing() {
        let mut manager = AppManager::new(KnowledgeBase::default(), Objective::maximize("quality"));
        assert!(manager.knowledge().is_empty());
        assert!(manager.select().is_none());
        assert!(manager.current().is_none());
        assert_eq!(manager.switches(), 0);
    }

    #[test]
    fn empty_knowledge_base_adapts_without_panicking() {
        let mut manager = AppManager::new(KnowledgeBase::default(), Objective::maximize("quality"));
        // measurements with no deployed configuration must be ignored
        manager.observe(0.0, "latency", 0.5);
        assert_eq!(manager.adapt(1.0), Decision::Stay);
        assert_eq!(manager.adapt(2.0), Decision::Stay);
        assert!(manager.knowledge().is_empty(), "nothing to learn into");
    }

    #[test]
    fn all_points_infeasible_under_stacked_constraints() {
        // each constraint alone is satisfiable, their conjunction is not:
        // low levels violate the quality floor, high levels the latency cap
        let mut manager = AppManager::new(kb(), Objective::maximize("quality"));
        manager.add_constraint(Constraint::at_most("latency", 0.25));
        manager.add_constraint(Constraint::at_least("quality", 3.0));
        assert!(manager.select().is_none());
        assert!(manager.current().is_none());
        // adapt must survive the infeasible state and report no switch
        assert_eq!(manager.adapt(1.0), Decision::Stay);
        assert_eq!(manager.switches(), 0);
    }

    #[test]
    fn equal_scores_tie_break_to_the_earliest_point() {
        // two configurations with identical objective value: the first
        // point registered in the knowledge base must win, every time
        let kb: KnowledgeBase = [3, 1]
            .into_iter()
            .map(|l| OperatingPoint::new(config(l), [("quality".to_string(), 2.0)]))
            .collect();
        let mut manager = AppManager::new(kb, Objective::maximize("quality"));
        assert_eq!(manager.select().unwrap().get_int("level"), Some(3));
        // re-selecting under a tie must not flap between the two points
        for _ in 0..5 {
            assert_eq!(manager.select().unwrap().get_int("level"), Some(3));
        }
        assert_eq!(manager.switches(), 0, "ties must not cause switches");
    }
}
